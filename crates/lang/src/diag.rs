//! Source-position tracking and error reporting for the frontend.

use std::fmt;

/// A byte range in the source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both inputs.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A frontend error (lexing, parsing, or binding), with source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// Where in the source it went wrong.
    pub span: Span,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with a line/column position and a source
    /// excerpt with a caret, in the style of `rustc`.
    pub fn render(&self, source: &str) -> String {
        let (line_no, col, line) = locate(source, self.span.start);
        let caret_len = self
            .span
            .end
            .saturating_sub(self.span.start)
            .clamp(1, line.len().saturating_sub(col - 1).max(1));
        let mut out = String::new();
        out.push_str(&format!("error: {}\n", self.message));
        out.push_str(&format!("  --> line {line_no}, column {col}\n"));
        out.push_str(&format!("   | {line}\n"));
        out.push_str(&format!(
            "   | {}{}\n",
            " ".repeat(col - 1),
            "^".repeat(caret_len)
        ));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Returns (1-based line, 1-based column, line text) of a byte offset.
/// Offsets inside a multi-byte character snap back to its start.
fn locate(source: &str, offset: usize) -> (usize, usize, String) {
    let mut offset = offset.min(source.len());
    while offset > 0 && !source.is_char_boundary(offset) {
        offset -= 1;
    }
    let before = &source[..offset];
    let line_no = before.matches('\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |p| p + 1);
    let line_end = source[offset..]
        .find('\n')
        .map_or(source.len(), |p| offset + p);
    let col = offset - line_start + 1;
    (line_no, col, source[line_start..line_end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locates_lines_and_columns() {
        let src = "abc\ndefg\nhi";
        let (l, c, text) = locate(src, 6);
        assert_eq!((l, c), (2, 3));
        assert_eq!(text, "defg");
    }

    #[test]
    fn render_includes_caret() {
        let src = "x = $;\n";
        let d = Diagnostic::new("unexpected character", Span::new(4, 5));
        let rendered = d.render(src);
        assert!(rendered.contains("line 1, column 5"));
        assert!(rendered.contains("x = $;"));
        assert!(rendered.lines().last().unwrap().trim_end().ends_with('^'));
    }

    #[test]
    fn merge_spans() {
        assert_eq!(Span::new(2, 5).merge(Span::new(4, 9)), Span::new(2, 9));
    }

    #[test]
    fn locate_at_end_of_source() {
        let (l, c, _) = locate("ab", 2);
        assert_eq!((l, c), (1, 3));
    }
}
