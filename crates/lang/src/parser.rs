//! Recursive-descent parser for the Mitos surface language.
//!
//! Grammar sketch (see `README.md` for the full language reference):
//!
//! ```text
//! program  := stmt*
//! stmt     := 'if' '(' expr ')' block ('else' (block | if-stmt))?
//!           | 'while' '(' expr ')' block
//!           | 'do' block 'while' '(' expr ')' ';'
//!           | 'for' IDENT '=' expr 'to' expr block       // sugar
//!           | 'writeFile' '(' expr ',' expr ')' ';'
//!           | 'output' '(' expr ',' STRING ')' ';'
//!           | IDENT '=' expr ';'
//! expr     := or; or := and ('||' and)*; and := cmp ('&&' cmp)*
//! cmp      := bag (CMPOP bag)?
//! bag      := add (('join'|'cross'|'union') add)*
//! add      := mul (('+'|'-') mul)*; mul := unary (('*'|'/'|'%') unary)*
//! unary    := ('-'|'!') unary | postfix
//! postfix  := primary ('.' METHOD '(' args ')' | '[' INT ']')*
//! primary  := literal | 'empty' | 'readFile' '(' expr ')' | 'bag' '(' .. ')'
//!           | BUILTIN '(' .. ')' | IDENT | '(' expr (',' expr)* ')'
//!           | '[' .. ']' | 'if' expr 'then' expr 'else' expr
//! lambda   := IDENT '=>' expr | '(' IDENT ',' IDENT ')' '=>' expr
//! ```

use crate::ast::{Lambda, Program, Stmt, SurfExpr};
use crate::diag::{Diagnostic, Span};
use crate::expr::{BinOp, Func, UnOp};
use crate::lexer::{lex, Tok, Token};
use crate::value::Value;
use std::sync::Arc;

/// Parses a complete program from source text.
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        fresh: 0,
    };
    let stmts = p.parse_stmts_until(Tok::Eof)?;
    Ok(Program::new(stmts))
}

/// Parses a single expression (used by tests and the REPL-style examples).
pub fn parse_expr(src: &str) -> Result<SurfExpr, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        fresh: 0,
    };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    fresh: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, Diagnostic> {
        if self.peek() == &tok {
            Ok(self.bump())
        } else {
            Err(Diagnostic::new(
                format!(
                    "expected {}, found {}",
                    tok.describe(),
                    self.peek().describe()
                ),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        let span = self.span();
        match self.bump().tok {
            Tok::Ident(name) => Ok((name, span)),
            other => Err(Diagnostic::new(
                format!("expected identifier, found {}", other.describe()),
                span,
            )),
        }
    }

    fn fresh_name(&mut self, hint: &str) -> Arc<str> {
        self.fresh += 1;
        Arc::from(format!("__{hint}{}", self.fresh).as_str())
    }

    fn parse_stmts_until(&mut self, end: Tok) -> Result<Vec<Stmt>, Diagnostic> {
        let mut stmts = Vec::new();
        while self.peek() != &end {
            if self.peek() == &Tok::Eof {
                return Err(Diagnostic::new(
                    format!("expected {} before end of input", end.describe()),
                    self.span(),
                ));
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        self.expect(Tok::LBrace)?;
        self.parse_stmts_until(Tok::RBrace)
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        match self.peek().clone() {
            Tok::If => self.if_stmt(),
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Do => {
                self.bump();
                let body = self.block()?;
                self.expect(Tok::While)?;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::For => self.for_stmt(),
            Tok::Ident(name) if name == "writeFile" && self.peek2() == &Tok::LParen => {
                self.bump();
                self.expect(Tok::LParen)?;
                let value = self.expr()?;
                self.expect(Tok::Comma)?;
                let name = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::WriteFile { value, name })
            }
            Tok::Ident(name) if name == "output" && self.peek2() == &Tok::LParen => {
                self.bump();
                self.expect(Tok::LParen)?;
                let value = self.expr()?;
                self.expect(Tok::Comma)?;
                let span = self.span();
                let tag = match self.bump().tok {
                    Tok::Str(s) => s,
                    other => {
                        return Err(Diagnostic::new(
                            format!(
                                "output tag must be a string literal, found {}",
                                other.describe()
                            ),
                            span,
                        ))
                    }
                };
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Output {
                    value,
                    tag: Arc::from(tag.as_str()),
                })
            }
            Tok::Ident(_) => {
                let (name, _) = self.expect_ident()?;
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assign {
                    name: Arc::from(name.as_str()),
                    value,
                })
            }
            other => Err(Diagnostic::new(
                format!("expected a statement, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        self.expect(Tok::If)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.eat(&Tok::Else) {
            if self.peek() == &Tok::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// Desugars `for v = a to b { body }` into
    /// `v = a; end = b; while (v <= end) { body; v = v + 1; }`.
    fn for_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        self.expect(Tok::For)?;
        let (var, _) = self.expect_ident()?;
        let var: Arc<str> = Arc::from(var.as_str());
        self.expect(Tok::Assign)?;
        let from = self.expr()?;
        self.expect(Tok::To)?;
        let to = self.expr()?;
        let mut body = self.block()?;
        let end_var = self.fresh_name("for_end");
        body.push(Stmt::Assign {
            name: var.clone(),
            value: SurfExpr::bin(BinOp::Add, SurfExpr::Var(var.clone()), SurfExpr::lit(1i64)),
        });
        // A `for` is a statement; wrap the three desugared statements into a
        // guarded `if (true)` so we return a single Stmt. The IR lowering
        // flattens trivially-true conditionals away.
        Ok(Stmt::If {
            cond: SurfExpr::lit(true),
            then_body: vec![
                Stmt::Assign {
                    name: var.clone(),
                    value: from,
                },
                Stmt::Assign {
                    name: end_var.clone(),
                    value: to,
                },
                Stmt::While {
                    cond: SurfExpr::bin(BinOp::Le, SurfExpr::Var(var), SurfExpr::Var(end_var)),
                    body,
                },
            ],
            else_body: Vec::new(),
        })
    }

    fn expr(&mut self) -> Result<SurfExpr, Diagnostic> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SurfExpr, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = SurfExpr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SurfExpr, Diagnostic> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = SurfExpr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<SurfExpr, Diagnostic> {
        let lhs = self.bag_expr()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.bag_expr()?;
        Ok(SurfExpr::bin(op, lhs, rhs))
    }

    fn bag_expr(&mut self) -> Result<SurfExpr, Diagnostic> {
        let mut lhs = self.add_expr()?;
        loop {
            lhs = match self.peek() {
                Tok::Join => {
                    self.bump();
                    lhs.join(self.add_expr()?)
                }
                Tok::Cross => {
                    self.bump();
                    lhs.cross(self.add_expr()?)
                }
                Tok::Union => {
                    self.bump();
                    lhs.union(self.add_expr()?)
                }
                _ => return Ok(lhs),
            };
        }
    }

    fn add_expr(&mut self) -> Result<SurfExpr, Diagnostic> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = SurfExpr::bin(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> Result<SurfExpr, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = SurfExpr::bin(op, lhs, rhs);
        }
    }

    fn unary_expr(&mut self) -> Result<SurfExpr, Diagnostic> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            // Fold negated numeric literals so `-3` is a literal (and the
            // printer/parser round-trip is exact).
            return Ok(match e {
                SurfExpr::Lit(Value::I64(v)) => SurfExpr::Lit(Value::I64(v.wrapping_neg())),
                SurfExpr::Lit(Value::F64(v)) => SurfExpr::Lit(Value::F64(-v)),
                other => SurfExpr::Unary(UnOp::Neg, Box::new(other)),
            });
        }
        if self.eat(&Tok::Bang) {
            let e = self.unary_expr()?;
            return Ok(SurfExpr::Unary(UnOp::Not, Box::new(e)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<SurfExpr, Diagnostic> {
        let mut e = self.primary()?;
        loop {
            if self.eat(&Tok::Dot) {
                let (method, span) = self.expect_ident()?;
                self.expect(Tok::LParen)?;
                e = match method.as_str() {
                    "map" => {
                        let l = self.lambda(1)?;
                        self.expect(Tok::RParen)?;
                        e.map(l)
                    }
                    "flatMap" => {
                        let l = self.lambda(1)?;
                        self.expect(Tok::RParen)?;
                        e.flat_map(l)
                    }
                    "filter" => {
                        let l = self.lambda(1)?;
                        self.expect(Tok::RParen)?;
                        e.filter(l)
                    }
                    "reduceByKey" => {
                        let l = self.lambda(2)?;
                        self.expect(Tok::RParen)?;
                        e.reduce_by_key(l)
                    }
                    "reduce" => {
                        let l = self.lambda(2)?;
                        self.expect(Tok::RParen)?;
                        e.reduce(l)
                    }
                    "sum" => {
                        self.expect(Tok::RParen)?;
                        e.sum()
                    }
                    "count" => {
                        self.expect(Tok::RParen)?;
                        e.count()
                    }
                    "min" => {
                        self.expect(Tok::RParen)?;
                        e.min()
                    }
                    "max" => {
                        self.expect(Tok::RParen)?;
                        e.max()
                    }
                    "distinct" => {
                        self.expect(Tok::RParen)?;
                        e.distinct()
                    }
                    other => {
                        return Err(Diagnostic::new(
                            format!("unknown method `.{other}(..)`"),
                            span,
                        ))
                    }
                };
            } else if self.peek() == &Tok::LBracket {
                self.bump();
                let span = self.span();
                let idx = match self.bump().tok {
                    Tok::Int(v) if v >= 0 => v as usize,
                    other => {
                        return Err(Diagnostic::new(
                            format!(
                                "index must be a non-negative integer literal, found {}",
                                other.describe()
                            ),
                            span,
                        ))
                    }
                };
                self.expect(Tok::RBracket)?;
                e = e.index(idx);
            } else {
                return Ok(e);
            }
        }
    }

    fn lambda(&mut self, arity: usize) -> Result<Lambda, Diagnostic> {
        let span = self.span();
        if arity == 1 {
            // `x => body`
            let (p, _) = self.expect_ident()?;
            self.expect(Tok::Arrow)?;
            let body = self.expr()?;
            Ok(Lambda::unary(p, body))
        } else {
            // `(a, b) => body`
            self.expect(Tok::LParen)
                .map_err(|_| Diagnostic::new("expected a binary lambda `(a, b) => ..`", span))?;
            let (a, _) = self.expect_ident()?;
            self.expect(Tok::Comma)?;
            let (b, _) = self.expect_ident()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Arrow)?;
            let body = self.expr()?;
            Ok(Lambda::binary(a, b, body))
        }
    }

    fn call_args(&mut self) -> Result<Vec<SurfExpr>, Diagnostic> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<SurfExpr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(SurfExpr::Lit(Value::I64(v)))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(SurfExpr::Lit(Value::F64(v)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(SurfExpr::Lit(Value::str(s)))
            }
            Tok::True => {
                self.bump();
                Ok(SurfExpr::Lit(Value::Bool(true)))
            }
            Tok::False => {
                self.bump();
                Ok(SurfExpr::Lit(Value::Bool(false)))
            }
            Tok::Empty => {
                self.bump();
                Ok(SurfExpr::EmptyBag)
            }
            Tok::If => {
                // If-expression: `if c then a else b`.
                self.bump();
                let c = self.expr()?;
                self.expect(Tok::Then)?;
                let t = self.expr()?;
                self.expect(Tok::Else)?;
                let e = self.expr()?;
                Ok(SurfExpr::IfExpr(Box::new(c), Box::new(t), Box::new(e)))
            }
            Tok::Ident(name) if self.peek2() == &Tok::LParen => {
                self.bump();
                match name.as_str() {
                    "readFile" => {
                        let mut args = self.call_args()?;
                        if args.len() != 1 {
                            return Err(Diagnostic::new(
                                "readFile expects exactly one argument",
                                span,
                            ));
                        }
                        Ok(SurfExpr::ReadFile(Box::new(args.remove(0))))
                    }
                    "bag" => Ok(SurfExpr::BagLit(self.call_args()?)),
                    other => match Func::from_name(other) {
                        Some(func) => {
                            let args = self.call_args()?;
                            if args.len() != func.arity() {
                                return Err(Diagnostic::new(
                                    format!(
                                        "{} expects {} argument(s), got {}",
                                        func.name(),
                                        func.arity(),
                                        args.len()
                                    ),
                                    span,
                                ));
                            }
                            Ok(SurfExpr::Call(func, args))
                        }
                        None => Err(Diagnostic::new(format!("unknown function `{other}`"), span)),
                    },
                }
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(SurfExpr::var(name))
            }
            Tok::LParen => {
                self.bump();
                let first = self.expr()?;
                if self.eat(&Tok::Comma) {
                    let mut fields = vec![first];
                    loop {
                        fields.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(SurfExpr::Tuple(fields))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                if self.peek() != &Tok::RBracket {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(SurfExpr::List(elems))
            }
            other => Err(Diagnostic::new(
                format!("expected an expression, found {}", other.describe()),
                span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_visit_count_program() {
        let src = r#"
            yesterday = empty;
            day = 1;
            do {
                visits = readFile("pageVisitLog" + day);
                counts = visits.map(x => (x, 1)).reduceByKey((a, b) => a + b);
                if (day != 1) {
                    diffs = (counts join yesterday).map(t => abs(t[1] - t[2]));
                    writeFile(diffs.sum(), "diff" + day);
                }
                yesterday = counts;
                day = day + 1;
            } while (day <= 365);
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.stmts.len(), 3);
        match &p.stmts[2] {
            Stmt::DoWhile { body, cond } => {
                assert_eq!(body.len(), 5);
                assert_eq!(cond.to_string(), "(day <= 365)");
            }
            other => panic!("expected do-while, got {other:?}"),
        }
    }

    #[test]
    fn method_chain_precedence() {
        let e = parse_expr("visits.map(x => (x, 1)).reduceByKey((a, b) => a + b)").unwrap();
        assert!(matches!(e, SurfExpr::ReduceByKey(..)));
    }

    #[test]
    fn join_binds_looser_than_arithmetic() {
        let e = parse_expr("a join b").unwrap();
        assert!(matches!(e, SurfExpr::Join(..)));
        let e = parse_expr("a join b.filter(x => x > 0)").unwrap();
        match e {
            SurfExpr::Join(_, r) => assert!(matches!(*r, SurfExpr::Filter(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tuple_vs_paren() {
        assert!(matches!(parse_expr("(1, 2)").unwrap(), SurfExpr::Tuple(_)));
        assert!(matches!(parse_expr("(1)").unwrap(), SurfExpr::Lit(_)));
    }

    #[test]
    fn if_expression_and_statement() {
        let e = parse_expr("if x > 0 then 1 else 2").unwrap();
        assert!(matches!(e, SurfExpr::IfExpr(..)));
        let p = parse("if (x > 0) { y = 1; } else if (x < 0) { y = 2; } else { y = 3; }").unwrap();
        match &p.stmts[0] {
            Stmt::If { else_body, .. } => {
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_loop_desugars_to_while() {
        let p = parse("for day = 1 to 10 { output(day, \"days\"); }").unwrap();
        match &p.stmts[0] {
            Stmt::If { then_body, .. } => {
                assert_eq!(then_body.len(), 3);
                match &then_body[2] {
                    Stmt::While { body, .. } => {
                        assert_eq!(body.len(), 2, "body + increment");
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("x = ;").unwrap_err();
        assert!(err.message.contains("expected an expression"));
        assert_eq!(err.span.start, 4);
        let rendered = err.render("x = ;");
        assert!(rendered.contains("column 5"));
    }

    #[test]
    fn rejects_unknown_method() {
        let err = parse_expr("b.frobnicate()").unwrap_err();
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_wrong_builtin_arity() {
        let err = parse_expr("abs(1, 2)").unwrap_err();
        assert!(err.message.contains("expects 1"));
    }

    #[test]
    fn parses_builtins_and_indexing() {
        let e = parse_expr("dist2(p[1], c[1]) < eps").unwrap();
        assert!(matches!(e, SurfExpr::Binary(BinOp::Lt, ..)));
    }

    #[test]
    fn output_requires_string_tag() {
        assert!(parse("output(x, tag);").is_err());
        assert!(parse("output(x, \"tag\");").is_ok());
    }

    #[test]
    fn nested_loops_parse() {
        let src = r#"
            i = 0;
            while (i < 3) {
                j = 0;
                while (j < 2) {
                    j = j + 1;
                }
                i = i + 1;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.stmts.len(), 2);
    }

    #[test]
    fn display_parse_round_trip() {
        let src = "x = bag(1, 2, 3).map(v => v * 2);\n";
        let p = parse(src).unwrap();
        let reparsed = parse(&p.to_string()).unwrap();
        assert_eq!(p, reparsed);
    }
}
