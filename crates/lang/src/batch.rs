//! Typed columnar batches: the unit of data-plane exchange.
//!
//! A [`Batch`] holds a sequence of [`Value`]s as *columnar runs*:
//! consecutive elements of the same scalar type (`I64`, `F64`, `Bool`,
//! `Str`) are stored in a typed column with no per-element enum tag, and
//! consecutive tuples of the same arity are stored as one column per
//! field (each column itself typed, degrading to a mixed column when a
//! field's type varies). Everything else — units, lists, empty tuples,
//! type changes mid-stream — falls back to a row run of plain [`Value`]s,
//! so a batch can always represent any value sequence exactly.
//!
//! Batches also define the data plane's *wire format*: a compact
//! length-delimited encoding ([`Batch::encode`] / [`Batch::decode`]) whose
//! size ([`Batch::encoded_len`]) is what the runtime charges as real
//! network bytes, replacing the old per-element in-memory estimate. The
//! encoding round-trips bit-exactly (float columns are stored as raw bit
//! patterns, so NaN payloads and signed zeros survive).
//!
//! Setting the `MITOS_BATCH_OFF` environment variable (read once per
//! process) disables the columnar builder — every batch then uses the row
//! fallback, and the runtime falls back to the legacy estimated byte
//! accounting — which gives an A/B kill switch for the whole encoding
//! path. Outputs are identical either way; only byte accounting (and thus
//! simulated network timing) differs.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;
use std::sync::OnceLock;

/// Returns true when `MITOS_BATCH_OFF` is set: the columnar builder and
/// the real wire-byte accounting are disabled for A/B comparison runs.
pub fn batch_off() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| std::env::var_os("MITOS_BATCH_OFF").is_some())
}

/// A typed scalar column (one tuple field, or a top-level scalar run).
#[derive(Clone, Debug)]
enum Col {
    /// 64-bit integers, no per-element tag.
    I64(Vec<i64>),
    /// 64-bit floats; encoded as raw bit patterns for exact round-trips.
    F64(Vec<f64>),
    /// Booleans, one byte each on the wire.
    Bool(Vec<bool>),
    /// Interned strings.
    Str(Vec<Arc<str>>),
    /// Fallback for fields whose type varies (or is nested).
    Mixed(Vec<Value>),
}

impl Col {
    fn new_for(v: &Value) -> Col {
        match v {
            Value::I64(_) => Col::I64(Vec::new()),
            Value::F64(_) => Col::F64(Vec::new()),
            Value::Bool(_) => Col::Bool(Vec::new()),
            Value::Str(_) => Col::Str(Vec::new()),
            _ => Col::Mixed(Vec::new()),
        }
    }

    /// Appends `v`, degrading to [`Col::Mixed`] on a type mismatch.
    fn push(&mut self, v: &Value) {
        match (&mut *self, v) {
            (Col::I64(xs), Value::I64(x)) => xs.push(*x),
            (Col::F64(xs), Value::F64(x)) => xs.push(*x),
            (Col::Bool(xs), Value::Bool(x)) => xs.push(*x),
            (Col::Str(xs), Value::Str(x)) => xs.push(x.clone()),
            (Col::Mixed(xs), v) => xs.push(v.clone()),
            _ => {
                let mut rows = self.drain_values();
                rows.push(v.clone());
                *self = Col::Mixed(rows);
            }
        }
    }

    fn drain_values(&mut self) -> Vec<Value> {
        match std::mem::replace(self, Col::Mixed(Vec::new())) {
            Col::I64(xs) => xs.into_iter().map(Value::I64).collect(),
            Col::F64(xs) => xs.into_iter().map(Value::F64).collect(),
            Col::Bool(xs) => xs.into_iter().map(Value::Bool).collect(),
            Col::Str(xs) => xs.into_iter().map(Value::Str).collect(),
            Col::Mixed(xs) => xs,
        }
    }

    fn len(&self) -> usize {
        match self {
            Col::I64(xs) => xs.len(),
            Col::F64(xs) => xs.len(),
            Col::Bool(xs) => xs.len(),
            Col::Str(xs) => xs.len(),
            Col::Mixed(xs) => xs.len(),
        }
    }

    fn get(&self, i: usize) -> Value {
        match self {
            Col::I64(xs) => Value::I64(xs[i]),
            Col::F64(xs) => Value::F64(xs[i]),
            Col::Bool(xs) => Value::Bool(xs[i]),
            Col::Str(xs) => Value::Str(xs[i].clone()),
            Col::Mixed(xs) => xs[i].clone(),
        }
    }

    /// Sum of the legacy in-memory size estimates of the column's values
    /// (see [`Value::estimated_bytes`]).
    fn estimated_bytes(&self) -> u64 {
        match self {
            Col::I64(xs) => 8 * xs.len() as u64,
            Col::F64(xs) => 8 * xs.len() as u64,
            Col::Bool(xs) => xs.len() as u64,
            Col::Str(xs) => xs.iter().map(|s| 8 + s.len() as u64).sum(),
            Col::Mixed(xs) => xs.iter().map(Value::estimated_bytes).sum(),
        }
    }

    /// Wire size of the column payload (tag byte + data, count implied by
    /// the enclosing run header).
    fn encoded_len(&self) -> usize {
        1 + match self {
            Col::I64(xs) => 8 * xs.len(),
            Col::F64(xs) => 8 * xs.len(),
            Col::Bool(xs) => xs.len(),
            Col::Str(xs) => xs.iter().map(|s| 4 + s.len()).sum(),
            Col::Mixed(xs) => xs.iter().map(value_encoded_len).sum(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Col::I64(xs) => {
                out.push(COL_I64);
                for x in xs {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Col::F64(xs) => {
                out.push(COL_F64);
                for x in xs {
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            Col::Bool(xs) => {
                out.push(COL_BOOL);
                for x in xs {
                    out.push(*x as u8);
                }
            }
            Col::Str(xs) => {
                out.push(COL_STR);
                for s in xs {
                    encode_str(s, out);
                }
            }
            Col::Mixed(xs) => {
                out.push(COL_MIXED);
                for v in xs {
                    encode_value(v, out);
                }
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize, count: usize) -> Result<Col, DecodeError> {
        let tag = take_u8(buf, pos)?;
        Ok(match tag {
            COL_I64 => {
                let mut xs = Vec::with_capacity(count);
                for _ in 0..count {
                    xs.push(i64::from_le_bytes(take_array(buf, pos)?));
                }
                Col::I64(xs)
            }
            COL_F64 => {
                let mut xs = Vec::with_capacity(count);
                for _ in 0..count {
                    xs.push(f64::from_bits(u64::from_le_bytes(take_array(buf, pos)?)));
                }
                Col::F64(xs)
            }
            COL_BOOL => {
                let mut xs = Vec::with_capacity(count);
                for _ in 0..count {
                    xs.push(take_u8(buf, pos)? != 0);
                }
                Col::Bool(xs)
            }
            COL_STR => {
                let mut xs = Vec::with_capacity(count);
                for _ in 0..count {
                    xs.push(decode_str(buf, pos)?);
                }
                Col::Str(xs)
            }
            COL_MIXED => {
                let mut xs = Vec::with_capacity(count);
                for _ in 0..count {
                    xs.push(decode_value(buf, pos, 0)?);
                }
                Col::Mixed(xs)
            }
            other => return Err(DecodeError::new(format!("unknown column tag {other}"))),
        })
    }
}

/// One homogeneous run of a batch.
#[derive(Clone, Debug)]
enum Run {
    /// A run of same-typed scalars.
    Scalar(Col),
    /// A run of tuples sharing one arity, stored one column per field.
    Tuple { arity: usize, cols: Vec<Col> },
    /// The mixed-row fallback: plain values (units, lists, empty tuples,
    /// or whatever broke the preceding run).
    Rows(Vec<Value>),
}

impl Run {
    fn len(&self) -> usize {
        match self {
            Run::Scalar(c) => c.len(),
            Run::Tuple { cols, .. } => cols.first().map_or(0, Col::len),
            Run::Rows(rows) => rows.len(),
        }
    }
}

/// Run tags on the wire.
const RUN_ROWS: u8 = 0;
const RUN_SCALAR: u8 = 1;
const RUN_TUPLE: u8 = 2;

/// Column tags on the wire.
const COL_MIXED: u8 = 0;
const COL_I64: u8 = 1;
const COL_F64: u8 = 2;
const COL_BOOL: u8 = 3;
const COL_STR: u8 = 4;

/// Value tags on the wire (mirrors the [`Value`] variant order).
const VAL_UNIT: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_I64: u8 = 2;
const VAL_F64: u8 = 3;
const VAL_STR: u8 = 4;
const VAL_TUPLE: u8 = 5;
const VAL_LIST: u8 = 6;

/// Nesting bound for decoded tuples/lists, so a hostile or corrupt slab
/// cannot recurse the decoder off the stack.
const MAX_DEPTH: u32 = 64;

/// A typed columnar container of [`Value`]s with a compact wire encoding.
///
/// See the [module docs](self) for the layout. Build one with
/// [`Batch::from_values`] (or [`Batch::push`]), read it back with
/// [`Batch::iter`] / [`Batch::into_values`], and move it across the
/// network with [`Batch::encode`] / [`Batch::decode`].
#[derive(Clone, Debug, Default)]
pub struct Batch {
    runs: Vec<Run>,
    len: usize,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Batch {
        Batch::default()
    }

    /// Builds a batch from a value sequence, columnarizing runs of
    /// same-typed values (unless `MITOS_BATCH_OFF` forces the row
    /// fallback).
    pub fn from_values(values: Vec<Value>) -> Batch {
        if batch_off() {
            let len = values.len();
            let runs = if len == 0 {
                Vec::new()
            } else {
                vec![Run::Rows(values)]
            };
            return Batch { runs, len };
        }
        let mut b = Batch::new();
        for v in &values {
            b.push_ref(v);
        }
        b
    }

    /// Builds a batch from a slice of values (cloning each).
    pub fn from_slice(values: &[Value]) -> Batch {
        if batch_off() {
            return Batch::from_values(values.to_vec());
        }
        let mut b = Batch::new();
        for v in values {
            b.push_ref(v);
        }
        b
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one value, extending the final run when the type matches.
    pub fn push(&mut self, v: Value) {
        self.push_ref(&v);
    }

    fn push_ref(&mut self, v: &Value) {
        self.len += 1;
        if batch_off() {
            match self.runs.last_mut() {
                Some(Run::Rows(rows)) => rows.push(v.clone()),
                _ => self.runs.push(Run::Rows(vec![v.clone()])),
            }
            return;
        }
        match v {
            Value::I64(_) | Value::F64(_) | Value::Bool(_) | Value::Str(_) => {
                if let Some(Run::Scalar(col)) = self.runs.last_mut() {
                    if col_matches(col, v) {
                        col.push(v);
                        return;
                    }
                }
                let mut col = Col::new_for(v);
                col.push(v);
                self.runs.push(Run::Scalar(col));
            }
            Value::Tuple(fields) if !fields.is_empty() => {
                if let Some(Run::Tuple { arity, cols }) = self.runs.last_mut() {
                    if *arity == fields.len() {
                        for (col, f) in cols.iter_mut().zip(fields.iter()) {
                            col.push(f);
                        }
                        return;
                    }
                }
                let mut cols: Vec<Col> = fields.iter().map(Col::new_for).collect();
                for (col, f) in cols.iter_mut().zip(fields.iter()) {
                    col.push(f);
                }
                self.runs.push(Run::Tuple {
                    arity: fields.len(),
                    cols,
                });
            }
            other => match self.runs.last_mut() {
                Some(Run::Rows(rows)) => rows.push(other.clone()),
                _ => self.runs.push(Run::Rows(vec![other.clone()])),
            },
        }
    }

    /// Applies `f` to every element in order, short-circuiting on the
    /// first error. The dispatch on storage layout happens **once per
    /// run**: a monomorphic column's inner loop constructs each value
    /// directly from the typed column, with no per-element enum
    /// inspection of the input — the batch-at-a-time kernels are built on
    /// this.
    pub fn try_for_each<E>(&self, mut f: impl FnMut(Value) -> Result<(), E>) -> Result<(), E> {
        for run in &self.runs {
            match run {
                Run::Scalar(Col::I64(xs)) => {
                    for &x in xs {
                        f(Value::I64(x))?;
                    }
                }
                Run::Scalar(Col::F64(xs)) => {
                    for &x in xs {
                        f(Value::F64(x))?;
                    }
                }
                Run::Scalar(Col::Bool(xs)) => {
                    for &x in xs {
                        f(Value::Bool(x))?;
                    }
                }
                Run::Scalar(Col::Str(xs)) => {
                    for x in xs {
                        f(Value::Str(x.clone()))?;
                    }
                }
                Run::Scalar(Col::Mixed(xs)) | Run::Rows(xs) => {
                    for x in xs {
                        f(x.clone())?;
                    }
                }
                Run::Tuple { cols, .. } => {
                    for i in 0..run.len() {
                        f(Value::tuple(
                            cols.iter().map(|c| c.get(i)).collect::<Vec<_>>(),
                        ))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Iterates the batch's elements in order (reconstructing values from
    /// the columns).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.runs.iter().flat_map(|run| {
            (0..run.len()).map(move |i| match run {
                Run::Scalar(c) => c.get(i),
                Run::Tuple { cols, .. } => {
                    Value::tuple(cols.iter().map(|c| c.get(i)).collect::<Vec<_>>())
                }
                Run::Rows(rows) => rows[i].clone(),
            })
        })
    }

    /// Consumes the batch into a plain value vector.
    pub fn into_values(self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.len);
        for run in self.runs {
            match run {
                Run::Scalar(mut c) => out.append(&mut c.drain_values()),
                Run::Tuple { arity: _, cols } => {
                    let n = cols.first().map_or(0, Col::len);
                    let field_vecs: Vec<Vec<Value>> =
                        cols.into_iter().map(|mut c| c.drain_values()).collect();
                    for i in 0..n {
                        out.push(Value::tuple(
                            field_vecs.iter().map(|f| f[i].clone()).collect::<Vec<_>>(),
                        ));
                    }
                }
                Run::Rows(mut rows) => out.append(&mut rows),
            }
        }
        out
    }

    /// Sum of the elements' legacy in-memory size estimates
    /// ([`Value::estimated_bytes`]) — the basis of the pre-encoding wire
    /// estimate and of state-residency accounting.
    pub fn estimated_bytes(&self) -> u64 {
        self.runs
            .iter()
            .map(|run| match run {
                Run::Scalar(c) => c.estimated_bytes(),
                Run::Tuple { cols, .. } => {
                    let n = cols.first().map_or(0, Col::len) as u64;
                    2 * n + cols.iter().map(Col::estimated_bytes).sum::<u64>()
                }
                Run::Rows(rows) => rows.iter().map(Value::estimated_bytes).sum(),
            })
            .sum()
    }

    /// Exact size of [`Batch::encode`]'s output, computed without
    /// allocating the slab.
    pub fn encoded_len(&self) -> usize {
        4 + self
            .runs
            .iter()
            .map(|run| match run {
                Run::Scalar(c) => 1 + 4 + c.encoded_len(),
                Run::Tuple { cols, .. } => {
                    1 + 4 + 1 + cols.iter().map(Col::encoded_len).sum::<usize>()
                }
                Run::Rows(rows) => 1 + 4 + rows.iter().map(value_encoded_len).sum::<usize>(),
            })
            .sum::<usize>()
    }

    /// Serializes the batch to an owned byte slab in the length-delimited
    /// wire format (see the [module docs](self)).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.runs.len() as u32).to_le_bytes());
        for run in &self.runs {
            match run {
                Run::Scalar(c) => {
                    out.push(RUN_SCALAR);
                    out.extend_from_slice(&(c.len() as u32).to_le_bytes());
                    c.encode(&mut out);
                }
                Run::Tuple { arity, cols } => {
                    out.push(RUN_TUPLE);
                    let n = cols.first().map_or(0, Col::len);
                    out.extend_from_slice(&(n as u32).to_le_bytes());
                    out.push(*arity as u8);
                    for c in cols {
                        c.encode(&mut out);
                    }
                }
                Run::Rows(rows) => {
                    out.push(RUN_ROWS);
                    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                    for v in rows {
                        encode_value(v, &mut out);
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Deserializes a batch from a slab produced by [`Batch::encode`].
    /// Fails (never panics) on truncated or corrupt input, including
    /// trailing garbage.
    pub fn decode(buf: &[u8]) -> Result<Batch, DecodeError> {
        let mut pos = 0usize;
        let n_runs = take_u32(buf, &mut pos)? as usize;
        if n_runs > buf.len() {
            // Each run costs at least one byte; reject absurd counts
            // before reserving anything.
            return Err(DecodeError::new(format!(
                "run count {n_runs} exceeds input size {}",
                buf.len()
            )));
        }
        let mut runs = Vec::with_capacity(n_runs);
        let mut len = 0usize;
        for _ in 0..n_runs {
            let tag = take_u8(buf, &mut pos)?;
            let count = take_u32(buf, &mut pos)? as usize;
            if count > buf.len() {
                return Err(DecodeError::new(format!(
                    "element count {count} exceeds input size {}",
                    buf.len()
                )));
            }
            len += count;
            runs.push(match tag {
                RUN_SCALAR => Run::Scalar(Col::decode(buf, &mut pos, count)?),
                RUN_TUPLE => {
                    let arity = take_u8(buf, &mut pos)? as usize;
                    if arity == 0 {
                        return Err(DecodeError::new("tuple run with arity 0"));
                    }
                    let cols = (0..arity)
                        .map(|_| Col::decode(buf, &mut pos, count))
                        .collect::<Result<Vec<_>, _>>()?;
                    Run::Tuple { arity, cols }
                }
                RUN_ROWS => {
                    let rows = (0..count)
                        .map(|_| decode_value(buf, &mut pos, 0))
                        .collect::<Result<Vec<_>, _>>()?;
                    Run::Rows(rows)
                }
                other => return Err(DecodeError::new(format!("unknown run tag {other}"))),
            });
        }
        if pos != buf.len() {
            return Err(DecodeError::new(format!(
                "{} trailing bytes after batch",
                buf.len() - pos
            )));
        }
        Ok(Batch { runs, len })
    }
}

impl PartialEq for Batch {
    /// Element-wise equality under [`Value`] semantics (floats compare by
    /// bit pattern), independent of how the runs are laid out.
    fn eq(&self, other: &Batch) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl FromIterator<Value> for Batch {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Batch {
        let mut b = Batch::new();
        for v in iter {
            b.push(v);
        }
        b
    }
}

fn col_matches(col: &Col, v: &Value) -> bool {
    matches!(
        (col, v),
        (Col::I64(_), Value::I64(_))
            | (Col::F64(_), Value::F64(_))
            | (Col::Bool(_), Value::Bool(_))
            | (Col::Str(_), Value::Str(_))
    )
}

/// An error from [`Batch::decode`]: the input slab was truncated,
/// corrupt, or not a batch at all.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// Description of the failure.
    pub message: String,
}

impl DecodeError {
    fn new(message: impl Into<String>) -> DecodeError {
        DecodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

fn take_u8(buf: &[u8], pos: &mut usize) -> Result<u8, DecodeError> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| DecodeError::new("truncated input"))?;
    *pos += 1;
    Ok(b)
}

fn take_array<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], DecodeError> {
    let end = pos
        .checked_add(N)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| DecodeError::new("truncated input"))?;
    let mut arr = [0u8; N];
    arr.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(arr)
}

fn take_u32(buf: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    Ok(u32::from_le_bytes(take_array(buf, pos)?))
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn decode_str(buf: &[u8], pos: &mut usize) -> Result<Arc<str>, DecodeError> {
    let n = take_u32(buf, pos)? as usize;
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| DecodeError::new("truncated string"))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| DecodeError::new("string is not UTF-8"))?;
    *pos = end;
    Ok(Arc::from(s))
}

/// Wire size of one tagged value.
fn value_encoded_len(v: &Value) -> usize {
    1 + match v {
        Value::Unit => 0,
        Value::Bool(_) => 1,
        Value::I64(_) | Value::F64(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::Tuple(fs) => 4 + fs.iter().map(value_encoded_len).sum::<usize>(),
        Value::List(fs) => 4 + fs.iter().map(value_encoded_len).sum::<usize>(),
    }
}

/// Encodes one tagged value (the row-fallback / mixed-column element
/// format).
fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Unit => out.push(VAL_UNIT),
        Value::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(*b as u8);
        }
        Value::I64(x) => {
            out.push(VAL_I64);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(VAL_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(VAL_STR);
            encode_str(s, out);
        }
        Value::Tuple(fs) => {
            out.push(VAL_TUPLE);
            out.extend_from_slice(&(fs.len() as u32).to_le_bytes());
            for f in fs.iter() {
                encode_value(f, out);
            }
        }
        Value::List(fs) => {
            out.push(VAL_LIST);
            out.extend_from_slice(&(fs.len() as u32).to_le_bytes());
            for f in fs.iter() {
                encode_value(f, out);
            }
        }
    }
}

fn decode_value(buf: &[u8], pos: &mut usize, depth: u32) -> Result<Value, DecodeError> {
    if depth > MAX_DEPTH {
        return Err(DecodeError::new("value nesting too deep"));
    }
    Ok(match take_u8(buf, pos)? {
        VAL_UNIT => Value::Unit,
        VAL_BOOL => Value::Bool(take_u8(buf, pos)? != 0),
        VAL_I64 => Value::I64(i64::from_le_bytes(take_array(buf, pos)?)),
        VAL_F64 => Value::F64(f64::from_bits(u64::from_le_bytes(take_array(buf, pos)?))),
        VAL_STR => Value::Str(decode_str(buf, pos)?),
        tag @ (VAL_TUPLE | VAL_LIST) => {
            let n = take_u32(buf, pos)? as usize;
            if n > buf.len() {
                return Err(DecodeError::new(format!(
                    "field count {n} exceeds input size {}",
                    buf.len()
                )));
            }
            let fields = (0..n)
                .map(|_| decode_value(buf, pos, depth + 1))
                .collect::<Result<Vec<_>, _>>()?;
            if tag == VAL_TUPLE {
                Value::tuple(fields)
            } else {
                Value::list(fields)
            }
        }
        other => return Err(DecodeError::new(format!("unknown value tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: Vec<Value>) {
        let b = Batch::from_values(values.clone());
        assert_eq!(b.len(), values.len());
        assert_eq!(b.iter().collect::<Vec<_>>(), values, "iter reconstructs");
        let encoded = b.encode();
        assert_eq!(encoded.len(), b.encoded_len(), "encoded_len is exact");
        let decoded = Batch::decode(&encoded).expect("decodes");
        assert_eq!(decoded, b, "round-trip");
        assert_eq!(decoded.into_values(), values);
    }

    #[test]
    fn empty_batch_round_trips() {
        roundtrip(Vec::new());
    }

    #[test]
    fn monomorphic_columns_round_trip() {
        roundtrip((0..100).map(Value::I64).collect());
        roundtrip((0..10).map(|i| Value::F64(i as f64 / 3.0)).collect());
        roundtrip((0..10).map(|i| Value::Bool(i % 2 == 0)).collect());
        roundtrip((0..10).map(|i| Value::str(format!("s{i}"))).collect());
    }

    #[test]
    fn tuple_runs_are_columnar() {
        let values: Vec<Value> = (0..50)
            .map(|i| Value::tuple([Value::I64(i), Value::str(format!("v{i}"))]))
            .collect();
        let b = Batch::from_values(values.clone());
        if !batch_off() {
            assert_eq!(b.runs.len(), 1, "one tuple run");
        }
        roundtrip(values);
    }

    #[test]
    fn type_changes_split_runs_and_round_trip() {
        roundtrip(vec![
            Value::I64(1),
            Value::I64(2),
            Value::str("x"),
            Value::F64(-0.0),
            Value::Unit,
            Value::tuple([Value::I64(1), Value::I64(2)]),
            Value::tuple([Value::I64(3), Value::str("mixed field")]),
            Value::tuple([Value::I64(4), Value::I64(5), Value::I64(6)]),
            Value::list([Value::I64(9), Value::str("nested")]),
            Value::tuple([
                Value::tuple([Value::I64(1), Value::I64(2)]),
                Value::list([Value::Bool(true)]),
            ]),
            Value::Bool(false),
        ]);
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let values = vec![Value::F64(weird), Value::F64(f64::NEG_INFINITY)];
        let b = Batch::from_values(values);
        let decoded = Batch::decode(&b.encode()).unwrap();
        let out = decoded.into_values();
        match out[0] {
            Value::F64(x) => assert_eq!(x.to_bits(), 0x7ff8_dead_beef_0001),
            ref other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn estimated_bytes_matches_value_sum() {
        let values = vec![
            Value::I64(1),
            Value::str("abc"),
            Value::tuple([Value::I64(1), Value::F64(2.0)]),
            Value::Unit,
            Value::list([Value::I64(1)]),
        ];
        let expected: u64 = values.iter().map(Value::estimated_bytes).sum();
        assert_eq!(Batch::from_values(values).estimated_bytes(), expected);
    }

    #[test]
    fn columnar_encoding_beats_row_fallback_for_tuples() {
        let values: Vec<Value> = (0..1000)
            .map(|i| Value::tuple([Value::I64(i), Value::I64(i * 2)]))
            .collect();
        let b = Batch::from_values(values.clone());
        if batch_off() {
            return; // row fallback forced by the environment
        }
        let mut rows = Batch::new();
        rows.runs = vec![Run::Rows(values)];
        rows.len = 1000;
        assert!(
            b.encoded_len() < rows.encoded_len(),
            "columnar {} vs rows {}",
            b.encoded_len(),
            rows.encoded_len()
        );
    }

    #[test]
    fn truncated_and_corrupt_inputs_fail_cleanly() {
        let b = Batch::from_values((0..10).map(Value::I64).collect());
        let encoded = b.encode();
        for cut in 0..encoded.len() {
            assert!(
                Batch::decode(&encoded[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut garbage = encoded.clone();
        garbage.push(0);
        assert!(Batch::decode(&garbage).is_err(), "trailing byte must fail");
        let mut bad_tag = encoded;
        bad_tag[4] = 0xEE;
        assert!(Batch::decode(&bad_tag).is_err(), "bad run tag must fail");
    }

    #[test]
    fn absurd_counts_are_rejected_without_allocation() {
        // Claims u32::MAX runs with a 4-byte body.
        let claim = u32::MAX.to_le_bytes().to_vec();
        assert!(Batch::decode(&claim).is_err());
    }
}
