//! Dynamically typed values flowing through Mitos dataflows.
//!
//! The paper's frontend (Emma on Scala) is dynamically staged: bag elements
//! can be primitives or tuples. We mirror that with a compact [`Value`] enum.
//! Aggregate variants use `Arc` payloads so that cloning an element while it
//! is routed to several physical edges is O(1).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed value: a bag element or a wrapped scalar.
#[derive(Clone)]
pub enum Value {
    /// The unit value, produced by effect-only operators.
    Unit,
    /// A boolean, e.g. the payload of a condition node's one-element bag.
    Bool(bool),
    /// A 64-bit signed integer.
    I64(i64),
    /// A 64-bit float. Compared and hashed by bit pattern (total order).
    F64(f64),
    /// An immutable string.
    Str(Arc<str>),
    /// A fixed-arity tuple, e.g. `(pageId, count)` pairs.
    Tuple(Arc<[Value]>),
    /// A list, produced by `flatMap` lambdas and vector math builtins.
    List(Arc<[Value]>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds a tuple value from an iterator of fields.
    pub fn tuple(fields: impl IntoIterator<Item = Value>) -> Value {
        Value::Tuple(fields.into_iter().collect())
    }

    /// Builds a list value from an iterator of elements.
    pub fn list(elems: impl IntoIterator<Item = Value>) -> Value {
        Value::List(elems.into_iter().collect())
    }

    /// A short name of the value's runtime type, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
            Value::Tuple(_) => "tuple",
            Value::List(_) => "list",
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload; integers are widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the tuple fields, if this is a `Tuple`.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the list elements, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(t) => Some(t),
            _ => None,
        }
    }

    /// The field at `idx` of a tuple (or list) value.
    pub fn field(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Tuple(t) | Value::List(t) => t.get(idx),
            _ => None,
        }
    }

    /// The join/grouping key of an element: field 0 of a tuple, otherwise the
    /// value itself (so bags of plain integers can be grouped directly).
    pub fn key(&self) -> &Value {
        match self {
            Value::Tuple(t) if !t.is_empty() => &t[0],
            _ => self,
        }
    }

    /// Estimated serialized size in bytes, used by the cluster cost model.
    pub fn estimated_bytes(&self) -> u64 {
        match self {
            Value::Unit => 1,
            Value::Bool(_) => 1,
            Value::I64(_) => 8,
            Value::F64(_) => 8,
            Value::Str(s) => 8 + s.len() as u64,
            Value::Tuple(t) | Value::List(t) => {
                2 + t.iter().map(Value::estimated_bytes).sum::<u64>()
            }
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::I64(_) => 2,
            Value::F64(_) => 3,
            Value::Str(_) => 4,
            Value::Tuple(_) => 5,
            Value::List(_) => 6,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::I64(a), Value::I64(b)) => a == b,
            // Bit-pattern equality: NaN == NaN, so values are usable as keys.
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Tuple(a), Value::Tuple(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.tag());
        match self {
            Value::Unit => {}
            Value::Bool(b) => b.hash(state),
            Value::I64(v) => v.hash(state),
            Value::F64(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Tuple(t) | Value::List(t) => {
                state.write_usize(t.len());
                for v in t.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// A deterministic total order across all value types (tag first, then
    /// payload). Used to canonicalize multisets when comparing results.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::I64(a), Value::I64(b)) => a.cmp(b),
            (Value::F64(a), Value::F64(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Tuple(a), Value::Tuple(b)) | (Value::List(a), Value::List(b)) => {
                a.iter().cmp(b.iter())
            }
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:?}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tuple(t) => {
                write!(f, "(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ")")
            }
            Value::List(t) => {
                write!(f, "[")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// Sorts a bag's elements into a canonical order, for multiset comparison.
pub fn canonicalize(mut bag: Vec<Value>) -> Vec<Value> {
    bag.sort_unstable();
    bag
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn eq_and_hash_agree_for_floats() {
        let a = Value::F64(1.5);
        let b = Value::F64(1.5);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        let nan1 = Value::F64(f64::NAN);
        let nan2 = Value::F64(f64::NAN);
        assert_eq!(nan1, nan2, "NaN must be usable as a grouping key");
    }

    #[test]
    fn negative_zero_differs_from_zero_bitwise() {
        assert_ne!(Value::F64(0.0), Value::F64(-0.0));
    }

    #[test]
    fn tuple_key_is_first_field() {
        let v = Value::tuple([Value::I64(7), Value::str("x")]);
        assert_eq!(v.key(), &Value::I64(7));
        assert_eq!(Value::I64(3).key(), &Value::I64(3));
    }

    #[test]
    fn total_order_is_deterministic_across_types() {
        let mut vals = [
            Value::str("b"),
            Value::I64(2),
            Value::Bool(true),
            Value::F64(0.5),
            Value::I64(1),
            Value::Unit,
        ];
        vals.sort();
        let tags: Vec<&str> = vals.iter().map(Value::type_name).collect();
        assert_eq!(tags, ["unit", "bool", "i64", "i64", "f64", "str"]);
        assert_eq!(vals[2], Value::I64(1));
    }

    #[test]
    fn estimated_bytes_counts_nested() {
        let v = Value::tuple([Value::I64(1), Value::str("abc")]);
        assert_eq!(v.estimated_bytes(), 2 + 8 + 8 + 3);
    }

    #[test]
    fn display_strings_unquoted() {
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(format!("{:?}", Value::str("hi")), "\"hi\"");
        assert_eq!(
            Value::tuple([Value::I64(1), Value::I64(2)]).to_string(),
            "(1, 2)"
        );
    }

    #[test]
    fn field_access() {
        let v = Value::tuple([Value::I64(1), Value::I64(2)]);
        assert_eq!(v.field(1), Some(&Value::I64(2)));
        assert_eq!(v.field(2), None);
        assert_eq!(Value::I64(1).field(0), None);
    }

    #[test]
    fn canonicalize_sorts() {
        let bag = vec![Value::I64(3), Value::I64(1), Value::I64(2)];
        assert_eq!(
            canonicalize(bag),
            vec![Value::I64(1), Value::I64(2), Value::I64(3)]
        );
    }
}
