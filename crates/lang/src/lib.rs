//! # mitos-lang
//!
//! The frontend of the Mitos reproduction: the dynamically typed [`Value`]
//! model, the scalar expression language ([`expr`]), the surface AST of the
//! imperative data-analysis language ([`ast`]), and a textual
//! lexer/parser ([`parser`]) with source-located diagnostics ([`diag`]).
//!
//! The paper obtains the user's imperative program via Scala macros over
//! Emma; in Rust we provide the equivalent ingestion path as a small textual
//! language plus a fluent AST builder (see `DESIGN.md` for the substitution
//! rationale). Everything downstream of the AST — simplification, SSA,
//! dataflow building, runtime coordination — follows the paper directly.

#![warn(missing_docs)]

pub mod ast;
pub mod batch;
pub mod builder;
pub mod diag;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod value;

pub use ast::{Lambda, Program, Stmt, SurfExpr};
pub use batch::{Batch, DecodeError};
pub use builder::ProgramBuilder;
pub use diag::{Diagnostic, Span};
pub use expr::{eval, BinOp, EvalError, Expr, Func, UnOp};
pub use parser::{parse, parse_expr};
pub use value::{canonicalize, Value};
