//! A fluent builder for constructing [`Program`]s programmatically — the
//! Rust-native alternative to the textual frontend, for tooling and tests
//! that generate programs.
//!
//! ```
//! use mitos_lang::builder::ProgramBuilder;
//! use mitos_lang::{SurfExpr, Lambda, BinOp};
//!
//! let program = ProgramBuilder::new()
//!     .assign("total", SurfExpr::lit(0i64))
//!     .for_loop("d", SurfExpr::lit(1i64), SurfExpr::lit(3i64), |body| {
//!         body.assign(
//!             "total",
//!             SurfExpr::bin(BinOp::Add, SurfExpr::var("total"), SurfExpr::var("d")),
//!         )
//!     })
//!     .output(SurfExpr::var("total"), "total")
//!     .build();
//! assert!(program.to_string().contains("while"));
//! ```

use crate::ast::{Program, Stmt, SurfExpr};
use crate::expr::BinOp;
use std::sync::Arc;

/// Accumulates statements; see the module docs for an example.
#[derive(Default, Debug)]
pub struct ProgramBuilder {
    stmts: Vec<Stmt>,
    fresh: usize,
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// `name = value;`
    pub fn assign(mut self, name: impl AsRef<str>, value: SurfExpr) -> Self {
        self.stmts.push(Stmt::Assign {
            name: Arc::from(name.as_ref()),
            value,
        });
        self
    }

    /// `if (cond) { then } else { els }`
    pub fn if_else(
        mut self,
        cond: SurfExpr,
        then: impl FnOnce(ProgramBuilder) -> ProgramBuilder,
        els: impl FnOnce(ProgramBuilder) -> ProgramBuilder,
    ) -> Self {
        let then_body = then(ProgramBuilder::new()).stmts;
        let else_body = els(ProgramBuilder::new()).stmts;
        self.stmts.push(Stmt::If {
            cond,
            then_body,
            else_body,
        });
        self
    }

    /// `if (cond) { then }` with an empty else branch.
    pub fn if_then(
        self,
        cond: SurfExpr,
        then: impl FnOnce(ProgramBuilder) -> ProgramBuilder,
    ) -> Self {
        self.if_else(cond, then, |b| b)
    }

    /// `while (cond) { body }`
    pub fn while_loop(
        mut self,
        cond: SurfExpr,
        body: impl FnOnce(ProgramBuilder) -> ProgramBuilder,
    ) -> Self {
        let body = body(ProgramBuilder::new()).stmts;
        self.stmts.push(Stmt::While { cond, body });
        self
    }

    /// `do { body } while (cond);`
    pub fn do_while(
        mut self,
        body: impl FnOnce(ProgramBuilder) -> ProgramBuilder,
        cond: SurfExpr,
    ) -> Self {
        let body = body(ProgramBuilder::new()).stmts;
        self.stmts.push(Stmt::DoWhile { body, cond });
        self
    }

    /// `for var = from to to { body }` — desugared to the same
    /// init/while/increment shape the parser produces.
    pub fn for_loop(
        mut self,
        var: impl AsRef<str>,
        from: SurfExpr,
        to: SurfExpr,
        body: impl FnOnce(ProgramBuilder) -> ProgramBuilder,
    ) -> Self {
        let var: Arc<str> = Arc::from(var.as_ref());
        self.fresh += 1;
        let end: Arc<str> = Arc::from(format!("__built_for_end{}", self.fresh).as_str());
        let mut stmts = body(ProgramBuilder::new()).stmts;
        stmts.push(Stmt::Assign {
            name: var.clone(),
            value: SurfExpr::bin(BinOp::Add, SurfExpr::Var(var.clone()), SurfExpr::lit(1i64)),
        });
        self.stmts.push(Stmt::Assign {
            name: var.clone(),
            value: from,
        });
        self.stmts.push(Stmt::Assign {
            name: end.clone(),
            value: to,
        });
        self.stmts.push(Stmt::While {
            cond: SurfExpr::bin(BinOp::Le, SurfExpr::Var(var), SurfExpr::Var(end)),
            body: stmts,
        });
        self
    }

    /// `writeFile(value, name);`
    pub fn write_file(mut self, value: SurfExpr, name: SurfExpr) -> Self {
        self.stmts.push(Stmt::WriteFile { value, name });
        self
    }

    /// `output(value, "tag");`
    pub fn output(mut self, value: SurfExpr, tag: impl AsRef<str>) -> Self {
        self.stmts.push(Stmt::Output {
            value,
            tag: Arc::from(tag.as_ref()),
        });
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program::new(self.stmts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn builder_matches_parser_for_equivalent_source() {
        let built = ProgramBuilder::new()
            .assign("x", SurfExpr::lit(1i64))
            .if_else(
                SurfExpr::bin(BinOp::Gt, SurfExpr::var("x"), SurfExpr::lit(0i64)),
                |b| b.assign("y", SurfExpr::lit(10i64)),
                |b| b.assign("y", SurfExpr::lit(20i64)),
            )
            .output(SurfExpr::var("y"), "y")
            .build();
        let parsed =
            parse("x = 1; if ((x > 0)) { y = 10; } else { y = 20; } output(y, \"y\");").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn nested_builders_compose() {
        let p = ProgramBuilder::new()
            .assign("s", SurfExpr::lit(0i64))
            .while_loop(
                SurfExpr::bin(BinOp::Lt, SurfExpr::var("s"), SurfExpr::lit(5i64)),
                |b| {
                    b.if_then(
                        SurfExpr::bin(BinOp::Eq, SurfExpr::var("s"), SurfExpr::lit(2i64)),
                        |b| b.output(SurfExpr::var("s"), "hit"),
                    )
                    .assign(
                        "s",
                        SurfExpr::bin(BinOp::Add, SurfExpr::var("s"), SurfExpr::lit(1i64)),
                    )
                },
            )
            .build();
        // Round-trips through the printer/parser.
        let reparsed = parse(&p.to_string()).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn for_loop_counts() {
        let p = ProgramBuilder::new()
            .assign("n", SurfExpr::lit(0i64))
            .for_loop("i", SurfExpr::lit(1i64), SurfExpr::lit(4i64), |b| {
                b.assign(
                    "n",
                    SurfExpr::bin(BinOp::Add, SurfExpr::var("n"), SurfExpr::lit(1i64)),
                )
            })
            .output(SurfExpr::var("n"), "n")
            .build();
        let text = p.to_string();
        assert!(text.contains("while"), "{text}");
        assert!(text.contains("__built_for_end1"), "{text}");
    }
}
