//! Scalar expressions: the bodies of operator lambdas and of wrapped scalar
//! computations.
//!
//! An [`Expr`] appears in two stages of the pipeline:
//!
//! * **Surface stage** — produced by the parser/builder. Free variables are
//!   [`Expr::Var`] nodes referring to program variables by name.
//! * **Compiled stage** — after IR lowering, every free variable has been
//!   rewritten to a positional [`Expr::Param`]: parameter 0 (and 1 for binary
//!   lambdas) is the bag element, later parameters are captured scalar
//!   variables that the dataflow builder turned into extra one-element-bag
//!   inputs of the operator.
//!
//! The evaluator only accepts compiled expressions; hitting a `Var` at
//! runtime is reported as an internal error.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Binary operators of the expression language.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // arithmetic/comparison variants are self-describing
pub enum BinOp {
    /// Numeric addition; string concatenation when either side is a string.
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// Built-in functions callable from expressions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // each is documented on its doc comment group
pub enum Func {
    /// `abs(x)` — absolute value of an i64 or f64.
    Abs,
    /// `sqrt(x)` — square root (result is f64).
    Sqrt,
    /// `min(a, b)` / `max(a, b)` — numeric minimum / maximum.
    Min,
    Max,
    /// `floor(x)` / `ceil(x)` — rounding to i64.
    Floor,
    Ceil,
    /// `hash(x)` — a deterministic 64-bit hash of any value.
    Hash,
    /// `str(x)` — render any value as a string.
    ToStr,
    /// `i64(x)` / `f64(x)` — numeric conversions (also parse strings).
    ToI64,
    ToF64,
    /// `len(x)` — length of a string, tuple, or list.
    Len,
    /// `dist2(a, b)` — squared Euclidean distance of two numeric lists.
    Dist2,
    /// `vadd(a, b)` — element-wise sum of two numeric lists.
    VAdd,
    /// `vscale(a, s)` — multiply each element of a numeric list by a scalar.
    VScale,
}

impl Func {
    /// Parses a builtin name, as used by the parser.
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name {
            "abs" => Func::Abs,
            "sqrt" => Func::Sqrt,
            "min" => Func::Min,
            "max" => Func::Max,
            "floor" => Func::Floor,
            "ceil" => Func::Ceil,
            "hash" => Func::Hash,
            "str" => Func::ToStr,
            "i64" => Func::ToI64,
            "f64" => Func::ToF64,
            "len" => Func::Len,
            "dist2" => Func::Dist2,
            "vadd" => Func::VAdd,
            "vscale" => Func::VScale,
            _ => return None,
        })
    }

    /// The number of arguments the builtin expects.
    pub fn arity(self) -> usize {
        match self {
            Func::Abs
            | Func::Sqrt
            | Func::Floor
            | Func::Ceil
            | Func::Hash
            | Func::ToStr
            | Func::ToI64
            | Func::ToF64
            | Func::Len => 1,
            Func::Min | Func::Max | Func::Dist2 | Func::VAdd | Func::VScale => 2,
        }
    }

    /// The surface name of the builtin.
    pub fn name(self) -> &'static str {
        match self {
            Func::Abs => "abs",
            Func::Sqrt => "sqrt",
            Func::Min => "min",
            Func::Max => "max",
            Func::Floor => "floor",
            Func::Ceil => "ceil",
            Func::Hash => "hash",
            Func::ToStr => "str",
            Func::ToI64 => "i64",
            Func::ToF64 => "f64",
            Func::Len => "len",
            Func::Dist2 => "dist2",
            Func::VAdd => "vadd",
            Func::VScale => "vscale",
        }
    }
}

/// A scalar expression tree.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A named variable reference (surface stage only).
    Var(Arc<str>),
    /// A positional parameter (compiled stage).
    Param(usize),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// List construction.
    List(Vec<Expr>),
    /// Indexing into a tuple or list: `e[2]`.
    Index(Box<Expr>, usize),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation. `&&`/`||` short-circuit.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Builtin function call.
    Call(Func, Vec<Expr>),
    /// Conditional expression: `if c then a else b`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A literal expression.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// A named variable reference.
    pub fn var(name: impl AsRef<str>) -> Expr {
        Expr::Var(Arc::from(name.as_ref()))
    }

    /// Shorthand for a binary operation.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// Collects the free variable names of the expression, in first-use order.
    pub fn free_vars(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Var(name) = e {
                if !out.iter().any(|n: &Arc<str>| n == name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// The largest `Param` index used, if any.
    pub fn max_param(&self) -> Option<usize> {
        let mut max: Option<usize> = None;
        self.walk(&mut |e| {
            if let Expr::Param(i) = e {
                max = Some(max.map_or(*i, |m| m.max(*i)));
            }
        });
        max
    }

    /// Number of nodes in the tree; used by the cost model to charge
    /// per-element CPU time proportional to lambda complexity.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Rewrites every `Var` node using `f`; used by IR lowering to replace
    /// names with positional parameters.
    pub fn map_vars(&self, f: &mut impl FnMut(&str) -> Expr) -> Expr {
        match self {
            Expr::Var(name) => f(name),
            Expr::Lit(_) | Expr::Param(_) => self.clone(),
            Expr::Tuple(es) => Expr::Tuple(es.iter().map(|e| e.map_vars(f)).collect()),
            Expr::List(es) => Expr::List(es.iter().map(|e| e.map_vars(f)).collect()),
            Expr::Index(e, i) => Expr::Index(Box::new(e.map_vars(f)), *i),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.map_vars(f))),
            Expr::Binary(op, l, r) => {
                Expr::Binary(*op, Box::new(l.map_vars(f)), Box::new(r.map_vars(f)))
            }
            Expr::Call(func, es) => Expr::Call(*func, es.iter().map(|e| e.map_vars(f)).collect()),
            Expr::If(c, t, e) => Expr::If(
                Box::new(c.map_vars(f)),
                Box::new(t.map_vars(f)),
                Box::new(e.map_vars(f)),
            ),
        }
    }

    fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) => {}
            Expr::Tuple(es) | Expr::List(es) | Expr::Call(_, es) => {
                for e in es {
                    e.walk(f);
                }
            }
            Expr::Index(e, _) | Expr::Unary(_, e) => e.walk(f),
            Expr::Binary(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            Expr::If(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v:?}"),
            Expr::Var(n) => write!(f, "{n}"),
            Expr::Param(i) => write!(f, "${i}"),
            Expr::Tuple(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::List(es) => {
                write!(f, "[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Expr::Index(e, i) => write!(f, "{e}[{i}]"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "!({e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::Call(func, es) => {
                write!(f, "{}(", func.name())?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
        }
    }
}

/// An error raised while evaluating a compiled expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EvalError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl EvalError {
    fn new(message: impl Into<String>) -> EvalError {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Evaluates a compiled expression against positional parameters.
pub fn eval(expr: &Expr, params: &[Value]) -> Result<Value, EvalError> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(name) => Err(EvalError::new(format!(
            "unresolved variable `{name}` at runtime (internal lowering bug)"
        ))),
        Expr::Param(i) => params.get(*i).cloned().ok_or_else(|| {
            EvalError::new(format!(
                "parameter ${i} out of range ({} provided)",
                params.len()
            ))
        }),
        Expr::Tuple(es) => {
            let fields: Result<Vec<Value>, EvalError> =
                es.iter().map(|e| eval(e, params)).collect();
            Ok(Value::tuple(fields?))
        }
        Expr::List(es) => {
            let elems: Result<Vec<Value>, EvalError> = es.iter().map(|e| eval(e, params)).collect();
            Ok(Value::list(elems?))
        }
        Expr::Index(e, i) => {
            let v = eval(e, params)?;
            v.field(*i)
                .cloned()
                .ok_or_else(|| EvalError::new(format!("index {i} out of range on {v:?}")))
        }
        Expr::Unary(op, e) => {
            let v = eval(e, params)?;
            match (op, &v) {
                (UnOp::Neg, Value::I64(x)) => Ok(Value::I64(x.wrapping_neg())),
                (UnOp::Neg, Value::F64(x)) => Ok(Value::F64(-x)),
                (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                _ => Err(EvalError::new(format!(
                    "cannot apply {op:?} to {}",
                    v.type_name()
                ))),
            }
        }
        Expr::Binary(BinOp::And, l, r) => {
            if expect_bool(eval(l, params)?)? {
                Ok(Value::Bool(expect_bool(eval(r, params)?)?))
            } else {
                Ok(Value::Bool(false))
            }
        }
        Expr::Binary(BinOp::Or, l, r) => {
            if expect_bool(eval(l, params)?)? {
                Ok(Value::Bool(true))
            } else {
                Ok(Value::Bool(expect_bool(eval(r, params)?)?))
            }
        }
        Expr::Binary(op, l, r) => {
            let lv = eval(l, params)?;
            let rv = eval(r, params)?;
            eval_binary(*op, lv, rv)
        }
        Expr::Call(func, es) => {
            let args: Result<Vec<Value>, EvalError> = es.iter().map(|e| eval(e, params)).collect();
            eval_call(*func, &args?)
        }
        Expr::If(c, t, e) => {
            if expect_bool(eval(c, params)?)? {
                eval(t, params)
            } else {
                eval(e, params)
            }
        }
    }
}

fn expect_bool(v: Value) -> Result<bool, EvalError> {
    v.as_bool()
        .ok_or_else(|| EvalError::new(format!("expected bool, got {}", v.type_name())))
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match op {
        Eq => return Ok(Value::Bool(l == r)),
        Ne => return Ok(Value::Bool(l != r)),
        Lt => return Ok(Value::Bool(l.cmp(&r).is_lt())),
        Le => return Ok(Value::Bool(l.cmp(&r).is_le())),
        Gt => return Ok(Value::Bool(l.cmp(&r).is_gt())),
        Ge => return Ok(Value::Bool(l.cmp(&r).is_ge())),
        _ => {}
    }
    // `+` on strings is concatenation; the right side is stringified, which
    // is what `"pageVisitLog" + day` in the running example relies on.
    if op == Add {
        if let Value::Str(s) = &l {
            return Ok(Value::str(format!("{s}{r}")));
        }
        if let Value::Str(s) = &r {
            return Ok(Value::str(format!("{l}{s}")));
        }
    }
    match (&l, &r) {
        (Value::I64(a), Value::I64(b)) => {
            let v = match op {
                Add => a.wrapping_add(*b),
                Sub => a.wrapping_sub(*b),
                Mul => a.wrapping_mul(*b),
                Div => {
                    if *b == 0 {
                        return Err(EvalError::new("integer division by zero"));
                    }
                    a.wrapping_div(*b)
                }
                Mod => {
                    if *b == 0 {
                        return Err(EvalError::new("integer modulo by zero"));
                    }
                    a.wrapping_rem(*b)
                }
                _ => unreachable!("comparisons handled above"),
            };
            Ok(Value::I64(v))
        }
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EvalError::new(format!(
                        "cannot apply `{}` to {} and {}",
                        op.symbol(),
                        l.type_name(),
                        r.type_name()
                    )))
                }
            };
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a % b,
                _ => unreachable!("comparisons handled above"),
            };
            Ok(Value::F64(v))
        }
    }
}

fn eval_call(func: Func, args: &[Value]) -> Result<Value, EvalError> {
    if args.len() != func.arity() {
        return Err(EvalError::new(format!(
            "{} expects {} argument(s), got {}",
            func.name(),
            func.arity(),
            args.len()
        )));
    }
    let num = |v: &Value| -> Result<f64, EvalError> {
        v.as_f64()
            .ok_or_else(|| EvalError::new(format!("{} expects a number", func.name())))
    };
    match func {
        Func::Abs => match &args[0] {
            Value::I64(v) => Ok(Value::I64(v.wrapping_abs())),
            Value::F64(v) => Ok(Value::F64(v.abs())),
            v => Err(EvalError::new(format!("abs expects a number, got {v:?}"))),
        },
        Func::Sqrt => Ok(Value::F64(num(&args[0])?.sqrt())),
        Func::Min | Func::Max => match (&args[0], &args[1]) {
            (Value::I64(a), Value::I64(b)) => Ok(Value::I64(if func == Func::Min {
                *a.min(b)
            } else {
                *a.max(b)
            })),
            (a, b) => {
                let (x, y) = (num(a)?, num(b)?);
                Ok(Value::F64(if func == Func::Min {
                    x.min(y)
                } else {
                    x.max(y)
                }))
            }
        },
        Func::Floor => Ok(Value::I64(num(&args[0])?.floor() as i64)),
        Func::Ceil => Ok(Value::I64(num(&args[0])?.ceil() as i64)),
        Func::Hash => {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            args[0].hash(&mut h);
            Ok(Value::I64(h.finish() as i64))
        }
        Func::ToStr => Ok(Value::str(args[0].to_string())),
        Func::ToI64 => match &args[0] {
            Value::I64(v) => Ok(Value::I64(*v)),
            Value::F64(v) => Ok(Value::I64(*v as i64)),
            Value::Bool(b) => Ok(Value::I64(*b as i64)),
            Value::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::I64)
                .map_err(|_| EvalError::new(format!("cannot parse {s:?} as i64"))),
            v => Err(EvalError::new(format!("cannot convert {v:?} to i64"))),
        },
        Func::ToF64 => match &args[0] {
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::F64)
                .map_err(|_| EvalError::new(format!("cannot parse {s:?} as f64"))),
            v => num(v).map(Value::F64),
        },
        Func::Len => match &args[0] {
            Value::Str(s) => Ok(Value::I64(s.len() as i64)),
            Value::Tuple(t) | Value::List(t) => Ok(Value::I64(t.len() as i64)),
            v => Err(EvalError::new(format!(
                "len expects str/tuple/list, got {v:?}"
            ))),
        },
        Func::Dist2 => {
            let (a, b) = (numeric_list(&args[0])?, numeric_list(&args[1])?);
            if a.len() != b.len() {
                return Err(EvalError::new("dist2: dimension mismatch"));
            }
            Ok(Value::F64(
                a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum(),
            ))
        }
        Func::VAdd => {
            let (a, b) = (numeric_list(&args[0])?, numeric_list(&args[1])?);
            if a.len() != b.len() {
                return Err(EvalError::new("vadd: dimension mismatch"));
            }
            Ok(Value::list(
                a.iter().zip(b.iter()).map(|(x, y)| Value::F64(x + y)),
            ))
        }
        Func::VScale => {
            let a = numeric_list(&args[0])?;
            let s = num(&args[1])?;
            Ok(Value::list(a.iter().map(|x| Value::F64(x * s))))
        }
    }
}

fn numeric_list(v: &Value) -> Result<Vec<f64>, EvalError> {
    let elems = v
        .as_list()
        .or_else(|| v.as_tuple())
        .ok_or_else(|| EvalError::new(format!("expected a numeric list, got {v:?}")))?;
    elems
        .iter()
        .map(|e| {
            e.as_f64()
                .ok_or_else(|| EvalError::new(format!("expected a number, got {e:?}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(expr: &Expr) -> Value {
        eval(expr, &[]).unwrap()
    }

    #[test]
    fn arithmetic_int_and_float() {
        let sum = Expr::bin(BinOp::Add, Expr::lit(2i64), Expr::lit(3i64));
        assert_eq!(e(&sum), Value::I64(5));
        let mixed = Expr::bin(BinOp::Mul, Expr::lit(2i64), Expr::lit(1.5f64));
        assert_eq!(e(&mixed), Value::F64(3.0));
    }

    #[test]
    fn string_concat_builds_file_names() {
        let name = Expr::bin(BinOp::Add, Expr::lit("pageVisitLog"), Expr::lit(7i64));
        assert_eq!(e(&name), Value::str("pageVisitLog7"));
        let rev = Expr::bin(BinOp::Add, Expr::lit(7i64), Expr::lit("x"));
        assert_eq!(e(&rev), Value::str("7x"));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let div = Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        assert!(eval(&div, &[]).is_err());
        let modz = Expr::bin(BinOp::Mod, Expr::lit(1i64), Expr::lit(0i64));
        assert!(eval(&modz, &[]).is_err());
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        let bad = Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        let guarded = Expr::bin(
            BinOp::And,
            Expr::lit(false),
            Expr::bin(BinOp::Eq, bad.clone(), Expr::lit(1i64)),
        );
        assert_eq!(e(&guarded), Value::Bool(false));
        let or = Expr::bin(
            BinOp::Or,
            Expr::lit(true),
            Expr::bin(BinOp::Eq, bad, Expr::lit(1i64)),
        );
        assert_eq!(e(&or), Value::Bool(true));
    }

    #[test]
    fn params_and_indexing() {
        let expr = Expr::bin(
            BinOp::Sub,
            Expr::Index(Box::new(Expr::Param(0)), 1),
            Expr::Index(Box::new(Expr::Param(0)), 2),
        );
        let row = Value::tuple([Value::I64(9), Value::I64(10), Value::I64(4)]);
        assert_eq!(eval(&expr, &[row]).unwrap(), Value::I64(6));
    }

    #[test]
    fn unresolved_var_is_internal_error() {
        let err = eval(&Expr::var("day"), &[]).unwrap_err();
        assert!(err.message.contains("day"));
    }

    #[test]
    fn builtins() {
        assert_eq!(
            e(&Expr::Call(Func::Abs, vec![Expr::lit(-4i64)])),
            Value::I64(4)
        );
        assert_eq!(
            e(&Expr::Call(
                Func::Min,
                vec![Expr::lit(4i64), Expr::lit(2i64)]
            )),
            Value::I64(2)
        );
        assert_eq!(
            e(&Expr::Call(Func::ToStr, vec![Expr::lit(12i64)])),
            Value::str("12")
        );
        assert_eq!(
            e(&Expr::Call(Func::ToI64, vec![Expr::lit("42")])),
            Value::I64(42)
        );
        assert_eq!(
            e(&Expr::Call(
                Func::Dist2,
                vec![
                    Expr::List(vec![Expr::lit(0.0), Expr::lit(0.0)]),
                    Expr::List(vec![Expr::lit(3.0), Expr::lit(4.0)]),
                ]
            )),
            Value::F64(25.0)
        );
    }

    #[test]
    fn vector_math() {
        let v = e(&Expr::Call(
            Func::VAdd,
            vec![
                Expr::List(vec![Expr::lit(1.0), Expr::lit(2.0)]),
                Expr::List(vec![Expr::lit(10.0), Expr::lit(20.0)]),
            ],
        ));
        assert_eq!(v, Value::list([Value::F64(11.0), Value::F64(22.0)]));
        let s = e(&Expr::Call(
            Func::VScale,
            vec![
                Expr::List(vec![Expr::lit(2.0), Expr::lit(4.0)]),
                Expr::lit(0.5),
            ],
        ));
        assert_eq!(s, Value::list([Value::F64(1.0), Value::F64(2.0)]));
    }

    #[test]
    fn free_vars_in_first_use_order() {
        let expr = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::var("b"), Expr::var("a")),
            Expr::var("b"),
        );
        let names: Vec<String> = expr.free_vars().iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["b", "a"]);
    }

    #[test]
    fn map_vars_rewrites_to_params() {
        let expr = Expr::bin(BinOp::Add, Expr::var("x"), Expr::lit(1i64));
        let compiled = expr.map_vars(&mut |name| {
            assert_eq!(name, "x");
            Expr::Param(0)
        });
        assert_eq!(eval(&compiled, &[Value::I64(41)]).unwrap(), Value::I64(42));
    }

    #[test]
    fn if_expression() {
        let expr = Expr::If(
            Box::new(Expr::bin(BinOp::Gt, Expr::Param(0), Expr::lit(0i64))),
            Box::new(Expr::lit("pos")),
            Box::new(Expr::lit("neg")),
        );
        assert_eq!(eval(&expr, &[Value::I64(5)]).unwrap(), Value::str("pos"));
        assert_eq!(eval(&expr, &[Value::I64(-5)]).unwrap(), Value::str("neg"));
    }

    #[test]
    fn display_round_trips_visually() {
        let expr = Expr::bin(BinOp::Le, Expr::var("day"), Expr::lit(365i64));
        assert_eq!(expr.to_string(), "(day <= 365)");
    }

    #[test]
    fn comparisons_use_total_order() {
        assert_eq!(
            e(&Expr::bin(BinOp::Lt, Expr::lit("a"), Expr::lit("b"))),
            Value::Bool(true)
        );
    }
}
