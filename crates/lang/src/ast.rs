//! The surface abstract syntax tree of the Mitos data-analysis language.
//!
//! This is the "program with imperative control flow" of the paper's Figure 2:
//! ordinary assignments, `if`/`while`/`do-while` statements, and a
//! collection-based bag algebra (`map`, `filter`, `join`, `reduceByKey`, ...)
//! embedded in expressions. The AST is produced either by the textual parser
//! ([`crate::parser`]) or programmatically via the fluent methods on
//! [`SurfExpr`]; it is consumed by the `mitos-ir` lowering which simplifies it
//! and converts it to SSA.

use crate::expr::{BinOp, Func, UnOp};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A lambda passed to a bag operator, e.g. `x => (x, 1)`.
///
/// The body is a *scalar* expression: it may refer to the parameters and to
/// scalar program variables (which become captured one-element-bag inputs of
/// the operator during dataflow building), but it may not contain bag
/// operations.
#[derive(Clone, PartialEq, Debug)]
pub struct Lambda {
    /// Parameter names; one for unary lambdas, two for combiners.
    pub params: Vec<Arc<str>>,
    /// The body expression.
    pub body: Box<SurfExpr>,
}

impl Lambda {
    /// A unary lambda `param => body`.
    pub fn unary(param: impl AsRef<str>, body: SurfExpr) -> Lambda {
        Lambda {
            params: vec![Arc::from(param.as_ref())],
            body: Box::new(body),
        }
    }

    /// A binary lambda `(a, b) => body`, used by `reduce`/`reduceByKey`.
    pub fn binary(a: impl AsRef<str>, b: impl AsRef<str>, body: SurfExpr) -> Lambda {
        Lambda {
            params: vec![Arc::from(a.as_ref()), Arc::from(b.as_ref())],
            body: Box::new(body),
        }
    }
}

/// A surface expression: scalar or bag typed (resolved by the IR binder).
#[derive(Clone, PartialEq, Debug)]
pub enum SurfExpr {
    /// A literal scalar.
    Lit(Value),
    /// A variable reference (bag or scalar, decided by the binder).
    Var(Arc<str>),
    /// `readFile(name)` — a bag read from the named file.
    ReadFile(Box<SurfExpr>),
    /// `empty` — the empty bag.
    EmptyBag,
    /// `bag(e1, e2, ...)` — a literal bag of scalar expressions.
    BagLit(Vec<SurfExpr>),
    /// `b.map(x => e)`.
    Map(Box<SurfExpr>, Lambda),
    /// `b.flatMap(x => [..])` — the lambda returns a list, flattened.
    FlatMap(Box<SurfExpr>, Lambda),
    /// `b.filter(x => p)`.
    Filter(Box<SurfExpr>, Lambda),
    /// `a join b` — equi-join on element key (field 0); result `(k, l, r)`.
    Join(Box<SurfExpr>, Box<SurfExpr>),
    /// `a cross b` — Cartesian product; result `(l, r)`.
    Cross(Box<SurfExpr>, Box<SurfExpr>),
    /// `a union b` — bag union (concatenation).
    Union(Box<SurfExpr>, Box<SurfExpr>),
    /// `b.reduceByKey((a, b) => e)` — per-key fold of value fields (field 1).
    ReduceByKey(Box<SurfExpr>, Lambda),
    /// `b.reduce((a, b) => e)` — global fold; **scalar** result. Errors on an
    /// empty bag unless a `.sum()`/`.count()` style default applies.
    Reduce(Box<SurfExpr>, Lambda),
    /// `b.sum()` — scalar sum (0 for the empty bag).
    Sum(Box<SurfExpr>),
    /// `b.count()` — scalar element count.
    Count(Box<SurfExpr>),
    /// `b.min()` — scalar minimum (errors on an empty bag).
    Min(Box<SurfExpr>),
    /// `b.max()` — scalar maximum (errors on an empty bag).
    Max(Box<SurfExpr>),
    /// `b.distinct()`.
    Distinct(Box<SurfExpr>),
    /// Tuple construction `(a, b, ...)` (scalar).
    Tuple(Vec<SurfExpr>),
    /// List construction `[a, b, ...]` (scalar).
    List(Vec<SurfExpr>),
    /// Indexing `e[0]` (scalar).
    Index(Box<SurfExpr>, usize),
    /// Unary scalar operation.
    Unary(UnOp, Box<SurfExpr>),
    /// Binary scalar operation.
    Binary(BinOp, Box<SurfExpr>, Box<SurfExpr>),
    /// Builtin call `abs(e)`, `dist2(a, b)`, ... (scalar).
    Call(Func, Vec<SurfExpr>),
    /// Conditional scalar expression `if c then a else b`.
    IfExpr(Box<SurfExpr>, Box<SurfExpr>, Box<SurfExpr>),
}

impl SurfExpr {
    /// A literal.
    pub fn lit(v: impl Into<Value>) -> SurfExpr {
        SurfExpr::Lit(v.into())
    }

    /// A variable reference.
    pub fn var(name: impl AsRef<str>) -> SurfExpr {
        SurfExpr::Var(Arc::from(name.as_ref()))
    }

    /// `readFile(name)`.
    pub fn read_file(name: SurfExpr) -> SurfExpr {
        SurfExpr::ReadFile(Box::new(name))
    }

    /// `self.map(lambda)`.
    pub fn map(self, lambda: Lambda) -> SurfExpr {
        SurfExpr::Map(Box::new(self), lambda)
    }

    /// `self.flatMap(lambda)`.
    pub fn flat_map(self, lambda: Lambda) -> SurfExpr {
        SurfExpr::FlatMap(Box::new(self), lambda)
    }

    /// `self.filter(lambda)`.
    pub fn filter(self, lambda: Lambda) -> SurfExpr {
        SurfExpr::Filter(Box::new(self), lambda)
    }

    /// `self join other`.
    pub fn join(self, other: SurfExpr) -> SurfExpr {
        SurfExpr::Join(Box::new(self), Box::new(other))
    }

    /// `self cross other`.
    pub fn cross(self, other: SurfExpr) -> SurfExpr {
        SurfExpr::Cross(Box::new(self), Box::new(other))
    }

    /// `self union other`.
    pub fn union(self, other: SurfExpr) -> SurfExpr {
        SurfExpr::Union(Box::new(self), Box::new(other))
    }

    /// `self.reduceByKey(lambda)`.
    pub fn reduce_by_key(self, lambda: Lambda) -> SurfExpr {
        SurfExpr::ReduceByKey(Box::new(self), lambda)
    }

    /// `self.reduce(lambda)` — scalar result.
    pub fn reduce(self, lambda: Lambda) -> SurfExpr {
        SurfExpr::Reduce(Box::new(self), lambda)
    }

    /// `self.sum()` — scalar result.
    pub fn sum(self) -> SurfExpr {
        SurfExpr::Sum(Box::new(self))
    }

    /// `self.count()` — scalar result.
    pub fn count(self) -> SurfExpr {
        SurfExpr::Count(Box::new(self))
    }

    /// `self.min()` — scalar result.
    pub fn min(self) -> SurfExpr {
        SurfExpr::Min(Box::new(self))
    }

    /// `self.max()` — scalar result.
    pub fn max(self) -> SurfExpr {
        SurfExpr::Max(Box::new(self))
    }

    /// `self.distinct()`.
    pub fn distinct(self) -> SurfExpr {
        SurfExpr::Distinct(Box::new(self))
    }

    /// Binary scalar operation helper.
    pub fn bin(op: BinOp, l: SurfExpr, r: SurfExpr) -> SurfExpr {
        SurfExpr::Binary(op, Box::new(l), Box::new(r))
    }

    /// `self[idx]`.
    pub fn index(self, idx: usize) -> SurfExpr {
        SurfExpr::Index(Box::new(self), idx)
    }
}

/// A statement of the surface language.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `name = expr;`
    Assign {
        /// Target variable name.
        name: Arc<str>,
        /// Right-hand side (bag or scalar typed).
        value: SurfExpr,
    },
    /// `if (cond) { .. } else { .. }` — the condition is scalar.
    If {
        /// Scalar boolean condition.
        cond: SurfExpr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`.
    While {
        /// Scalar boolean condition, evaluated before each step.
        cond: SurfExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `do { .. } while (cond);`.
    DoWhile {
        /// Loop body, executed at least once.
        body: Vec<Stmt>,
        /// Scalar boolean condition, evaluated after each step.
        cond: SurfExpr,
    },
    /// `writeFile(value, name);` — writes a bag (or a scalar, wrapped into a
    /// one-element bag) to the named file.
    WriteFile {
        /// The data to write.
        value: SurfExpr,
        /// Scalar string file name.
        name: SurfExpr,
    },
    /// `output(value, "tag");` — collects values into the program result
    /// under the given tag (the quickstart-friendly sink).
    Output {
        /// The data to collect (bag or scalar).
        value: SurfExpr,
        /// Result tag.
        tag: Arc<str>,
    },
}

/// A complete surface program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Creates a program from statements.
    pub fn new(stmts: Vec<Stmt>) -> Program {
        Program { stmts }
    }
}

fn fmt_block(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    for s in stmts {
        fmt_stmt(f, s, indent)?;
    }
    Ok(())
}

fn fmt_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Assign { name, value } => writeln!(f, "{pad}{name} = {value};"),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            writeln!(f, "{pad}if ({cond}) {{")?;
            fmt_block(f, then_body, indent + 1)?;
            if else_body.is_empty() {
                writeln!(f, "{pad}}}")
            } else {
                writeln!(f, "{pad}}} else {{")?;
                fmt_block(f, else_body, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
        }
        Stmt::While { cond, body } => {
            writeln!(f, "{pad}while ({cond}) {{")?;
            fmt_block(f, body, indent + 1)?;
            writeln!(f, "{pad}}}")
        }
        Stmt::DoWhile { body, cond } => {
            writeln!(f, "{pad}do {{")?;
            fmt_block(f, body, indent + 1)?;
            writeln!(f, "{pad}}} while ({cond});")
        }
        Stmt::WriteFile { value, name } => writeln!(f, "{pad}writeFile({value}, {name});"),
        Stmt::Output { value, tag } => writeln!(f, "{pad}output({value}, {tag:?});"),
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_block(f, &self.stmts, 0)
    }
}

impl fmt::Display for SurfExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn lambda(f: &mut fmt::Formatter<'_>, l: &Lambda) -> fmt::Result {
            if l.params.len() == 1 {
                write!(f, "{} => {}", l.params[0], l.body)
            } else {
                write!(f, "({}) => {}", l.params.join(", "), l.body)
            }
        }
        match self {
            SurfExpr::Lit(v) => write!(f, "{v:?}"),
            SurfExpr::Var(n) => write!(f, "{n}"),
            SurfExpr::ReadFile(e) => write!(f, "readFile({e})"),
            SurfExpr::EmptyBag => write!(f, "empty"),
            SurfExpr::BagLit(es) => {
                write!(f, "bag(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            SurfExpr::Map(b, l) => {
                write!(f, "{b}.map(")?;
                lambda(f, l)?;
                write!(f, ")")
            }
            SurfExpr::FlatMap(b, l) => {
                write!(f, "{b}.flatMap(")?;
                lambda(f, l)?;
                write!(f, ")")
            }
            SurfExpr::Filter(b, l) => {
                write!(f, "{b}.filter(")?;
                lambda(f, l)?;
                write!(f, ")")
            }
            SurfExpr::Join(a, b) => write!(f, "({a} join {b})"),
            SurfExpr::Cross(a, b) => write!(f, "({a} cross {b})"),
            SurfExpr::Union(a, b) => write!(f, "({a} union {b})"),
            SurfExpr::ReduceByKey(b, l) => {
                write!(f, "{b}.reduceByKey(")?;
                lambda(f, l)?;
                write!(f, ")")
            }
            SurfExpr::Reduce(b, l) => {
                write!(f, "{b}.reduce(")?;
                lambda(f, l)?;
                write!(f, ")")
            }
            SurfExpr::Sum(b) => write!(f, "{b}.sum()"),
            SurfExpr::Count(b) => write!(f, "{b}.count()"),
            SurfExpr::Min(b) => write!(f, "{b}.min()"),
            SurfExpr::Max(b) => write!(f, "{b}.max()"),
            SurfExpr::Distinct(b) => write!(f, "{b}.distinct()"),
            SurfExpr::Tuple(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            SurfExpr::List(es) => {
                write!(f, "[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            SurfExpr::Index(e, i) => write!(f, "{e}[{i}]"),
            SurfExpr::Unary(UnOp::Neg, e) => write!(f, "-({e})"),
            SurfExpr::Unary(UnOp::Not, e) => write!(f, "!({e})"),
            SurfExpr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            SurfExpr::Call(func, es) => {
                write!(f, "{}(", func.name())?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            SurfExpr::IfExpr(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_builder_mirrors_the_running_example() {
        // counts = visits.map(x => (x, 1)).reduceByKey((a, b) => a + b);
        let counts = SurfExpr::var("visits")
            .map(Lambda::unary(
                "x",
                SurfExpr::Tuple(vec![SurfExpr::var("x"), SurfExpr::lit(1i64)]),
            ))
            .reduce_by_key(Lambda::binary(
                "a",
                "b",
                SurfExpr::bin(BinOp::Add, SurfExpr::var("a"), SurfExpr::var("b")),
            ));
        let printed = counts.to_string();
        assert_eq!(
            printed,
            "visits.map(x => (x, 1)).reduceByKey((a, b) => (a + b))"
        );
    }

    #[test]
    fn program_display_shows_control_flow() {
        let p = Program::new(vec![
            Stmt::Assign {
                name: Arc::from("day"),
                value: SurfExpr::lit(1i64),
            },
            Stmt::While {
                cond: SurfExpr::bin(BinOp::Le, SurfExpr::var("day"), SurfExpr::lit(3i64)),
                body: vec![Stmt::Assign {
                    name: Arc::from("day"),
                    value: SurfExpr::bin(BinOp::Add, SurfExpr::var("day"), SurfExpr::lit(1i64)),
                }],
            },
        ]);
        let text = p.to_string();
        assert!(text.contains("while ((day <= 3)) {"));
        assert!(text.contains("  day = (day + 1);"));
    }
}
