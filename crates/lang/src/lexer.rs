//! Hand-written lexer for the Mitos surface language.

use crate::diag::{Diagnostic, Span};

/// A lexical token kind.
#[derive(Clone, PartialEq, Debug)]
#[allow(missing_docs)] // keyword/punctuation variants are self-describing
pub enum Tok {
    /// Identifier or soft keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped content).
    Str(String),
    // Hard keywords.
    If,
    Else,
    While,
    Do,
    For,
    To,
    Then,
    True,
    False,
    Empty,
    Join,
    Cross,
    Union,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    Assign,
    Arrow, // =>
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    /// End of input.
    Eof,
}

impl Tok {
    /// A short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Float(v) => format!("float `{v}`"),
            Tok::Str(s) => format!("string {s:?}"),
            Tok::Eof => "end of input".to_string(),
            other => format!("`{}`", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            Tok::If => "if",
            Tok::Else => "else",
            Tok::While => "while",
            Tok::Do => "do",
            Tok::For => "for",
            Tok::To => "to",
            Tok::Then => "then",
            Tok::True => "true",
            Tok::False => "false",
            Tok::Empty => "empty",
            Tok::Join => "join",
            Tok::Cross => "cross",
            Tok::Union => "union",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Comma => ",",
            Tok::Semi => ";",
            Tok::Dot => ".",
            Tok::Assign => "=",
            Tok::Arrow => "=>",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Bang => "!",
            _ => "?",
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// Source location.
    pub span: Span,
}

/// Tokenizes the whole source; the final token is always [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        // Skip whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: `//` to end of line.
        if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let tok = match word {
                "if" => Tok::If,
                "else" => Tok::Else,
                "while" => Tok::While,
                "do" => Tok::Do,
                "for" => Tok::For,
                "to" => Tok::To,
                "then" => Tok::Then,
                "true" => Tok::True,
                "false" => Tok::False,
                "empty" => Tok::Empty,
                "join" => Tok::Join,
                "cross" => Tok::Cross,
                "union" => Tok::Union,
                _ => Tok::Ident(word.to_string()),
            };
            tokens.push(Token {
                tok,
                span: Span::new(start, i),
            });
            continue;
        }
        // Numbers: integer or float.
        if c.is_ascii_digit() {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &src[start..i];
            let span = Span::new(start, i);
            let tok = if is_float {
                Tok::Float(
                    text.parse::<f64>()
                        .map_err(|_| Diagnostic::new("invalid float literal", span))?,
                )
            } else {
                Tok::Int(
                    text.parse::<i64>()
                        .map_err(|_| Diagnostic::new("integer literal out of range", span))?,
                )
            };
            tokens.push(Token { tok, span });
            continue;
        }
        // Strings with escapes.
        if c == b'"' {
            let mut out = String::new();
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(Diagnostic::new(
                        "unterminated string literal",
                        Span::new(start, i),
                    ));
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        let esc = bytes.get(i).copied().ok_or_else(|| {
                            Diagnostic::new("unterminated escape", Span::new(start, i))
                        })?;
                        out.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'"' => '"',
                            b'\\' => '\\',
                            other => {
                                return Err(Diagnostic::new(
                                    format!("unknown escape `\\{}`", other as char),
                                    Span::new(i - 1, i + 1),
                                ))
                            }
                        });
                        i += 1;
                    }
                    _ => {
                        // Consume one UTF-8 code point.
                        let rest = &src[i..];
                        let ch = rest.chars().next().expect("in-bounds char");
                        out.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            tokens.push(Token {
                tok: Tok::Str(out),
                span: Span::new(start, i),
            });
            continue;
        }
        // Punctuation.
        let two = |a: u8, b: u8| c == a && bytes.get(i + 1) == Some(&b);
        let (tok, len) = if two(b'=', b'>') {
            (Tok::Arrow, 2)
        } else if two(b'=', b'=') {
            (Tok::EqEq, 2)
        } else if two(b'!', b'=') {
            (Tok::NotEq, 2)
        } else if two(b'<', b'=') {
            (Tok::Le, 2)
        } else if two(b'>', b'=') {
            (Tok::Ge, 2)
        } else if two(b'&', b'&') {
            (Tok::AndAnd, 2)
        } else if two(b'|', b'|') {
            (Tok::OrOr, 2)
        } else {
            let t = match c {
                b'(' => Tok::LParen,
                b')' => Tok::RParen,
                b'{' => Tok::LBrace,
                b'}' => Tok::RBrace,
                b'[' => Tok::LBracket,
                b']' => Tok::RBracket,
                b',' => Tok::Comma,
                b';' => Tok::Semi,
                b'.' => Tok::Dot,
                b'=' => Tok::Assign,
                b'+' => Tok::Plus,
                b'-' => Tok::Minus,
                b'*' => Tok::Star,
                b'/' => Tok::Slash,
                b'%' => Tok::Percent,
                b'<' => Tok::Lt,
                b'>' => Tok::Gt,
                b'!' => Tok::Bang,
                other => {
                    return Err(Diagnostic::new(
                        format!("unexpected character `{}`", other as char),
                        Span::new(i, i + 1),
                    ))
                }
            };
            (t, 1)
        };
        tokens.push(Token {
            tok,
            span: Span::new(i, i + len),
        });
        i += len;
    }
    tokens.push(Token {
        tok: Tok::Eof,
        span: Span::new(src.len(), src.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("while day joinx join"),
            vec![
                Tok::While,
                Tok::Ident("day".into()),
                Tok::Ident("joinx".into()),
                Tok::Join,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 7"),
            vec![
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Int(7),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn dot_after_int_is_method_call_not_float() {
        // `b.sum()` style chains must not eat the dot into a float.
        assert_eq!(
            kinds("1.x"),
            vec![Tok::Int(1), Tok::Dot, Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\"b\n""#),
            vec![Tok::Str("a\"b\n".into()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn lexes_operators_longest_match() {
        assert_eq!(
            kinds("== = => <= < && || !="),
            vec![
                Tok::EqEq,
                Tok::Assign,
                Tok::Arrow,
                Tok::Le,
                Tok::Lt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::NotEq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("x // comment\ny"),
            vec![Tok::Ident("x".into()), Tok::Ident("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains('$'));
        assert_eq!(err.span.start, 2);
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab + cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }
}
