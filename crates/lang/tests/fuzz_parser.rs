//! Robustness fuzzing of the frontend: the lexer and parser must never
//! panic, whatever bytes they are fed — they either produce an AST or a
//! located diagnostic.

use mitos_lang::{parse, parse_expr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Arbitrary unicode strings never panic the parser.
    #[test]
    fn parser_total_on_arbitrary_strings(src in ".{0,200}") {
        let _ = parse(&src);
        let _ = parse_expr(&src);
    }

    /// Strings over the language's own alphabet (more likely to get deep
    /// into the parser) never panic either.
    #[test]
    fn parser_total_on_language_alphabet(
        src in "[a-z0-9 =;(){}<>!&|+*/%,.\\[\\]\"-]{0,200}"
    ) {
        let _ = parse(&src);
        let _ = parse_expr(&src);
    }

    /// Diagnostics render without panicking for any source/span combo.
    #[test]
    fn diagnostics_always_render(src in ".{0,100}", start in 0usize..120, len in 0usize..20) {
        let d = mitos_lang::Diagnostic::new(
            "synthetic",
            mitos_lang::Span::new(start, start + len),
        );
        let rendered = d.render(&src);
        prop_assert!(rendered.contains("synthetic"));
    }
}
