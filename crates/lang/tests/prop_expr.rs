//! Property tests for the expression evaluator: algebraic laws of the
//! comparison operators, round-tripping through the printer/parser for
//! expressions, and evaluator/total-order consistency.

use mitos_lang::expr::{eval, BinOp, Expr};
use mitos_lang::{parse_expr, SurfExpr, Value};
use proptest::prelude::*;

fn arb_value() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::I64),
        (-100.0f64..100.0).prop_map(Value::F64),
        "[a-z]{0,6}".prop_map(Value::str),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop::collection::vec(inner, 0..3).prop_map(Value::tuple)
    })
    .boxed()
}

fn cmp(op: BinOp, a: &Value, b: &Value) -> bool {
    let e = Expr::bin(op, Expr::Param(0), Expr::Param(1));
    eval(&e, &[a.clone(), b.clone()])
        .unwrap()
        .as_bool()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The comparison operators implement a coherent total order:
    /// exactly one of `<`, `==`, `>` holds, and `<=`/`>=` agree.
    #[test]
    fn comparisons_form_a_total_order(a in arb_value(), b in arb_value()) {
        let lt = cmp(BinOp::Lt, &a, &b);
        let gt = cmp(BinOp::Gt, &a, &b);
        let eq = cmp(BinOp::Eq, &a, &b);
        prop_assert_eq!([lt, eq, gt].iter().filter(|&&x| x).count(), 1);
        prop_assert_eq!(cmp(BinOp::Le, &a, &b), lt || eq);
        prop_assert_eq!(cmp(BinOp::Ge, &a, &b), gt || eq);
        prop_assert_eq!(cmp(BinOp::Ne, &a, &b), !eq);
        // Antisymmetry.
        prop_assert_eq!(cmp(BinOp::Lt, &b, &a), gt);
    }

    /// Equality is reflexive and hashing agrees with equality.
    #[test]
    fn equality_and_hash_agree(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        prop_assert!(cmp(BinOp::Eq, &a, &a));
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        if a == b {
            prop_assert_eq!(hash(&a), hash(&b));
        }
    }

    /// Integer arithmetic in the evaluator matches Rust's wrapping
    /// semantics.
    #[test]
    fn integer_arithmetic_matches_rust(a in any::<i64>(), b in any::<i64>()) {
        let check = |op: BinOp, expected: i64| {
            let e = Expr::bin(op, Expr::Param(0), Expr::Param(1));
            let got = eval(&e, &[Value::I64(a), Value::I64(b)]).unwrap();
            prop_assert_eq!(got, Value::I64(expected));
            Ok(())
        };
        check(BinOp::Add, a.wrapping_add(b))?;
        check(BinOp::Sub, a.wrapping_sub(b))?;
        check(BinOp::Mul, a.wrapping_mul(b))?;
        if b != 0 {
            check(BinOp::Div, a.wrapping_div(b))?;
            check(BinOp::Mod, a.wrapping_rem(b))?;
        }
    }

    /// Scalar surface expressions print to text that parses back to the
    /// same AST.
    #[test]
    fn scalar_expr_round_trip(
        a in -1000i64..1000,
        b in -1000i64..1000,
        op in prop_oneof![
            Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul),
            Just(BinOp::Lt), Just(BinOp::Eq)
        ],
    ) {
        let e = SurfExpr::bin(
            op,
            SurfExpr::bin(BinOp::Add, SurfExpr::lit(a), SurfExpr::var("x")),
            SurfExpr::lit(b),
        );
        let printed = e.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        prop_assert_eq!(e, reparsed, "{}", printed);
    }

    /// `estimated_bytes` is positive and monotone under tuple nesting.
    #[test]
    fn estimated_bytes_monotone(v in arb_value()) {
        let base = v.estimated_bytes();
        prop_assert!(base >= 1);
        let nested = Value::tuple([v.clone()]);
        prop_assert!(nested.estimated_bytes() > base);
    }
}
