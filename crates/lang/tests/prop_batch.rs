//! Property tests for the columnar batch container and its wire codec:
//! the encoding must round-trip arbitrary element sequences exactly
//! (including NaN bit patterns, nested tuples, lists, and empty batches),
//! the container must preserve element order and count, and the exact
//! `encoded_len` must always match the encoder's output.

use mitos_lang::{Batch, Value};
use proptest::prelude::*;

/// Arbitrary values spanning every variant, with enough nesting to build
/// tuples-of-tuples and lists (which land in row-fallback runs).
fn arb_value() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        // Raw bit patterns so NaNs and signed zeros are exercised too;
        // Value equality is by bit pattern, so round-tripping must be.
        any::<u64>().prop_map(|bits| Value::F64(f64::from_bits(bits))),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 12, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::tuple),
            prop::collection::vec(inner, 0..4).prop_map(Value::list),
        ]
    })
    .boxed()
}

/// Element sequences biased toward monomorphic runs (so the columnar
/// paths are hit) but with arbitrary mixed tails (so run transitions and
/// the row fallback are hit too).
fn arb_elems() -> BoxedStrategy<Vec<Value>> {
    let monomorphic = prop_oneof![
        prop::collection::vec(any::<i64>().prop_map(Value::I64), 0..20),
        prop::collection::vec(
            (any::<i64>(), any::<i64>())
                .prop_map(|(a, b)| Value::tuple([Value::I64(a), Value::I64(b)])),
            0..20
        ),
        prop::collection::vec("[a-z]{0,8}".prop_map(Value::str), 0..12),
    ];
    (monomorphic, prop::collection::vec(arb_value(), 0..8))
        .prop_map(|(mut mono, mixed)| {
            mono.extend(mixed);
            mono
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// `decode(encode(b))` reproduces the batch exactly, element by
    /// element, for arbitrary value sequences.
    #[test]
    fn encoding_round_trips(elems in arb_elems()) {
        let batch: Batch = elems.iter().cloned().collect();
        let wire = batch.encode();
        let back = Batch::decode(&wire).unwrap();
        prop_assert_eq!(&back, &batch);
        prop_assert_eq!(back.into_values(), elems);
    }

    /// The container preserves order, count, and the per-element byte
    /// estimate of the row representation it replaces.
    #[test]
    fn container_preserves_elements(elems in arb_elems()) {
        let batch = Batch::from_slice(&elems);
        prop_assert_eq!(batch.len(), elems.len());
        prop_assert_eq!(batch.is_empty(), elems.is_empty());
        let roundtrip: Vec<Value> = batch.iter().collect();
        prop_assert_eq!(&roundtrip, &elems);
        prop_assert_eq!(
            batch.estimated_bytes(),
            elems.iter().map(Value::estimated_bytes).sum::<u64>()
        );
    }

    /// `encoded_len` is exact — the wire accounting the runtime charges
    /// always equals the bytes a real transport would move.
    #[test]
    fn encoded_len_is_exact(elems in arb_elems()) {
        let batch = Batch::from_slice(&elems);
        prop_assert_eq!(batch.encoded_len(), batch.encode().len());
    }

    /// Truncating an encoded batch anywhere short of its full length
    /// never decodes successfully (no silent partial reads) and never
    /// panics.
    #[test]
    fn truncation_is_detected(elems in arb_elems(), cut in 0usize..64) {
        // Even an empty batch encodes its 4-byte run-count header, so the
        // modulus below is always well-defined.
        let wire = Batch::from_slice(&elems).encode();
        prop_assert!(!wire.is_empty());
        let cut = cut % wire.len();
        prop_assert!(Batch::decode(&wire[..cut]).is_err());
    }
}

/// The empty batch is a fixed point of the codec.
#[test]
fn empty_batch_round_trips() {
    let batch = Batch::new();
    let wire = batch.encode();
    let back = Batch::decode(&wire).unwrap();
    assert!(back.is_empty());
    assert_eq!(back, batch);
    assert_eq!(batch.encoded_len(), wire.len());
}
