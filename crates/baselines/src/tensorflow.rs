//! A miniature TensorFlow-style control-flow executor, for the Fig. 7
//! per-step overhead microbenchmark.
//!
//! TensorFlow (following Arvind's dataflow architectures) expresses loops
//! with the **switch/merge/enter/nextIteration/exit** primitives executing
//! in tagged iteration *frames*. This module implements that dynamic-graph
//! mechanism for the canonical counter loop:
//!
//! ```text
//! i0 -> Enter -> Merge <- NextIteration
//!                  |   \
//!                Less(K) \
//!                  |      \
//!               Switch ----+--(true)--> AddOne --> NextIteration
//!                  |
//!               (false) --> Exit
//! ```
//!
//! Each operator firing is one simulator message on the hosting machine, so
//! the per-step cost is a handful of op dispatches plus local latencies —
//! flat in the cluster size, like the paper's Fig. 7 measurements.

use mitos_lang::Value;
use mitos_sim::{ActorId, Sim, SimConfig, SimCtx, SimReport, World};

/// Node ids of the hand-built while-loop graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Node {
    Enter,
    Merge,
    Less,
    Switch,
    AddOne,
    NextIteration,
    Exit,
}

/// A tagged tensor: the value plus its iteration tag (simplified frame).
#[derive(Clone, Debug)]
struct Tagged {
    iter: u32,
    value: Value,
}

#[derive(Clone)]
enum Msg {
    /// Fire `node` with one ready input.
    Fire(Node, Tagged),
    /// Second input of `Switch` (the predicate).
    Pred(Tagged),
}

/// TensorFlow microbenchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct TfConfig {
    /// Loop iterations (the `Less` bound).
    pub steps: u32,
    /// CPU ns per operator firing (kernel dispatch).
    pub op_cost_ns: u64,
    /// CPU ns of the loop body (the `AddOne` kernel).
    pub body_cost_ns: u64,
}

impl Default for TfConfig {
    fn default() -> Self {
        TfConfig {
            steps: 100,
            op_cost_ns: 20_000,
            body_cost_ns: 200_000,
        }
    }
}

struct TfWorld {
    config: TfConfig,
    /// Pending data input of Switch awaiting its predicate (per iteration).
    switch_data: Option<Tagged>,
    switch_pred: Option<Tagged>,
    result: Option<Value>,
    fired: u64,
}

impl TfWorld {
    fn emit(&self, ctx: &mut SimCtx<Msg>, node: Node, t: Tagged) {
        // All loop-state ops are placed on machine 0 (TF places loop state
        // on one device); firings hop through the local executor queue.
        ctx.send(ActorId::new(0, 0), Msg::Fire(node, t), 16);
    }

    fn fire(&mut self, node: Node, input: Tagged, ctx: &mut SimCtx<Msg>) {
        self.fired += 1;
        ctx.charge(self.config.op_cost_ns);
        match node {
            Node::Enter => {
                // Entering the loop frame: iteration tag 0.
                self.emit(
                    ctx,
                    Node::Merge,
                    Tagged {
                        iter: 0,
                        value: input.value,
                    },
                );
            }
            Node::Merge => {
                // Merge forwards whichever input arrives (Enter first, then
                // NextIteration values).
                self.emit(ctx, Node::Less, input.clone());
                self.emit(ctx, Node::Switch, input);
            }
            Node::Less => {
                let i = input.value.as_i64().expect("counter");
                let pred = Value::Bool((i as u32) < self.config.steps);
                ctx.send(
                    ActorId::new(0, 0),
                    Msg::Pred(Tagged {
                        iter: input.iter,
                        value: pred,
                    }),
                    16,
                );
            }
            Node::Switch => {
                self.switch_data = Some(input);
                self.try_switch(ctx);
            }
            Node::AddOne => {
                ctx.charge(self.config.body_cost_ns);
                let i = input.value.as_i64().expect("counter");
                self.emit(
                    ctx,
                    Node::NextIteration,
                    Tagged {
                        iter: input.iter,
                        value: Value::I64(i + 1),
                    },
                );
            }
            Node::NextIteration => {
                // Increment the iteration tag and feed Merge again.
                self.emit(
                    ctx,
                    Node::Merge,
                    Tagged {
                        iter: input.iter + 1,
                        value: input.value,
                    },
                );
            }
            Node::Exit => {
                self.result = Some(input.value);
            }
        }
    }

    fn try_switch(&mut self, ctx: &mut SimCtx<Msg>) {
        let (Some(data), Some(pred)) = (&self.switch_data, &self.switch_pred) else {
            return;
        };
        assert_eq!(data.iter, pred.iter, "switch inputs from the same frame");
        let taken = pred.value.as_bool().expect("predicate");
        let data = self.switch_data.take().expect("data");
        self.switch_pred = None;
        if taken {
            self.emit(ctx, Node::AddOne, data);
        } else {
            self.emit(ctx, Node::Exit, data);
        }
    }
}

impl World for TfWorld {
    type Msg = Msg;
    fn handle(&mut self, _dest: ActorId, msg: Msg, ctx: &mut SimCtx<Msg>) {
        match msg {
            Msg::Fire(node, t) => self.fire(node, t, ctx),
            Msg::Pred(t) => {
                self.switch_pred = Some(t);
                self.try_switch(ctx);
            }
        }
    }
}

/// Runs the TensorFlow while-loop microbenchmark; returns the simulator
/// report and the final counter value.
pub fn run_tf_loop(config: TfConfig, cluster: SimConfig) -> (SimReport, Value) {
    let mut sim = Sim::new(
        cluster,
        TfWorld {
            config,
            switch_data: None,
            switch_pred: None,
            result: None,
            fired: 0,
        },
    );
    sim.inject(
        ActorId::new(0, 0),
        Msg::Fire(
            Node::Enter,
            Tagged {
                iter: 0,
                value: Value::I64(0),
            },
        ),
    );
    let report = sim.run();
    let result = sim.world().result.clone().expect("loop must exit");
    (report, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_counts_to_steps() {
        let (_, result) = run_tf_loop(
            TfConfig {
                steps: 17,
                ..TfConfig::default()
            },
            SimConfig::with_machines(1),
        );
        assert_eq!(result, Value::I64(17));
    }

    #[test]
    fn per_step_cost_flat_in_machines() {
        let steps = 40;
        let time = |machines: u16| {
            run_tf_loop(
                TfConfig {
                    steps,
                    ..TfConfig::default()
                },
                SimConfig::with_machines(machines),
            )
            .0
            .end_time as f64
                / steps as f64
        };
        let t1 = time(1);
        let t16 = time(16);
        assert!((t16 - t1).abs() / t1 < 0.01, "{t1} vs {t16}");
    }

    #[test]
    fn op_firings_scale_with_steps() {
        let run = |steps: u32| {
            let mut sim = Sim::new(
                SimConfig::with_machines(1),
                TfWorld {
                    config: TfConfig {
                        steps,
                        ..TfConfig::default()
                    },
                    switch_data: None,
                    switch_pred: None,
                    result: None,
                    fired: 0,
                },
            );
            sim.inject(
                ActorId::new(0, 0),
                Msg::Fire(
                    Node::Enter,
                    Tagged {
                        iter: 0,
                        value: Value::I64(0),
                    },
                ),
            );
            sim.run();
            sim.world().fired
        };
        let f10 = run(10);
        let f20 = run(20);
        assert!(f20 > f10);
        // Roughly 6 firings per iteration.
        assert!((f20 - f10) as f64 / 10.0 >= 5.0);
    }
}
