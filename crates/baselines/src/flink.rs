//! The Flink baseline: **native iterations** (superstep execution, no
//! pipelining, loop-invariant hoisting) and the **separate jobs** fallback
//! used when a program does not fit native iterations (Sec. 2's
//! restrictions: no nested loops, no if inside the loop, no file I/O inside
//! the loop).
//!
//! The native mode reuses the Mitos runtime machinery in non-pipelined
//! mode — the paper itself frames Flink native iterations as "Mitos without
//! pipelining", and Fig. 9 isolates exactly that — with an additional
//! per-superstep overhead constant modelling Flink 1.6's per-step cost
//! (the FLINK-3322 issue the paper cites for Fig. 6's small inputs).

use mitos_core::rt::EngineConfig;
use mitos_core::{run_sim, EngineResult, RuntimeError};
use mitos_fs::InMemoryFs;
use mitos_ir::nir::{FuncIr, Op, Terminator};
use mitos_ir::{BlockId, Dominators};
use mitos_sim::SimConfig;

use crate::spark::{run_driver_loop, DriverConfig, DriverResult};

/// Per-superstep synchronization overhead of Flink 1.6's native iterations
/// (models FLINK-3322 plus per-machine synchronization work; the paper's
/// Sec. 6.2 observes the per-step overhead growing with the cluster size).
pub fn flink_step_overhead_ns(machines: u16) -> u64 {
    2_000_000 + 250_000 * machines as u64
}

/// Flink job-submission constants for the separate-jobs fallback (client
/// submits a fresh job per iteration step; slightly cheaper per job than
/// Spark's scheduler but the same linear-in-machines shape).
pub fn flink_driver_config() -> DriverConfig {
    DriverConfig {
        job_launch_ns: 60_000_000,
        per_task_ns: 6_000_000,
        ..DriverConfig::default()
    }
}

/// How a program can run on Flink.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlinkMode {
    /// Fits the native-iteration template: a single, non-nested loop with
    /// no control flow or file I/O inside.
    Native,
    /// Needs one dataflow job per iteration step.
    SeparateJobs,
}

/// Classifies a program against Flink's native-iteration restrictions.
pub fn flink_mode(func: &FuncIr) -> FlinkMode {
    let dom = Dominators::compute(func);
    // Find back edges (u -> h where h dominates u).
    let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
    for (u, block) in func.blocks.iter().enumerate() {
        for s in block.term.successors() {
            if dom.dominates(s, u as BlockId) {
                back_edges.push((u as BlockId, s));
            }
        }
    }
    if back_edges.is_empty() {
        return FlinkMode::Native; // no loop at all
    }
    let header = back_edges[0].1;
    if back_edges.iter().any(|&(_, h)| h != header) {
        return FlinkMode::SeparateJobs; // multiple loops / nested loops
    }
    // The natural loop body: blocks that reach a back-edge source without
    // passing the header, plus the header.
    let preds = func.predecessors();
    let mut body = vec![false; func.block_count()];
    body[header as usize] = true;
    let mut stack: Vec<BlockId> = back_edges.iter().map(|&(u, _)| u).collect();
    while let Some(b) = stack.pop() {
        if body[b as usize] {
            continue;
        }
        body[b as usize] = true;
        for &p in &preds[b as usize] {
            stack.push(p);
        }
    }
    let mut branches_in_loop = 0;
    for (b, block) in func.blocks.iter().enumerate() {
        if !body[b] {
            continue;
        }
        if matches!(block.term, Terminator::Branch { .. }) {
            branches_in_loop += 1;
        }
        for stmt in &block.stmts {
            if matches!(stmt.op, Op::ReadFile { .. } | Op::WriteFile { .. }) {
                return FlinkMode::SeparateJobs; // no file I/O inside
            }
        }
    }
    if branches_in_loop > 1 {
        return FlinkMode::SeparateJobs; // if inside the loop
    }
    FlinkMode::Native
}

/// Runs a program with Flink-style native iterations: a single job,
/// superstep barriers between iteration steps, hoisting enabled.
pub fn run_flink_native(
    func: &FuncIr,
    fs: &InMemoryFs,
    cluster: SimConfig,
) -> Result<EngineResult, RuntimeError> {
    run_flink_native_with(func, fs, cluster, mitos_core::CostModel::default())
}

/// [`run_flink_native`] with an explicit operator cost model (the figure
/// harnesses pass weighted costs).
pub fn run_flink_native_with(
    func: &FuncIr,
    fs: &InMemoryFs,
    cluster: SimConfig,
    cost: mitos_core::CostModel,
) -> Result<EngineResult, RuntimeError> {
    run_sim(
        func,
        fs,
        EngineConfig::new()
            .with_pipelining(false)
            .with_hoisting(true)
            .with_extra_step_overhead_ns(flink_step_overhead_ns(cluster.machines))
            .with_cost(cost),
        cluster,
    )
}

/// Runs a program as one Flink job per iteration step (the fallback the
/// paper uses when native iterations cannot express the program).
pub fn run_flink_separate_jobs(
    func: &FuncIr,
    fs: &InMemoryFs,
    cluster: SimConfig,
) -> Result<DriverResult, RuntimeError> {
    run_driver_loop(func, fs, flink_driver_config(), cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitos_ir::compile_str;

    #[test]
    fn straight_line_is_native() {
        let f = compile_str("b = bag(1); output(b, \"b\");").unwrap();
        assert_eq!(flink_mode(&f), FlinkMode::Native);
    }

    #[test]
    fn simple_loop_is_native() {
        let f = compile_str("i = 0; while (i < 3) { i = i + 1; } output(i, \"i\");").unwrap();
        assert_eq!(flink_mode(&f), FlinkMode::Native);
    }

    #[test]
    fn file_io_inside_loop_needs_separate_jobs() {
        let f = compile_str(
            "t = 0; for d = 1 to 3 { t = t + readFile(\"f\" + d).count(); } output(t, \"t\");",
        )
        .unwrap();
        assert_eq!(flink_mode(&f), FlinkMode::SeparateJobs);
    }

    #[test]
    fn if_inside_loop_needs_separate_jobs() {
        let f = compile_str(
            "i = 0; s = 0; while (i < 3) { if (i % 2 == 0) { s = s + 1; } i = i + 1; } output(s, \"s\");",
        )
        .unwrap();
        assert_eq!(flink_mode(&f), FlinkMode::SeparateJobs);
    }

    #[test]
    fn nested_loops_need_separate_jobs() {
        let f = compile_str(
            "i = 0; while (i < 2) { j = 0; while (j < 2) { j = j + 1; } i = i + 1; } output(i, \"i\");",
        )
        .unwrap();
        assert_eq!(flink_mode(&f), FlinkMode::SeparateJobs);
    }

    #[test]
    fn native_run_matches_reference() {
        let src = "s = 0; for i = 1 to 5 { s = s + i; } output(s, \"s\");";
        let func = compile_str(src).unwrap();
        let fs = InMemoryFs::new();
        let r = run_flink_native(&func, &fs, SimConfig::with_machines(3)).unwrap();
        assert_eq!(r.outputs["s"], vec![mitos_lang::Value::I64(15)]);
    }
}
