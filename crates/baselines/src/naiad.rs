//! A miniature Naiad (timely dataflow) loop, for the Fig. 7 per-step
//! overhead microbenchmark.
//!
//! Naiad executes iterations inside a single dataflow with **logical
//! timestamps** and a distributed **progress-tracking protocol**: each
//! worker broadcasts pointstamp occurrence-count deltas; a worker knows the
//! frontier has advanced past timestamp `t` when the deltas from every
//! worker show no outstanding work at `t`. This module reproduces that
//! choreography for a single-loop dataflow: per step, every worker
//! processes its capability, then broadcasts a progress update; the next
//! step starts when updates from all workers arrived. There is no central
//! coordinator and no per-step job launch — which is exactly why Naiad sits
//! with the native-iteration systems at the bottom of Fig. 7.

use mitos_sim::{ActorId, Sim, SimConfig, SimCtx, SimReport, World};
use std::collections::HashMap;

/// Naiad microbenchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct NaiadConfig {
    /// Loop iterations.
    pub steps: u32,
    /// CPU ns for the loop body work per worker per step.
    pub body_cost_ns: u64,
    /// CPU ns to integrate one progress update.
    pub progress_update_ns: u64,
}

impl Default for NaiadConfig {
    fn default() -> Self {
        NaiadConfig {
            steps: 100,
            body_cost_ns: 200_000,
            progress_update_ns: 5_000,
        }
    }
}

#[derive(Clone)]
enum Msg {
    Start,
    /// Pointstamp delta: a worker retired its capability at `t`.
    Progress {
        t: u32,
    },
}

struct NaiadWorker {
    machine: u16,
    t: u32,
    /// Progress updates received per timestamp (including our own).
    received: HashMap<u32, u16>,
    config: NaiadConfig,
    done: bool,
}

struct NaiadWorld {
    workers: Vec<NaiadWorker>,
}

impl NaiadWorker {
    /// Processes the capability at the current timestamp and broadcasts the
    /// pointstamp delta.
    fn work_step(&mut self, ctx: &mut SimCtx<Msg>) {
        ctx.charge(self.config.body_cost_ns);
        let t = self.t;
        for m in 0..ctx.machines() {
            if m != self.machine {
                ctx.send(ActorId::new(m, 0), Msg::Progress { t }, 24);
            }
        }
        // Count our own retirement locally.
        *self.received.entry(t).or_insert(0) += 1;
        self.try_advance(ctx);
    }

    fn on_progress(&mut self, t: u32, ctx: &mut SimCtx<Msg>) {
        ctx.charge(self.config.progress_update_ns);
        *self.received.entry(t).or_insert(0) += 1;
        self.try_advance(ctx);
    }

    fn try_advance(&mut self, ctx: &mut SimCtx<Msg>) {
        while !self.done {
            let got = self.received.get(&self.t).copied().unwrap_or(0);
            if got < ctx.machines() {
                return;
            }
            // Frontier moved past t: the feedback edge carries the record
            // into t + 1 (or the loop exits).
            self.received.remove(&self.t);
            self.t += 1;
            if self.t >= self.config.steps {
                self.done = true;
                return;
            }
            self.work_step(ctx);
        }
    }
}

impl World for NaiadWorld {
    type Msg = Msg;
    fn handle(&mut self, dest: ActorId, msg: Msg, ctx: &mut SimCtx<Msg>) {
        let w = &mut self.workers[dest.machine as usize];
        match msg {
            Msg::Start => w.work_step(ctx),
            Msg::Progress { t, .. } => w.on_progress(t, ctx),
        }
    }
}

/// Runs the Naiad loop microbenchmark; returns the simulator report
/// (virtual makespan = `report.end_time`).
pub fn run_naiad_loop(config: NaiadConfig, cluster: SimConfig) -> SimReport {
    let workers = (0..cluster.machines)
        .map(|machine| NaiadWorker {
            machine,
            t: 0,
            received: HashMap::new(),
            config,
            done: false,
        })
        .collect();
    let mut sim = Sim::new(cluster, NaiadWorld { workers });
    for m in 0..cluster.machines {
        sim.inject(ActorId::new(m, 0), Msg::Start);
    }
    let report = sim.run();
    for w in &sim.world().workers {
        assert!(w.done, "worker {} incomplete at t={}", w.machine, w.t);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_all_steps_on_any_cluster() {
        for machines in [1u16, 2, 5] {
            let report = run_naiad_loop(
                NaiadConfig {
                    steps: 20,
                    ..NaiadConfig::default()
                },
                SimConfig::with_machines(machines),
            );
            assert!(report.end_time > 0);
        }
    }

    #[test]
    fn per_step_cost_is_roughly_flat_in_machines() {
        let steps = 50;
        let time = |machines: u16| {
            run_naiad_loop(
                NaiadConfig {
                    steps,
                    ..NaiadConfig::default()
                },
                SimConfig::with_machines(machines),
            )
            .end_time as f64
                / steps as f64
        };
        let t2 = time(2);
        let t16 = time(16);
        assert!(
            t16 < t2 * 4.0,
            "per-step time should not explode with machines: {t2} vs {t16}"
        );
    }

    #[test]
    fn time_scales_linearly_with_steps() {
        let time = |steps: u32| {
            run_naiad_loop(
                NaiadConfig {
                    steps,
                    ..NaiadConfig::default()
                },
                SimConfig::with_machines(4),
            )
            .end_time as f64
        };
        let t100 = time(100);
        let t200 = time(200);
        let ratio = t200 / t100;
        assert!((1.6..=2.4).contains(&ratio), "ratio {ratio}");
    }
}
