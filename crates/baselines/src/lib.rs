//! # mitos-baselines
//!
//! The comparison systems of the paper's evaluation, rebuilt on the same
//! simulated cluster and the same `Value`/file-system substrate so results
//! are directly comparable:
//!
//! * [`spark`] — a driver-loop engine (imperative control flow in the
//!   driver, one dataflow job per action, no cross-iteration optimization);
//! * [`flink`] — native iterations (superstep barriers + hoisting, via the
//!   Mitos machinery in non-pipelined mode with Flink's per-step overhead)
//!   and the separate-jobs fallback, plus the expressiveness checker that
//!   decides which mode a program needs;
//! * [`naiad`] — a timely-dataflow loop with distributed progress tracking
//!   (Fig. 7);
//! * [`tensorflow`] — a switch/merge dynamic-graph while-loop (Fig. 7).

#![warn(missing_docs)]

pub mod flink;
pub mod naiad;
pub mod spark;
pub mod tensorflow;

pub use flink::{
    flink_driver_config, flink_mode, flink_step_overhead_ns, run_flink_native,
    run_flink_native_with, run_flink_separate_jobs, FlinkMode,
};
pub use naiad::{run_naiad_loop, NaiadConfig};
pub use spark::{run_driver_loop, DriverConfig, DriverResult};
pub use tensorflow::{run_tf_loop, TfConfig};
