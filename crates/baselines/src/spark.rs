//! A Spark-like **driver-loop** engine: the baseline the paper compares
//! against for ease-of-use (Sec. 1, Figs. 1 and 5–8).
//!
//! Control flow runs *in the driver*: the driver walks the same SSA CFG the
//! other engines execute, keeps scalars in driver memory, records bag
//! operations lazily as lineage, and launches a **new dataflow job for
//! every action** (file writes, result collection, scalar aggregation).
//! Each job executes its lineage one stage at a time with a barrier between
//! stages; the driver pays a per-job launch cost plus a per-task scheduling
//! cost, which makes the per-iteration-step overhead grow linearly with the
//! cluster size — the effect the paper measures in Fig. 7.
//!
//! Faithful to the paper's Spark setup:
//! * datasets assigned to program variables are cached (`.cache()`),
//!   and key-partitioned datasets keep their partitioning (the paper
//!   manually repartitioned `pageTypes` once before the loop);
//! * there is **no loop-invariant hoisting**: a join rebuilds its hash
//!   table in every job even when the build side is cached (Fig. 8).

use mitos_core::CostModel;
use mitos_core::RuntimeError;
use mitos_fs::InMemoryFs;
use mitos_ir::nir::{FuncIr, Op, Terminator};
use mitos_ir::{kernel, BlockId, VarId};
use mitos_lang::expr::{eval, Expr};
use mitos_lang::{Batch, Value};
use mitos_sim::{ActorId, Sim, SimConfig, SimCtx, SimReport, World};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Driver-loop engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// Fixed driver CPU ns per job launch (job graph build, serialization).
    pub job_launch_ns: u64,
    /// Driver CPU ns per task dispatched (serial at the driver: the source
    /// of the linear-in-machines step overhead).
    pub per_task_ns: u64,
    /// Operator cost model (shared with the other engines).
    pub cost: CostModel,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            // Calibrated to Spark 3.0-era job submission on a busy cluster
            // (~80 ms fixed + ~12 ms driver work per task: job-graph
            // construction, task serialization, scheduling).
            job_launch_ns: 80_000_000,
            per_task_ns: 12_000_000,
            cost: CostModel::default(),
        }
    }
}

/// Statistics and results of a driver-loop run.
#[derive(Clone, Debug)]
pub struct DriverResult {
    /// `output(value, tag)` collections (canonically sorted).
    pub outputs: BTreeMap<String, Vec<Value>>,
    /// The driver's execution path (basic blocks), for equivalence checks.
    pub path: Vec<BlockId>,
    /// Simulator statistics.
    pub sim: SimReport,
    /// Jobs launched.
    pub jobs: u64,
    /// Stages executed.
    pub stages: u64,
}

impl DriverResult {
    /// The virtual execution time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.sim.end_time as f64 / 1e6
    }
}

type DatasetId = u64;

/// A driver-side value: a scalar, a materialized (cached) distributed
/// dataset, or unevaluated lineage.
#[derive(Clone)]
enum Handle {
    Scalar(Value),
    Lazy(Arc<LazyNode>),
}

struct LazyNode {
    op: Op,
    inputs: Vec<Handle>,
}

/// How a stage obtains one input dataset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Dist {
    /// Use the local partition as-is.
    Keep,
    /// Hash-repartition by key across executors first.
    Shuffle,
    /// Replicate every partition to every executor first.
    Broadcast,
}

#[derive(Clone)]
enum StageOp {
    ReadFile {
        name: String,
    },
    /// Driver-provided literal elements; task `m` keeps every
    /// `machines`-th element (Spark's `parallelize`).
    Parallelize {
        elems: Vec<Value>,
    },
    Map {
        expr: Expr,
    },
    FlatMap {
        expr: Expr,
    },
    Filter {
        expr: Expr,
    },
    Union,
    Join,
    ReduceByKey {
        expr: Expr,
    },
    Distinct,
    Cross,
    Collect,
    WriteFile {
        name: String,
    },
}

#[derive(Clone)]
struct StageSpec {
    op: StageOp,
    inputs: Vec<(DatasetId, Dist)>,
    /// Output dataset id (`None` for pure actions).
    output: Option<DatasetId>,
}

#[derive(Clone)]
enum Msg {
    Go,
    Task {
        stage_seq: u64,
        spec: StageSpec,
    },
    ShuffleBlock {
        stage_seq: u64,
        input_idx: usize,
        elems: Vec<Value>,
    },
    TaskDone {
        stage_seq: u64,
        collected: Vec<Value>,
    },
}

const DRIVER: u32 = 1;
const EXECUTOR: u32 = 0;

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// What the driver is waiting for.
enum Waiting {
    Nothing,
    Stage {
        done: u16,
        collected: Vec<Value>,
        /// Remaining stages of the current job (front = next).
        remaining: Vec<StageSpec>,
        /// Where collected results go when the job finishes.
        sink: JobSink,
    },
}

enum JobSink {
    /// A `reduce` action: fold collected elements into this scalar var.
    Reduce {
        var: VarId,
        expr: Expr,
        captured: Vec<Value>,
        init: Option<Value>,
    },
    /// An `output(..)` action: append to the result under the tag.
    Output { tag: String },
    /// No collection (writeFile or pure materialization).
    None,
}

struct Driver {
    func: Arc<FuncIr>,
    config: DriverConfig,
    machines: u16,
    fs: InMemoryFs,
    env: Vec<Option<Handle>>,
    /// Lineage nodes materialized by earlier jobs (`.cache()` semantics):
    /// the Arc pins the node so the pointer key stays unique.
    lineage_cache: HashMap<*const LazyNode, (Arc<LazyNode>, DatasetId, bool)>,
    block: BlockId,
    stmt: usize,
    came_from: Option<BlockId>,
    path: Vec<BlockId>,
    next_dataset: DatasetId,
    stage_seq: u64,
    waiting: Waiting,
    outputs: BTreeMap<String, Vec<Value>>,
    jobs: u64,
    stages: u64,
    finished: bool,
    error: Option<RuntimeError>,
}

impl Driver {
    fn scalar(&self, v: VarId) -> Result<Value, RuntimeError> {
        match &self.env[v as usize] {
            Some(Handle::Scalar(val)) => Ok(val.clone()),
            _ => Err(RuntimeError::new(format!(
                "driver: `{}` is not a scalar",
                self.func.var_name(v)
            ))),
        }
    }

    fn handle_of(&self, v: VarId) -> Result<Handle, RuntimeError> {
        self.env[v as usize].clone().ok_or_else(|| {
            RuntimeError::new(format!(
                "driver: `{}` read before write",
                self.func.var_name(v)
            ))
        })
    }

    fn captured_values(&self, captured: &[VarId]) -> Result<Vec<Value>, RuntimeError> {
        captured.iter().map(|&c| self.scalar(c)).collect()
    }

    /// Substitutes captured parameters (`$data_params..`) with literals so
    /// executors get self-contained lambdas.
    fn bind_captured(expr: &Expr, data_params: usize, captured: &[Value]) -> Expr {
        fn subst(e: &Expr, data_params: usize, captured: &[Value]) -> Expr {
            match e {
                Expr::Param(i) if *i >= data_params => {
                    Expr::Lit(captured[*i - data_params].clone())
                }
                Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) => e.clone(),
                Expr::Tuple(es) => {
                    Expr::Tuple(es.iter().map(|x| subst(x, data_params, captured)).collect())
                }
                Expr::List(es) => {
                    Expr::List(es.iter().map(|x| subst(x, data_params, captured)).collect())
                }
                Expr::Index(x, i) => Expr::Index(Box::new(subst(x, data_params, captured)), *i),
                Expr::Unary(op, x) => Expr::Unary(*op, Box::new(subst(x, data_params, captured))),
                Expr::Binary(op, a, b) => Expr::Binary(
                    *op,
                    Box::new(subst(a, data_params, captured)),
                    Box::new(subst(b, data_params, captured)),
                ),
                Expr::Call(f, es) => Expr::Call(
                    *f,
                    es.iter().map(|x| subst(x, data_params, captured)).collect(),
                ),
                Expr::If(c, t, f) => Expr::If(
                    Box::new(subst(c, data_params, captured)),
                    Box::new(subst(t, data_params, captured)),
                    Box::new(subst(f, data_params, captured)),
                ),
            }
        }
        subst(expr, data_params, captured)
    }

    /// Runs driver-local statements until an action needs the cluster or
    /// the program exits.
    fn run_until_blocked(&mut self, ctx: &mut SimCtx<Msg>) -> Result<(), RuntimeError> {
        loop {
            if !matches!(self.waiting, Waiting::Nothing) || self.finished {
                return Ok(());
            }
            let block = &self.func.blocks[self.block as usize];
            if self.stmt >= block.stmts.len() {
                // Terminator.
                match &block.term {
                    Terminator::Exit => {
                        self.finished = true;
                        return Ok(());
                    }
                    Terminator::Jump(t) => {
                        self.came_from = Some(self.block);
                        self.block = *t;
                        self.stmt = 0;
                        self.path.push(self.block);
                    }
                    Terminator::Branch {
                        cond,
                        then_blk,
                        else_blk,
                    } => {
                        let v = self.scalar(*cond)?;
                        let b = v.as_bool().ok_or_else(|| {
                            RuntimeError::new(format!("driver: non-bool condition {v:?}"))
                        })?;
                        self.came_from = Some(self.block);
                        self.block = if b { *then_blk } else { *else_blk };
                        self.stmt = 0;
                        self.path.push(self.block);
                    }
                }
                continue;
            }
            let stmt = block.stmts[self.stmt].clone();
            self.stmt += 1;
            self.exec_stmt(&stmt, ctx)?;
        }
    }

    fn exec_stmt(
        &mut self,
        stmt: &mitos_ir::nir::Stmt,
        ctx: &mut SimCtx<Msg>,
    ) -> Result<(), RuntimeError> {
        let target = stmt.target;
        match &stmt.op {
            Op::Singleton { captured, expr } => {
                let caps = self.captured_values(captured)?;
                let v = eval(expr, &caps).map_err(|e| RuntimeError::new(e.message))?;
                self.env[target as usize] = Some(Handle::Scalar(v));
            }
            Op::Phi { inputs } => {
                let pred = self
                    .came_from
                    .ok_or_else(|| RuntimeError::new("driver: phi in entry block".to_string()))?;
                let (_, chosen) = inputs
                    .iter()
                    .find(|(p, _)| *p == pred)
                    .ok_or_else(|| RuntimeError::new("driver: phi operand missing".to_string()))?;
                self.env[target as usize] = Some(self.handle_of(*chosen)?);
            }
            Op::Alias { input } => {
                self.env[target as usize] = Some(self.handle_of(*input)?);
            }
            Op::Reduce {
                input,
                captured,
                expr,
                init,
            } => {
                // Scalar aggregation: an ACTION — launch a job that
                // materializes the input and collects it to the driver.
                let caps = self.captured_values(captured)?;
                let input_handle = self.handle_of(*input)?;
                let sink = JobSink::Reduce {
                    var: target,
                    expr: expr.clone(),
                    captured: caps,
                    init: init.clone(),
                };
                self.launch_job(input_handle, StageOp::Collect, sink, ctx)?;
            }
            Op::Output { bag, tag } => {
                let input_handle = self.handle_of(*bag)?;
                if let Handle::Scalar(v) = input_handle {
                    // Wrapped scalars are driver-local: no job needed.
                    self.outputs.entry(tag.to_string()).or_default().push(v);
                } else {
                    let sink = JobSink::Output {
                        tag: tag.to_string(),
                    };
                    self.launch_job(input_handle, StageOp::Collect, sink, ctx)?;
                }
                self.env[target as usize] = Some(Handle::Scalar(Value::Unit));
            }
            Op::WriteFile { bag, name } => {
                let name = self
                    .scalar(*name)?
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| RuntimeError::new("writeFile: non-string name".to_string()))?;
                let input_handle = self.handle_of(*bag)?;
                if let Handle::Scalar(v) = input_handle {
                    // The driver writes one-element results itself.
                    ctx.charge(self.config.cost.io.open_latency_ns);
                    self.fs.append(&name, &[v]);
                } else {
                    self.launch_job(
                        input_handle,
                        StageOp::WriteFile { name },
                        JobSink::None,
                        ctx,
                    )?;
                }
                self.env[target as usize] = Some(Handle::Scalar(Value::Unit));
            }
            // Everything else is a bag operation: record lineage lazily.
            op => {
                let inputs: Result<Vec<Handle>, RuntimeError> =
                    op.uses().iter().map(|&u| self.handle_of(u)).collect();
                self.env[target as usize] = Some(Handle::Lazy(Arc::new(LazyNode {
                    op: op.clone(),
                    inputs: inputs?,
                })));
            }
        }
        Ok(())
    }

    /// Plans and launches a job: topologically orders the uncached lineage
    /// of `root`, one stage per operator, then the action stage.
    fn launch_job(
        &mut self,
        root: Handle,
        action: StageOp,
        sink: JobSink,
        ctx: &mut SimCtx<Msg>,
    ) -> Result<(), RuntimeError> {
        let mut stages: Vec<StageSpec> = Vec::new();
        let mut memo: HashMap<*const LazyNode, (DatasetId, bool)> = HashMap::new();
        let (root_id, _) = self.plan(&root, &mut stages, &mut memo, ctx)?;
        // Action stage.
        stages.push(StageSpec {
            op: action,
            inputs: vec![(root_id, Dist::Keep)],
            output: None,
        });
        self.jobs += 1;
        ctx.charge(self.config.job_launch_ns);
        self.waiting = Waiting::Stage {
            done: 0,
            collected: Vec::new(),
            remaining: stages,
            sink,
        };
        self.dispatch_next_stage(ctx);
        Ok(())
    }

    /// Recursively plans the lineage; returns (dataset id, partitioned by
    /// key).
    #[allow(clippy::only_used_in_recursion)]
    fn plan(
        &mut self,
        handle: &Handle,
        stages: &mut Vec<StageSpec>,
        memo: &mut HashMap<*const LazyNode, (DatasetId, bool)>,
        ctx: &mut SimCtx<Msg>,
    ) -> Result<(DatasetId, bool), RuntimeError> {
        match handle {
            Handle::Scalar(v) => Err(RuntimeError::new(format!(
                "driver: scalar {v:?} used as a dataset"
            ))),
            Handle::Lazy(node) => {
                let key = Arc::as_ptr(node);
                if let Some(&cached) = memo.get(&key) {
                    return Ok(cached);
                }
                if let Some((_, id, by_key)) = self.lineage_cache.get(&key) {
                    // Materialized by an earlier job; executors still hold
                    // the partitions (Spark `.cache()` semantics).
                    return Ok((*id, *by_key));
                }
                let cost = self.config.cost;
                let out_id = self.next_dataset;
                self.next_dataset += 1;
                let result = match &node.op {
                    Op::ReadFile { .. } => {
                        let name = match &node.inputs[0] {
                            Handle::Scalar(v) => {
                                v.as_str().map(str::to_string).ok_or_else(|| {
                                    RuntimeError::new("readFile: non-string name".to_string())
                                })?
                            }
                            _ => {
                                return Err(RuntimeError::new(
                                    "readFile: name must be a driver scalar".to_string(),
                                ))
                            }
                        };
                        stages.push(StageSpec {
                            op: StageOp::ReadFile { name },
                            inputs: vec![],
                            output: Some(out_id),
                        });
                        (out_id, false)
                    }
                    Op::LiteralBag { elems, captured: _ } => {
                        // `parallelize`: the driver evaluates the literal
                        // and ships it as a stage so ordering with later
                        // stages is preserved.
                        let caps: Vec<Value> = node.inputs[..]
                            .iter()
                            .map(|h| match h {
                                Handle::Scalar(v) => Ok(v.clone()),
                                _ => Err(RuntimeError::new(
                                    "literal bag captured non-scalar".to_string(),
                                )),
                            })
                            .collect::<Result<_, _>>()?;
                        let vals: Result<Vec<Value>, RuntimeError> = elems
                            .iter()
                            .map(|e| eval(e, &caps).map_err(|e| RuntimeError::new(e.message)))
                            .collect();
                        stages.push(StageSpec {
                            op: StageOp::Parallelize { elems: vals? },
                            inputs: vec![],
                            output: Some(out_id),
                        });
                        (out_id, false)
                    }
                    Op::Map {
                        input: _,
                        captured,
                        expr,
                    } => {
                        let (in_id, by_key) =
                            self.plan(&node.inputs[0].clone(), stages, memo, ctx)?;
                        let caps = self.lazy_captured(&node.inputs, 1, captured.len())?;
                        stages.push(StageSpec {
                            op: StageOp::Map {
                                expr: Self::bind_captured(expr, 1, &caps),
                            },
                            inputs: vec![(in_id, Dist::Keep)],
                            output: Some(out_id),
                        });
                        // Maps may change keys; be conservative.
                        let _ = by_key;
                        (out_id, false)
                    }
                    Op::FlatMap {
                        input: _,
                        captured,
                        expr,
                    } => {
                        let (in_id, _) = self.plan(&node.inputs[0].clone(), stages, memo, ctx)?;
                        let caps = self.lazy_captured(&node.inputs, 1, captured.len())?;
                        stages.push(StageSpec {
                            op: StageOp::FlatMap {
                                expr: Self::bind_captured(expr, 1, &caps),
                            },
                            inputs: vec![(in_id, Dist::Keep)],
                            output: Some(out_id),
                        });
                        (out_id, false)
                    }
                    Op::Filter {
                        input: _,
                        captured,
                        expr,
                    } => {
                        let (in_id, by_key) =
                            self.plan(&node.inputs[0].clone(), stages, memo, ctx)?;
                        let caps = self.lazy_captured(&node.inputs, 1, captured.len())?;
                        stages.push(StageSpec {
                            op: StageOp::Filter {
                                expr: Self::bind_captured(expr, 1, &caps),
                            },
                            inputs: vec![(in_id, Dist::Keep)],
                            output: Some(out_id),
                        });
                        (out_id, by_key) // filter preserves partitioning
                    }
                    Op::Alias { .. } => {
                        let (in_id, by_key) =
                            self.plan(&node.inputs[0].clone(), stages, memo, ctx)?;
                        (in_id, by_key)
                    }
                    Op::Union { .. } => {
                        let (l, _) = self.plan(&node.inputs[0].clone(), stages, memo, ctx)?;
                        let (r, _) = self.plan(&node.inputs[1].clone(), stages, memo, ctx)?;
                        stages.push(StageSpec {
                            op: StageOp::Union,
                            inputs: vec![(l, Dist::Keep), (r, Dist::Keep)],
                            output: Some(out_id),
                        });
                        (out_id, false)
                    }
                    Op::Join { .. } => {
                        let (l, l_by_key) =
                            self.plan(&node.inputs[0].clone(), stages, memo, ctx)?;
                        let (r, r_by_key) =
                            self.plan(&node.inputs[1].clone(), stages, memo, ctx)?;
                        stages.push(StageSpec {
                            op: StageOp::Join,
                            inputs: vec![
                                (l, if l_by_key { Dist::Keep } else { Dist::Shuffle }),
                                (r, if r_by_key { Dist::Keep } else { Dist::Shuffle }),
                            ],
                            output: Some(out_id),
                        });
                        (out_id, true)
                    }
                    Op::ReduceByKey {
                        input: _,
                        captured,
                        expr,
                    } => {
                        let (in_id, by_key) =
                            self.plan(&node.inputs[0].clone(), stages, memo, ctx)?;
                        let caps = self.lazy_captured(&node.inputs, 1, captured.len())?;
                        stages.push(StageSpec {
                            op: StageOp::ReduceByKey {
                                expr: Self::bind_captured(expr, 2, &caps),
                            },
                            inputs: vec![(in_id, if by_key { Dist::Keep } else { Dist::Shuffle })],
                            output: Some(out_id),
                        });
                        (out_id, true)
                    }
                    Op::ReduceByKeyLocal {
                        input: _,
                        captured,
                        expr,
                    } => {
                        // Map-side combine: aggregate within the partition,
                        // no shuffle.
                        let (in_id, by_key) =
                            self.plan(&node.inputs[0].clone(), stages, memo, ctx)?;
                        let caps = self.lazy_captured(&node.inputs, 1, captured.len())?;
                        stages.push(StageSpec {
                            op: StageOp::ReduceByKey {
                                expr: Self::bind_captured(expr, 2, &caps),
                            },
                            inputs: vec![(in_id, Dist::Keep)],
                            output: Some(out_id),
                        });
                        (out_id, by_key)
                    }
                    Op::Distinct { .. } => {
                        let (in_id, by_key) =
                            self.plan(&node.inputs[0].clone(), stages, memo, ctx)?;
                        stages.push(StageSpec {
                            op: StageOp::Distinct,
                            inputs: vec![(in_id, if by_key { Dist::Keep } else { Dist::Shuffle })],
                            output: Some(out_id),
                        });
                        (out_id, by_key)
                    }
                    Op::Cross { .. } => {
                        let (l, _) = self.plan(&node.inputs[0].clone(), stages, memo, ctx)?;
                        let (r, _) = self.plan(&node.inputs[1].clone(), stages, memo, ctx)?;
                        stages.push(StageSpec {
                            op: StageOp::Cross,
                            inputs: vec![(l, Dist::Keep), (r, Dist::Broadcast)],
                            output: Some(out_id),
                        });
                        (out_id, false)
                    }
                    other => {
                        return Err(RuntimeError::new(format!(
                            "driver: unexpected lazy op {}",
                            other.mnemonic()
                        )))
                    }
                };
                let _ = cost;
                memo.insert(key, result);
                self.lineage_cache
                    .insert(key, (node.clone(), result.0, result.1));
                Ok(result)
            }
        }
    }

    fn lazy_captured(
        &self,
        inputs: &[Handle],
        data_arity: usize,
        n: usize,
    ) -> Result<Vec<Value>, RuntimeError> {
        inputs[data_arity..data_arity + n]
            .iter()
            .map(|h| match h {
                Handle::Scalar(v) => Ok(v.clone()),
                _ => Err(RuntimeError::new(
                    "lambda captured a non-scalar".to_string(),
                )),
            })
            .collect()
    }

    fn dispatch_next_stage(&mut self, ctx: &mut SimCtx<Msg>) {
        let Waiting::Stage { remaining, .. } = &mut self.waiting else {
            return;
        };
        if remaining.is_empty() {
            return;
        }
        let spec = remaining.remove(0);
        self.stages += 1;
        self.stage_seq += 1;
        // Serial per-task driver work: the linear-in-machines overhead.
        ctx.charge(self.config.per_task_ns * self.machines as u64);
        for m in 0..self.machines {
            ctx.send(
                ActorId::new(m, EXECUTOR),
                Msg::Task {
                    stage_seq: self.stage_seq,
                    spec: spec.clone(),
                },
                256,
            );
        }
    }

    fn on_task_done(
        &mut self,
        stage_seq: u64,
        collected: Vec<Value>,
        ctx: &mut SimCtx<Msg>,
    ) -> Result<(), RuntimeError> {
        if stage_seq != self.stage_seq {
            return Err(RuntimeError::new("driver: stale TaskDone".to_string()));
        }
        let machines = self.machines;
        let finished_job = {
            let Waiting::Stage {
                done,
                collected: acc,
                remaining,
                ..
            } = &mut self.waiting
            else {
                return Err(RuntimeError::new("driver: unexpected TaskDone".to_string()));
            };
            *done += 1;
            acc.extend(collected);
            if *done < machines {
                return Ok(());
            }
            if !remaining.is_empty() {
                *done = 0;
                None
            } else {
                Some(())
            }
        };
        if finished_job.is_none() {
            self.dispatch_next_stage(ctx);
            return Ok(());
        }
        // Job complete: apply the sink and resume the driver program.
        let waiting = std::mem::replace(&mut self.waiting, Waiting::Nothing);
        let Waiting::Stage {
            collected, sink, ..
        } = waiting
        else {
            unreachable!()
        };
        match sink {
            JobSink::None => {}
            JobSink::Output { tag } => {
                self.outputs.entry(tag).or_default().extend(collected);
            }
            JobSink::Reduce {
                var,
                expr,
                captured,
                init,
            } => {
                ctx.charge(
                    self.config
                        .cost
                        .eval_cost(expr.node_count(), collected.len()),
                );
                let folded = kernel::reduce(&expr, &captured, init.as_ref(), &collected)
                    .map_err(|e| RuntimeError::new(e.message))?;
                let v = folded.ok_or_else(|| {
                    RuntimeError::new("reduce on empty bag with no init".to_string())
                })?;
                self.env[var as usize] = Some(Handle::Scalar(v));
            }
        }
        self.run_until_blocked(ctx)
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

struct PendingTask {
    spec: StageSpec,
    /// Per input: received shuffle blocks (None = not shuffled).
    shuffle_in: Vec<Option<(Vec<Value>, u16)>>,
}

struct Executor {
    machine: u16,
    machines: u16,
    cost: CostModel,
    fs: InMemoryFs,
    cache: HashMap<DatasetId, Vec<Value>>,
    pending: HashMap<u64, PendingTask>,
    /// Shuffle blocks that arrived before their Task (peer executors start
    /// shuffling as soon as they get the stage; jitter can reorder).
    early_blocks: HashMap<(u64, usize), (Vec<Value>, u16)>,
}

impl Executor {
    fn on_task(
        &mut self,
        stage_seq: u64,
        spec: StageSpec,
        ctx: &mut SimCtx<Msg>,
    ) -> Result<(), RuntimeError> {
        // Kick off shuffles for inputs that need them.
        let mut shuffle_in: Vec<Option<(Vec<Value>, u16)>> = Vec::new();
        let mut any_shuffle = false;
        for (idx, (dataset, dist)) in spec.inputs.iter().enumerate() {
            match dist {
                Dist::Keep => shuffle_in.push(None),
                Dist::Shuffle | Dist::Broadcast => {
                    any_shuffle = true;
                    shuffle_in.push(Some((Vec::new(), 0)));
                    let local = self.cache.get(dataset).cloned().ok_or_else(|| {
                        RuntimeError::new(format!(
                            "executor {}: dataset {dataset} not cached for shuffle",
                            self.machine
                        ))
                    })?;
                    ctx.charge(self.cost.ser_cost(local.len()));
                    if *dist == Dist::Shuffle {
                        let mut parts: Vec<Vec<Value>> = vec![Vec::new(); self.machines as usize];
                        for v in local {
                            let d = (mitos_core::graph::stable_hash(v.key()) % self.machines as u64)
                                as usize;
                            parts[d].push(v);
                        }
                        for (m, part) in parts.into_iter().enumerate() {
                            let bytes: u64 = self.cost.wire_bytes(
                                part.iter().map(Value::estimated_bytes).sum::<u64>() + 16,
                            );
                            ctx.send(
                                ActorId::new(m as u16, EXECUTOR),
                                Msg::ShuffleBlock {
                                    stage_seq,
                                    input_idx: idx,
                                    elems: part,
                                },
                                bytes,
                            );
                        }
                    } else {
                        for m in 0..self.machines {
                            let bytes: u64 = self.cost.wire_bytes(
                                local.iter().map(Value::estimated_bytes).sum::<u64>() + 16,
                            );
                            ctx.send(
                                ActorId::new(m, EXECUTOR),
                                Msg::ShuffleBlock {
                                    stage_seq,
                                    input_idx: idx,
                                    elems: local.clone(),
                                },
                                bytes,
                            );
                        }
                    }
                }
            }
        }
        // Fold in any blocks that raced ahead of this Task.
        for (idx, slot) in shuffle_in.iter_mut().enumerate() {
            if let Some((elems, got)) = slot {
                if let Some((early, n)) = self.early_blocks.remove(&(stage_seq, idx)) {
                    elems.extend(early);
                    *got += n;
                }
            }
        }
        self.pending
            .insert(stage_seq, PendingTask { spec, shuffle_in });
        self.try_run(stage_seq, ctx)?;
        let _ = any_shuffle;
        Ok(())
    }

    fn on_shuffle_block(
        &mut self,
        stage_seq: u64,
        input_idx: usize,
        elems: Vec<Value>,
        ctx: &mut SimCtx<Msg>,
    ) -> Result<(), RuntimeError> {
        let Some(task) = self.pending.get_mut(&stage_seq) else {
            // The Task message has not arrived yet; stash the block.
            let entry = self
                .early_blocks
                .entry((stage_seq, input_idx))
                .or_insert_with(|| (Vec::new(), 0));
            entry.0.extend(elems);
            entry.1 += 1;
            return Ok(());
        };
        let slot = task.shuffle_in[input_idx]
            .as_mut()
            .ok_or_else(|| RuntimeError::new("executor: unexpected shuffle".to_string()))?;
        slot.0.extend(elems);
        slot.1 += 1;
        self.try_run(stage_seq, ctx)
    }

    fn try_run(&mut self, stage_seq: u64, ctx: &mut SimCtx<Msg>) -> Result<(), RuntimeError> {
        let ready = {
            let task = self.pending.get(&stage_seq).expect("pending task");
            task.shuffle_in
                .iter()
                .all(|s| s.as_ref().is_none_or(|(_, got)| *got == self.machines))
        };
        if !ready {
            return Ok(());
        }
        let task = self.pending.remove(&stage_seq).expect("pending task");
        let inputs: Vec<Vec<Value>> = task
            .spec
            .inputs
            .iter()
            .zip(task.shuffle_in)
            .map(|((dataset, _), shuffled)| match shuffled {
                Some((elems, _)) => Ok(elems),
                None => self.cache.get(dataset).cloned().ok_or_else(|| {
                    RuntimeError::new(format!(
                        "executor {}: dataset {dataset} not cached",
                        self.machine
                    ))
                }),
            })
            .collect::<Result<_, RuntimeError>>()?;
        let cost = self.cost;
        let mut collected: Vec<Value> = Vec::new();
        let output: Option<Vec<Value>> = match &task.spec.op {
            StageOp::Parallelize { elems } => {
                let part: Vec<Value> = elems
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (i % self.machines as usize) == self.machine as usize)
                    .map(|(_, v)| v.clone())
                    .collect();
                Some(part)
            }
            StageOp::ReadFile { name } => {
                let (part, parts) = (self.machine as usize, self.machines as usize);
                let elems = self
                    .fs
                    .read_partition(name, part, parts)
                    .map_err(|e| RuntimeError::new(e.to_string()))?;
                let bytes = self.fs.partition_bytes(name, part, parts).unwrap_or(0);
                ctx.charge(cost.io_cost(bytes));
                Some(elems)
            }
            StageOp::Map { expr } => {
                ctx.charge(cost.eval_cost(expr.node_count(), inputs[0].len()));
                Some(
                    kernel::map(expr, &[], &Batch::from_slice(&inputs[0]))
                        .map_err(|e| RuntimeError::new(e.message))?
                        .into_values(),
                )
            }
            StageOp::FlatMap { expr } => {
                ctx.charge(cost.eval_cost(expr.node_count(), inputs[0].len()));
                Some(
                    kernel::flat_map(expr, &[], &Batch::from_slice(&inputs[0]))
                        .map_err(|e| RuntimeError::new(e.message))?
                        .into_values(),
                )
            }
            StageOp::Filter { expr } => {
                ctx.charge(cost.eval_cost(expr.node_count(), inputs[0].len()));
                Some(
                    kernel::filter(expr, &[], &Batch::from_slice(&inputs[0]))
                        .map_err(|e| RuntimeError::new(e.message))?
                        .into_values(),
                )
            }
            StageOp::Union => {
                let mut out = inputs[0].clone();
                out.extend_from_slice(&inputs[1]);
                ctx.charge(cost.elem_cost(out.len()));
                Some(out)
            }
            StageOp::Join => {
                // No hoisting: the hash table is rebuilt on every job.
                ctx.charge(cost.insert_cost(inputs[0].len()));
                ctx.charge(cost.probe_cost(inputs[1].len()));
                Some(kernel::join(&inputs[0], &inputs[1]))
            }
            StageOp::ReduceByKey { expr } => {
                ctx.charge(cost.eval_cost(expr.node_count(), inputs[0].len()));
                Some(
                    kernel::reduce_by_key(expr, &[], &inputs[0])
                        .map_err(|e| RuntimeError::new(e.message))?,
                )
            }
            StageOp::Distinct => {
                ctx.charge(cost.insert_cost(inputs[0].len()));
                Some(kernel::distinct(&inputs[0]))
            }
            StageOp::Cross => {
                ctx.charge(cost.elem_cost(inputs[0].len() * inputs[1].len().max(1)));
                Some(kernel::cross(&inputs[0], &inputs[1]))
            }
            StageOp::Collect => {
                ctx.charge(cost.ser_cost(inputs[0].len()));
                collected = inputs[0].clone();
                None
            }
            StageOp::WriteFile { name } => {
                let bytes: u64 = inputs[0].iter().map(Value::estimated_bytes).sum();
                ctx.charge(cost.io_stream_cost(bytes));
                self.fs.append(name, &inputs[0]);
                None
            }
        };
        if let (Some(out), Some(id)) = (output, task.spec.output) {
            self.cache.insert(id, out);
        }
        let bytes: u64 = self
            .cost
            .wire_bytes(collected.iter().map(Value::estimated_bytes).sum::<u64>() + 16);
        ctx.send(
            ActorId::new(0, DRIVER),
            Msg::TaskDone {
                stage_seq,
                collected,
            },
            bytes,
        );
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// World & entry point
// ---------------------------------------------------------------------------

struct SparkWorld {
    driver: Driver,
    executors: Vec<Executor>,
}

impl World for SparkWorld {
    type Msg = Msg;
    fn handle(&mut self, dest: ActorId, msg: Msg, ctx: &mut SimCtx<Msg>) {
        if self.driver.error.is_some() {
            return;
        }
        let result = if dest.index == DRIVER {
            match msg {
                Msg::Go => self.driver.run_until_blocked(ctx),
                Msg::TaskDone {
                    stage_seq,
                    collected,
                } => self.driver.on_task_done(stage_seq, collected, ctx),
                _ => Err(RuntimeError::new("driver: unexpected message".to_string())),
            }
        } else {
            let ex = &mut self.executors[dest.machine as usize];
            match msg {
                Msg::Task { stage_seq, spec } => ex.on_task(stage_seq, spec, ctx),
                Msg::ShuffleBlock {
                    stage_seq,
                    input_idx,
                    elems,
                } => ex.on_shuffle_block(stage_seq, input_idx, elems, ctx),
                _ => Err(RuntimeError::new(
                    "executor: unexpected message".to_string(),
                )),
            }
        };
        if let Err(e) = result {
            self.driver.error = Some(e);
        }
    }
}

/// Runs a compiled SSA program in driver-loop (Spark-like) style on the
/// simulated cluster.
pub fn run_driver_loop(
    func: &FuncIr,
    fs: &InMemoryFs,
    config: DriverConfig,
    cluster: SimConfig,
) -> Result<DriverResult, RuntimeError> {
    let func = Arc::new(func.clone());
    let driver = Driver {
        func: func.clone(),
        config,
        machines: cluster.machines,
        fs: fs.clone(),
        env: vec![None; func.vars.len()],
        lineage_cache: HashMap::new(),
        block: 0,
        stmt: 0,
        came_from: None,
        path: vec![0],
        next_dataset: 1,
        stage_seq: 0,
        waiting: Waiting::Nothing,
        outputs: BTreeMap::new(),
        jobs: 0,
        stages: 0,
        finished: false,
        error: None,
    };
    let executors = (0..cluster.machines)
        .map(|m| Executor {
            machine: m,
            machines: cluster.machines,
            cost: config.cost,
            fs: fs.clone(),
            cache: HashMap::new(),
            pending: HashMap::new(),
            early_blocks: HashMap::new(),
        })
        .collect();
    let mut sim = Sim::new(cluster, SparkWorld { driver, executors });
    sim.inject(ActorId::new(0, DRIVER), Msg::Go);
    let report = sim.run();
    let world = sim.into_world();
    if let Some(e) = world.driver.error {
        return Err(e);
    }
    if !world.driver.finished {
        return Err(RuntimeError::new(
            "driver-loop simulation quiesced before program exit",
        ));
    }
    let outputs = world
        .driver
        .outputs
        .into_iter()
        .map(|(k, mut v)| {
            v.sort_unstable();
            (k, v)
        })
        .collect();
    Ok(DriverResult {
        outputs,
        path: world.driver.path,
        sim: report,
        jobs: world.driver.jobs,
        stages: world.driver.stages,
    })
}
