//! Quick probe (not a regression test) of relative engine performance.
use mitos_baselines::*;
use mitos_core::rt::EngineConfig;
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;
use mitos_workloads::*;

#[test]
#[ignore]
fn probe_visit_count() {
    let days = 30;
    let spec = VisitCountSpec {
        days,
        visits_per_day: 2000,
        pages: 500,
        seed: 1,
    };
    let src = visit_count_program(days, false);
    let func = mitos_ir::compile_str(&src).unwrap();
    for machines in [4u16, 16] {
        let cluster = SimConfig::with_machines(machines);
        let t0 = std::time::Instant::now();
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        let mitos = mitos_core::run_sim(&func, &fs, EngineConfig::default(), cluster).unwrap();
        let t1 = std::time::Instant::now();
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        let nopipe = mitos_core::run_sim(
            &func,
            &fs,
            EngineConfig::new().with_pipelining(false),
            cluster,
        )
        .unwrap();
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        let flink = mitos_core::run_sim(
            &func,
            &fs,
            EngineConfig::new()
                .with_pipelining(false)
                .with_extra_step_overhead_ns(4_000_000),
            cluster,
        )
        .unwrap();
        let t2 = std::time::Instant::now();
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        let spark = run_driver_loop(&func, &fs, DriverConfig::default(), cluster).unwrap();
        let t3 = std::time::Instant::now();
        println!("machines={machines}: mitos={:.1}ms nopipe={:.1}ms flinkish={:.1}ms spark={:.1}ms | wall: mitos={:?} flink={:?} spark={:?}",
            mitos.millis(), nopipe.millis(), flink.millis(), spark.millis(),
            t1-t0, t2-t1, t3-t2);
    }
}
