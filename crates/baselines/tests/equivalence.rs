//! Every baseline engine must produce exactly the reference interpreter's
//! results — performance differs, semantics must not.

use mitos_baselines::{flink_mode, run_driver_loop, run_flink_native, DriverConfig, FlinkMode};
use mitos_fs::InMemoryFs;
use mitos_ir::{interpret, InterpConfig};
use mitos_lang::Value;
use mitos_sim::SimConfig;
use mitos_workloads::{
    generate_page_types, generate_visit_logs, visit_count_program, VisitCountSpec,
};

fn reference(src: &str, setup: &dyn Fn(&InMemoryFs)) -> (mitos_ir::RunResult, InMemoryFs) {
    let fs = InMemoryFs::new();
    setup(&fs);
    let func = mitos_ir::compile_str(src).unwrap();
    let r = interpret(&func, &fs, InterpConfig::default()).unwrap();
    (r, fs)
}

fn check_spark(src: &str, machines: u16, setup: &dyn Fn(&InMemoryFs)) {
    let (reference, ref_fs) = reference(src, setup);
    let fs = InMemoryFs::new();
    setup(&fs);
    let func = mitos_ir::compile_str(src).unwrap();
    let r = run_driver_loop(
        &func,
        &fs,
        DriverConfig::default(),
        SimConfig::with_machines(machines),
    )
    .unwrap();
    assert_eq!(r.path, reference.path, "driver path");
    assert_eq!(r.outputs, reference.canonical_outputs(), "outputs");
    assert_eq!(fs.snapshot(), ref_fs.snapshot(), "file effects");
}

#[test]
fn spark_straight_line() {
    check_spark(
        "b = bag(1, 2, 3).map(x => x * 10).filter(x => x > 15); output(b, \"b\");",
        3,
        &|_| {},
    );
}

#[test]
fn spark_scalar_loop() {
    check_spark(
        "s = 0; for i = 1 to 6 { s = s + i * i; } output(s, \"s\");",
        2,
        &|_| {},
    );
}

#[test]
fn spark_visit_count() {
    let spec = VisitCountSpec {
        days: 4,
        visits_per_day: 60,
        pages: 12,
        seed: 11,
    };
    check_spark(&visit_count_program(4, false), 3, &|fs| {
        generate_visit_logs(fs, &spec)
    });
}

#[test]
fn spark_visit_count_with_page_types() {
    let spec = VisitCountSpec {
        days: 3,
        visits_per_day: 40,
        pages: 10,
        seed: 5,
    };
    check_spark(&visit_count_program(3, true), 2, &|fs| {
        generate_visit_logs(fs, &spec);
        generate_page_types(fs, 10, 2, 3);
    });
}

#[test]
fn spark_launches_jobs_per_iteration() {
    let spec = VisitCountSpec {
        days: 5,
        visits_per_day: 20,
        pages: 5,
        seed: 2,
    };
    let fs = InMemoryFs::new();
    generate_visit_logs(&fs, &spec);
    let func = mitos_ir::compile_str(&visit_count_program(5, false)).unwrap();
    let r = run_driver_loop(
        &func,
        &fs,
        DriverConfig::default(),
        SimConfig::with_machines(2),
    )
    .unwrap();
    // One writeFile job per day 2..=5: at least 4 jobs.
    assert!(r.jobs >= 4, "jobs = {}", r.jobs);
}

#[test]
fn flink_native_matches_reference_on_supported_programs() {
    let src = "s = 0; i = 0; while (i < 8) { s = s + i; i = i + 1; } output(s, \"s\");";
    let func = mitos_ir::compile_str(src).unwrap();
    assert_eq!(flink_mode(&func), FlinkMode::Native);
    let (reference, _) = reference(src, &|_| {});
    let fs = InMemoryFs::new();
    let r = run_flink_native(&func, &fs, SimConfig::with_machines(4)).unwrap();
    assert_eq!(r.outputs, reference.canonical_outputs());
    assert_eq!(r.path, reference.path);
}

#[test]
fn visit_count_needs_separate_jobs_on_flink() {
    // The paper's Sec. 2 point: file reads + the if statement make Visit
    // Count inexpressible in Flink's native iterations.
    let func = mitos_ir::compile_str(&visit_count_program(3, false)).unwrap();
    assert_eq!(flink_mode(&func), FlinkMode::SeparateJobs);
}

#[test]
fn spark_cross_and_distinct() {
    check_spark(
        r#"
        a = bag(1, 2, 2, 3).distinct();
        b = bag(10, 20);
        c = a cross b;
        output(c.count(), "n");
        "#,
        3,
        &|_| {},
    );
}

#[test]
fn spark_union_and_flatmap() {
    check_spark(
        r#"
        a = bag(1, 2);
        b = bag(3).flatMap(x => [x, x + 1]);
        c = a union b;
        output(c, "c");
        "#,
        2,
        &|_| {},
    );
}

#[test]
fn spark_writes_files_inside_branches() {
    check_spark(
        r#"
        for d = 1 to 4 {
            data = bag((d, 1), (d, 2));
            if (d % 2 == 0) {
                writeFile(data, "even" + d);
            } else {
                writeFile(data.filter(t => t[1] > 1), "odd" + d);
            }
        }
        "#,
        2,
        &|_| {},
    );
}

#[test]
fn spark_deterministic_under_jitter() {
    let src = "t = 0; for d = 1 to 3 { t = t + readFile(\"f\" + d).count(); } output(t, \"t\");";
    let setup = |fs: &InMemoryFs| {
        for d in 1..=3 {
            fs.put(
                format!("f{d}"),
                (0..25).map(|i| Value::I64(i * d)).collect(),
            );
        }
    };
    let func = mitos_ir::compile_str(src).unwrap();
    let mut outs = Vec::new();
    for seed in [3u64, 9] {
        let fs = InMemoryFs::new();
        setup(&fs);
        let mut cfg = SimConfig::with_machines(3);
        cfg.seed = seed;
        cfg.jitter_pct = 30;
        let r = run_driver_loop(&func, &fs, DriverConfig::default(), cfg).unwrap();
        outs.push(r.outputs);
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[0]["t"], vec![Value::I64(75)]);
}
