//! The per-machine worker: the **control-flow manager** (Sec. 5.2.1) plus
//! all bag operator hosts placed on this machine, plus (on machine 0, in
//! non-pipelined mode) the superstep barrier.
//!
//! The control-flow manager replicates the global execution path: it extends
//! it locally through unconditional jumps and learns conditional-jump
//! outcomes from broadcast `Decision` messages. Every path append is pushed
//! to the local hosts, which is how operators watch the path evolve.

use crate::graph::OpId;
use crate::host::{Host, HostOut};
use crate::obs::{EventKind, ObsBuf, OP_NONE};
use crate::path::ExecutionPath;
use crate::relay::{Relay, ReliableNet};
use crate::rt::{EngineShared, Msg, Net, RuntimeError};
use mitos_ir::nir::Terminator;
use mitos_ir::BlockId;
use std::collections::HashMap;
use std::sync::Arc;

/// Superstep barrier state (machine 0, non-pipelined mode).
struct Barrier {
    /// Positions `< frontier` are fully computed; `<= frontier` may start.
    frontier: u32,
    /// Completion counts per path position.
    completions: HashMap<u32, u32>,
    /// Total instances per basic block (completions expected per
    /// occurrence).
    expected_per_block: Vec<u32>,
}

/// One worker actor: everything that runs on one simulated machine.
pub struct Worker {
    machine: u16,
    shared: Arc<EngineShared>,
    path: ExecutionPath,
    pending_decisions: HashMap<u32, BlockId>,
    hosts: Vec<Host>,
    host_of_op: HashMap<OpId, usize>,
    barrier: Option<Barrier>,
    /// First fatal error; once set, the worker discards further messages.
    pub error: Option<RuntimeError>,
    /// Count of control-flow decisions this worker broadcast.
    pub decisions_broadcast: u64,
    /// Count of data-plane messages ([`Msg::Data`] / [`Msg::BagDone`])
    /// this worker received — bag traffic, excluding the control plane.
    pub data_messages: u64,
    /// Observability buffer (events + metrics); drained at join via
    /// [`Worker::take_obs`].
    obs: ObsBuf,
    /// At-least-once delivery state; active only when the configured
    /// [`crate::rt::FaultPlan`] injects network faults with recovery on.
    relay: Relay,
}

impl Worker {
    /// Builds the worker for `machine`, instantiating the hosts placed
    /// there.
    pub fn new(shared: Arc<EngineShared>, machine: u16) -> Worker {
        let mut hosts = Vec::new();
        let mut host_of_op = HashMap::new();
        for op in 0..shared.graph.nodes.len() as OpId {
            let n = shared.graph.instances(op, shared.machines);
            for inst in 0..n {
                if shared.graph.placement(op, inst) == machine {
                    host_of_op.insert(op, hosts.len());
                    hosts.push(Host::new(shared.clone(), op, inst));
                }
            }
        }
        let barrier = if machine == 0 && !shared.config.pipelined {
            let mut expected_per_block = vec![0u32; shared.graph.func.block_count()];
            for (op, node) in shared.graph.nodes.iter().enumerate() {
                expected_per_block[node.block as usize] +=
                    shared.graph.instances(op as OpId, shared.machines) as u32;
            }
            Some(Barrier {
                frontier: 0,
                completions: HashMap::new(),
                expected_per_block,
            })
        } else {
            None
        };
        let obs = ObsBuf::new(shared.config.obs, machine);
        let relay = Relay::new(
            machine,
            shared.machines,
            shared.config.faults.net_faults_active() && shared.config.faults.retransmit,
        );
        Worker {
            machine,
            shared,
            path: ExecutionPath::new(),
            pending_decisions: HashMap::new(),
            hosts,
            host_of_op,
            barrier,
            error: None,
            decisions_broadcast: 0,
            data_messages: 0,
            obs,
            relay,
        }
    }

    /// Envelopes this worker retransmitted (fault-injection runs only).
    pub fn retransmits(&self) -> u64 {
        self.relay.retransmits
    }

    /// Duplicate deliveries this worker discarded (fault-injection runs
    /// only).
    pub fn dups_dropped(&self) -> u64 {
        self.relay.dups_dropped
    }

    /// Drains this worker's observability buffer (called once, at join).
    pub fn take_obs(&mut self) -> ObsBuf {
        std::mem::take(&mut self.obs)
    }

    /// Read access to the replicated execution path (tests compare it with
    /// the reference interpreter's path).
    pub fn path(&self) -> &ExecutionPath {
        &self.path
    }

    /// Whether every host on this machine is idle.
    pub fn idle(&self) -> bool {
        self.path.exited() && self.hosts.iter().all(Host::idle)
    }

    /// Aggregated hoisting hits across local hosts.
    pub fn hoist_hits(&self) -> u64 {
        self.hosts.iter().map(|h| h.hoist_hits).sum()
    }

    /// Aggregated emitted elements across local hosts.
    pub fn emitted_elements(&self) -> u64 {
        self.hosts.iter().map(|h| h.emitted_elements).sum()
    }

    /// Aggregated execution-template replay hits across local hosts.
    pub fn template_hits(&self) -> u64 {
        self.hosts.iter().map(Host::template_hits).sum()
    }

    /// Aggregated execution-template misses across local hosts.
    pub fn template_misses(&self) -> u64 {
        self.hosts.iter().map(Host::template_misses).sum()
    }

    /// Aggregated execution-template invalidations across local hosts.
    pub fn template_invalidations(&self) -> u64 {
        self.hosts.iter().map(Host::template_invalidations).sum()
    }

    /// Per-local-host statistics: `(op, emitted elements, hoisting hits)`.
    pub fn host_stats(&self) -> Vec<(crate::graph::OpId, u64, u64)> {
        self.hosts
            .iter()
            .map(|h| (h.op(), h.emitted_elements, h.hoist_hits))
            .collect()
    }

    /// Handles one delivered message.
    pub fn handle(&mut self, msg: Msg, net: &mut dyn Net) {
        if self.error.is_some() {
            return;
        }
        // Live telemetry: every handled message is progress (the stall
        // watchdog watches this timestamp). The always-on flight recorder
        // reuses the same clock read and never touches the net, so both
        // charge zero virtual time.
        let now = net.now_ns();
        self.shared.telemetry.touch(self.machine, now);
        self.shared.flight.record(self.machine, now, &msg);
        let result = if self.relay.enabled() {
            self.handle_reliable(msg, net)
        } else {
            self.ingest(msg, net)
        };
        if let Err(e) = result {
            self.error = Some(e);
        }
    }

    /// Counts and dispatches one logical message (post-dedup when the
    /// recovery protocol is active).
    fn ingest(&mut self, msg: Msg, net: &mut dyn Net) -> Result<(), RuntimeError> {
        // Receive-side flow accounting shares the post-dedup position with
        // `data_messages`, so the per-edge message totals reconcile with it
        // exactly — retransmissions and duplicates included.
        match &msg {
            Msg::Data { edge, batch, .. } => {
                self.shared
                    .telemetry
                    .elements_in(self.machine, batch.len() as u64);
                self.shared
                    .flow
                    .msg_in(*edge, self.machine, batch.len() as u64);
                self.data_messages += 1;
            }
            Msg::BagDone { edge, .. } => {
                self.shared.flow.msg_in(*edge, self.machine, 0);
                self.data_messages += 1;
            }
            _ => {}
        }
        self.dispatch(msg, net)
    }

    /// Relay interception under network faults: unwraps, dedups, and acks
    /// envelopes, retires acks, services retransmission timers, and routes
    /// everything this worker sends back through the relay so outgoing
    /// guarded traffic is wrapped too.
    fn handle_reliable(&mut self, msg: Msg, net: &mut dyn Net) -> Result<(), RuntimeError> {
        // The relay is taken out of `self` so a `ReliableNet` can borrow it
        // alongside `self` inside dispatch; restored on every path. The
        // shared handle is cloned for the same reason: `ReliableNet` holds
        // the flow registry across the `&mut self` ingest call.
        let shared = self.shared.clone();
        let mut relay = std::mem::take(&mut self.relay);
        let result = match msg {
            Msg::Reliable { src, seq, payload } => {
                if relay.accept(net, src, seq, &shared.mem) {
                    let mut rnet = ReliableNet {
                        inner: net,
                        relay: &mut relay,
                        flow: &shared.flow,
                        mem: &shared.mem,
                    };
                    self.ingest(*payload, &mut rnet)
                } else {
                    self.obs
                        .record(net, OP_NONE, EventKind::DuplicateDropped { peer: src, seq });
                    self.shared.telemetry.dup_dropped(self.machine);
                    Ok(())
                }
            }
            Msg::Ack { peer, seq } => {
                relay.on_ack(peer, seq, &self.shared.flow, &self.shared.mem);
                Ok(())
            }
            Msg::RetryTick { peer } => {
                let note = self.shared.config.faults.summary();
                match relay.on_tick(net, peer, &note, &self.shared.flow) {
                    Ok(resent) => {
                        for (peer, seq, attempt, step) in resent {
                            self.obs.record(
                                net,
                                OP_NONE,
                                EventKind::RetransmitSent {
                                    peer,
                                    seq,
                                    attempt,
                                    step,
                                },
                            );
                            self.shared.telemetry.retransmit(self.machine);
                        }
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            other => {
                let mut rnet = ReliableNet {
                    inner: net,
                    relay: &mut relay,
                    flow: &shared.flow,
                    mem: &shared.mem,
                };
                self.ingest(other, &mut rnet)
            }
        };
        self.relay = relay;
        result
    }

    fn dispatch(&mut self, msg: Msg, net: &mut dyn Net) -> Result<(), RuntimeError> {
        let mut decisions: Vec<(u32, BlockId)> = Vec::new();
        let mut computed: Vec<u32> = Vec::new();
        match msg {
            Msg::Start => {
                let pos = self.path.append(0);
                debug_assert_eq!(pos, 0);
                self.shared
                    .telemetry
                    .position(self.machine, 0, self.path.len());
                self.obs
                    .record(net, OP_NONE, EventKind::PathAppended { pos, block: 0 });
                self.notify_append(pos, 0, net, &mut decisions, &mut computed)?;
                self.advance(net, &mut decisions, &mut computed)?;
            }
            Msg::Decision { index, block, ctx } => {
                // Remote receipt of a broadcast decision: tie our receipt
                // span back to the decider's span via the wire context.
                self.obs.record(
                    net,
                    OP_NONE,
                    EventKind::DecisionReceived {
                        pos: index,
                        block,
                        parent: ctx.parent,
                    },
                );
                self.pending_decisions.insert(index, block);
                self.advance(net, &mut decisions, &mut computed)?;
            }
            Msg::Data {
                edge,
                dst_inst,
                bag_len,
                batch,
            } => {
                let dst = self.shared.graph.edges[edge as usize].dst;
                debug_assert_eq!(self.shared.graph.placement(dst, dst_inst), self.machine);
                let hi = *self.host_of_op.get(&dst).ok_or_else(|| {
                    RuntimeError::new(format!("no host for op {dst} on machine {}", self.machine))
                })?;
                let mut out = HostOut {
                    net,
                    decisions: &mut decisions,
                    computed: &mut computed,
                    obs: &mut self.obs,
                };
                self.hosts[hi].on_data(edge, bag_len, batch, &self.path, &mut out)?;
            }
            Msg::BagDone {
                edge,
                dst_inst,
                bag_len,
                count,
            } => {
                let dst = self.shared.graph.edges[edge as usize].dst;
                debug_assert_eq!(self.shared.graph.placement(dst, dst_inst), self.machine);
                let hi = *self.host_of_op.get(&dst).ok_or_else(|| {
                    RuntimeError::new(format!("no host for op {dst} on machine {}", self.machine))
                })?;
                let mut out = HostOut {
                    net,
                    decisions: &mut decisions,
                    computed: &mut computed,
                    obs: &mut self.obs,
                };
                self.hosts[hi].on_done(edge, bag_len, count, &self.path, &mut out)?;
            }
            Msg::BagComputed { pos } => {
                self.barrier_completion(pos, net)?;
            }
            Msg::IoDone { op } => {
                let hi = *self.host_of_op.get(&op).ok_or_else(|| {
                    RuntimeError::new(format!("no host for op {op} on machine {}", self.machine))
                })?;
                let mut out = HostOut {
                    net,
                    decisions: &mut decisions,
                    computed: &mut computed,
                    obs: &mut self.obs,
                };
                self.hosts[hi].on_io_done(&self.path, &mut out)?;
            }
            Msg::Release { pos } => {
                for hi in 0..self.hosts.len() {
                    let mut out = HostOut {
                        net,
                        decisions: &mut decisions,
                        computed: &mut computed,
                        obs: &mut self.obs,
                    };
                    self.hosts[hi].on_release(pos, &self.path, &mut out)?;
                }
            }
            Msg::Reliable { .. } | Msg::Ack { .. } | Msg::RetryTick { .. } => {
                // Intercepted in handle_reliable; reaching dispatch means an
                // envelope arrived with the recovery protocol disabled.
                return Err(RuntimeError::new(
                    "relay protocol message reached a worker whose recovery protocol is off",
                ));
            }
        }
        self.drain_effects(net, decisions, computed)
    }

    /// Applies and broadcasts decisions emitted by local hosts, ships
    /// completion notifications, and loops until quiescent.
    fn drain_effects(
        &mut self,
        net: &mut dyn Net,
        mut decisions: Vec<(u32, BlockId)>,
        mut computed: Vec<u32>,
    ) -> Result<(), RuntimeError> {
        loop {
            for pos in std::mem::take(&mut computed) {
                if self.machine == 0 {
                    self.barrier_completion(pos, net)?;
                } else {
                    net.send(0, Msg::BagComputed { pos }, 16);
                }
            }
            if decisions.is_empty() {
                return Ok(());
            }
            let mut new_decisions: Vec<(u32, BlockId)> = Vec::new();
            for (index, block) in std::mem::take(&mut decisions) {
                // Broadcast to every other control-flow manager... The
                // Decide span id is deterministic (step + machine only),
                // so every receiver can recompute and verify it.
                self.decisions_broadcast += 1;
                let parent = crate::obs::span::span_id(
                    index,
                    self.machine,
                    crate::obs::span::SpanKind::Decide,
                    0,
                );
                self.obs.record(
                    net,
                    OP_NONE,
                    EventKind::DecisionBroadcast { pos: index, block },
                );
                if !self.shared.config.faults.withhold_decisions {
                    let ctx = crate::obs::span::SpanCtx {
                        step: index,
                        parent,
                    };
                    for m in 0..self.shared.machines {
                        if m != self.machine {
                            net.send(m, Msg::Decision { index, block, ctx }, 16);
                        }
                    }
                }
                // ...and apply locally.
                self.pending_decisions.insert(index, block);
                self.advance(net, &mut new_decisions, &mut computed)?;
            }
            decisions = new_decisions;
        }
    }

    /// Extends the path through unconditional jumps and buffered decisions.
    fn advance(
        &mut self,
        net: &mut dyn Net,
        decisions: &mut Vec<(u32, BlockId)>,
        computed: &mut Vec<u32>,
    ) -> Result<(), RuntimeError> {
        loop {
            if self.path.is_empty() || self.path.exited() {
                return Ok(());
            }
            let last = self.path.get(self.path.len() - 1);
            let next = match &self.shared.graph.func.blocks[last as usize].term {
                Terminator::Jump(t) => *t,
                Terminator::Exit => {
                    self.path.mark_exited();
                    for hi in 0..self.hosts.len() {
                        let mut out = HostOut {
                            net,
                            decisions,
                            computed,
                            obs: &mut self.obs,
                        };
                        self.hosts[hi].on_exit(&self.path, &mut out)?;
                    }
                    return Ok(());
                }
                Terminator::Branch { .. } => {
                    match self.pending_decisions.remove(&self.path.len()) {
                        Some(t) => t,
                        None => return Ok(()), // wait for the condition node
                    }
                }
            };
            if self.path.len() >= self.shared.config.max_path_len {
                return Err(RuntimeError::new(format!(
                    "execution path exceeded {} blocks; non-terminating loop?",
                    self.shared.config.max_path_len
                )));
            }
            let pos = self.path.append(next);
            self.shared
                .telemetry
                .position(self.machine, next, self.path.len());
            self.obs
                .record(net, OP_NONE, EventKind::PathAppended { pos, block: next });
            self.notify_append(pos, next, net, decisions, computed)?;
            if self.barrier.is_some() {
                // Blocks without operators complete vacuously; let the
                // frontier pass them.
                self.barrier_advance(net)?;
            }
        }
    }

    fn notify_append(
        &mut self,
        pos: u32,
        block: BlockId,
        net: &mut dyn Net,
        decisions: &mut Vec<(u32, BlockId)>,
        computed: &mut Vec<u32>,
    ) -> Result<(), RuntimeError> {
        for hi in 0..self.hosts.len() {
            let mut out = HostOut {
                net,
                decisions,
                computed,
                obs: &mut self.obs,
            };
            self.hosts[hi].on_path_append(pos, block, &self.path, &mut out)?;
        }
        Ok(())
    }

    /// Barrier bookkeeping (machine 0, non-pipelined): counts completions
    /// per position and releases the frontier in order.
    fn barrier_completion(&mut self, pos: u32, net: &mut dyn Net) -> Result<(), RuntimeError> {
        let Some(barrier) = &mut self.barrier else {
            return Err(RuntimeError::new(
                "BagComputed received without a barrier (pipelined mode?)",
            ));
        };
        *barrier.completions.entry(pos).or_insert(0) += 1;
        self.barrier_advance(net)
    }

    /// Advances the barrier frontier over fully computed positions. Also
    /// called after the path extends, because a newly appended block with
    /// zero operators completes vacuously.
    fn barrier_advance(&mut self, net: &mut dyn Net) -> Result<(), RuntimeError> {
        let Some(barrier) = &mut self.barrier else {
            return Ok(());
        };
        // Advance the frontier over fully computed positions.
        let mut released = Vec::new();
        loop {
            let f = barrier.frontier;
            if f >= self.path.len() {
                break; // block at f not yet known
            }
            let block = self.path.get(f);
            let expected = barrier.expected_per_block[block as usize];
            let got = barrier.completions.get(&f).copied().unwrap_or(0);
            debug_assert!(got <= expected);
            if got < expected {
                break;
            }
            barrier.completions.remove(&f);
            barrier.frontier += 1;
            released.push(barrier.frontier);
        }
        for f in released {
            // Models the per-superstep synchronization overhead
            // (Flink's FLINK-3322 constant when emulating Flink).
            net.charge(self.shared.config.extra_step_overhead_ns);
            self.obs
                .record(net, OP_NONE, EventKind::StepReleased { pos: f });
            for m in 0..self.shared.machines {
                if m != self.machine {
                    net.send(m, Msg::Release { pos: f }, 16);
                }
            }
            // Local hosts learn synchronously.
            let mut decisions = Vec::new();
            let mut computed = Vec::new();
            for hi in 0..self.hosts.len() {
                let mut out = HostOut {
                    net,
                    decisions: &mut decisions,
                    computed: &mut computed,
                    obs: &mut self.obs,
                };
                self.hosts[hi].on_release(f, &self.path, &mut out)?;
            }
            self.drain_effects(net, decisions, computed)?;
        }
        Ok(())
    }

    /// Introspects this worker's control-flow state (and each blocked
    /// host's, via [`Host::stall_info`]) for the stall watchdog
    /// ([`crate::obs::watchdog::diagnose`]).
    pub fn stall_info(&self) -> crate::obs::watchdog::WorkerStall {
        let exited = self.path.exited();
        let depth = self.path.len();
        let current_block = if depth > 0 {
            self.path.get(depth - 1)
        } else {
            0
        };
        let awaiting_decision = if !exited && depth > 0 {
            match self.shared.graph.func.blocks[current_block as usize].term {
                Terminator::Branch { .. } if !self.pending_decisions.contains_key(&depth) => {
                    // Name the condition node that should have broadcast
                    // the decision for this conditional jump.
                    let cond = self
                        .shared
                        .graph
                        .nodes
                        .iter()
                        .find(|n| n.condition.is_some() && n.block == current_block)
                        .map(|n| n.name.to_string())
                        .unwrap_or_else(|| format!("<block {current_block} condition>"));
                    Some((depth, cond))
                }
                _ => None,
            }
        } else {
            None
        };
        crate::obs::watchdog::WorkerStall {
            machine: self.machine,
            exited,
            path_depth: depth,
            current_block,
            awaiting_decision,
            ops: self.hosts.iter().filter_map(Host::stall_info).collect(),
        }
    }
}
