//! The **bag operator host** (Sec. 5): wraps one physical operator instance
//! and implements the coordination logic from the operator's side —
//! output-bag scheduling, input-bag selection, element buffering and
//! separation by bag identifier, conditional-output sending, input-bag
//! garbage collection, loop pipelining, and loop-invariant hoisting.
//!
//! A host is a pure state machine: the worker feeds it path appends and
//! data/punctuation messages; it emits messages through [`HostOut`]. This
//! keeps it driver-agnostic (simulator or threads) and unit-testable.

use crate::graph::{EdgeId, NodeKind, OpId};
use crate::obs::mem::{elems_bytes, MemClass};
use crate::obs::{EventKind, InputRule, ObsBuf};
use crate::path::{ExecutionPath, SendDecision};
use crate::rt::{batch_wire_bytes, EngineShared, Msg, Net, RuntimeError, OUTPUT_PREFIX};
use crate::template::{
    self, HintStep, SelSlot, SelectionRecord, SendHint, SendStatus, TemplateCache,
};
use mitos_ir::kernel::{self, join_row};
use mitos_ir::BlockId;
use mitos_lang::expr::eval;
use mitos_lang::{Batch, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Sink for everything a host emits during one poke.
pub struct HostOut<'a> {
    /// Message transport (also the CPU-charge sink).
    pub net: &'a mut dyn Net,
    /// Control-flow decisions made by condition nodes (the worker applies
    /// them locally and broadcasts them).
    pub decisions: &'a mut Vec<(u32, BlockId)>,
    /// Path positions whose bag this host finished (non-pipelined mode).
    pub computed: &'a mut Vec<u32>,
    /// Observability recording buffer (no-op at [`crate::obs::ObsLevel::Off`]).
    pub obs: &'a mut ObsBuf,
}

/// One buffered input bag: elements received so far plus completion
/// tracking. Completion is robust to data/punctuation reordering: the bag is
/// complete when every sender's end-of-bag arrived *and* all announced
/// elements are here.
#[derive(Default)]
struct InBuf {
    elems: Vec<Value>,
    done_senders: u16,
    announced_total: u64,
}

impl InBuf {
    fn complete(&self, expected_senders: u16) -> bool {
        self.done_senders == expected_senders && self.elems.len() as u64 == self.announced_total
    }
}

/// Per-logical-input state: buffered bags keyed by bag-identifier length.
struct InputState {
    bufs: HashMap<u32, InBuf>,
    expected_senders: u16,
}

/// Operator-specific state for the active output bag.
enum OpState {
    Simple,
    Build(HashMap<Value, Vec<Value>>),
    CrossRight(Vec<Value>),
    Agg(HashMap<Value, Value>),
    Fold(Option<Value>),
    Distinct(HashSet<Value>),
}

/// State kept across output bags for loop-invariant hoisting (Sec. 5.3).
enum Kept {
    Join {
        bag_len: u32,
        table: HashMap<Value, Vec<Value>>,
    },
    Cross {
        bag_len: u32,
        right: Vec<Value>,
    },
}

/// Send state of one produced bag on one outgoing logical edge.
enum EdgeSend {
    /// Decided (or immediate): elements flow as produced; counts per
    /// destination instance accumulate for the end-of-bag punctuation.
    /// Produced elements coalesce in `pending` (per destination) until a
    /// full `cost.batch_elems` chunk is ready or the bag finalizes, so one
    /// network message carries one full batch regardless of how finely the
    /// producer's input happened to be chunked. Pending elements are not
    /// charged to the residency registry: they are in flight to the wire
    /// within the same step, exactly like the per-emit sends they replace.
    Streaming {
        counts: Vec<u32>,
        pending: Vec<Vec<Value>>,
        done_sent: bool,
    },
    /// Waiting for the path to prove the consumer will run (5.2.4).
    /// `opened_ns` (recorded only when observability is on) feeds the
    /// open→decision latency histogram. `hint` is a template-replay hint
    /// (the resolution slice recorded by an earlier traversal of the same
    /// path suffix): when present, the watcher verifies it incrementally
    /// instead of re-scanning, falling back to [`crate::path::PathRules::decide_send`]
    /// on divergence.
    Undecided {
        cursor: u32,
        buffer: Vec<Value>,
        opened_ns: u64,
        hint: Option<SendHint>,
    },
    /// The consumer will never select this bag.
    Dropped,
}

/// A produced (possibly still in-flight) output bag.
struct OutBag {
    edges: Vec<EdgeSend>,
    finalized: bool,
}

impl OutBag {
    fn retired(&self) -> bool {
        self.finalized
            && self.edges.iter().all(|e| match e {
                EdgeSend::Streaming { done_sent, .. } => *done_sent,
                EdgeSend::Dropped => true,
                EdgeSend::Undecided { .. } => false,
            })
    }
}

/// The output bag currently being computed.
struct Active {
    pos: u32,
    len: u32,
    /// Selected input bag length per logical input (`None` = unused Φ input).
    sel: Vec<Option<u32>>,
    /// Elements of each input already processed.
    consumed: Vec<usize>,
    /// Gating inputs not yet fully collected.
    gates_left: usize,
    /// Whether each gating input has been gate-processed.
    gate_done: Vec<bool>,
    /// Collected captured scalar values (indexed by captured slot).
    captured: Vec<Value>,
    state: OpState,
    write_name: Option<String>,
    /// Whether a source-like operator (Singleton/LiteralBag) has emitted.
    sources_emitted: bool,
    /// Elements read from disk by a read-headed fused chain, parked until
    /// every captured-scalar gate of the later stages is satisfied (the
    /// disk can finish before the scalars arrive).
    read_elems: Option<Vec<Value>>,
}

/// A bag operator host: one physical instance of one logical operator.
pub struct Host {
    shared: Arc<EngineShared>,
    op: OpId,
    inst: u16,
    n_inst: u16,
    /// The machine this instance is placed on (cached for telemetry).
    machine: u16,
    block: BlockId,
    kind: NodeKind,
    name: Arc<str>,
    condition: Option<crate::graph::CondInfo>,
    /// Edge ids feeding this node, ordered by input index.
    in_edges: Vec<EdgeId>,
    /// Outgoing edge ids.
    out_edge_ids: Vec<EdgeId>,
    /// Gating (collect-before-stream) flags per input.
    gating: Vec<bool>,
    /// Number of data inputs (captured scalars come after).
    data_arity: usize,
    pending_outputs: VecDeque<u32>,
    current: Option<Active>,
    inputs: Vec<InputState>,
    kept: Option<Kept>,
    outbags: HashMap<u32, OutBag>,
    /// Barrier watermark: positions `<= frontier` may start (non-pipelined).
    released_frontier: u32,
    /// Elements read from disk, waiting for the simulated I/O delay.
    pending_io: Option<Vec<Value>>,
    /// Statistics: total elements this instance emitted.
    pub emitted_elements: u64,
    /// Statistics: hoisting reuse hits.
    pub hoist_hits: u64,
    /// Execution-template cache (see [`crate::template`]); `None` when
    /// templates are disabled (config, kill switch, or decision
    /// withholding, whose whole point is perturbing the control plane).
    templates: Option<TemplateCache>,
    /// Bags whose conditional-send resolutions should be filled into a
    /// template: bag identifier length → template id. Entries are removed
    /// when the out-bag retires.
    recording_sends: HashMap<u32, u64>,
}

impl Host {
    /// Creates the host for instance `inst` of `op`.
    pub fn new(shared: Arc<EngineShared>, op: OpId, inst: u16) -> Host {
        let node = &shared.graph.nodes[op as usize];
        let n_inst = shared.graph.instances(op, shared.machines);
        let mut in_edges = vec![u32::MAX; node.inputs.len()];
        for (i, e) in shared.graph.edges.iter().enumerate() {
            if e.dst == op {
                in_edges[e.dst_input] = i as EdgeId;
            }
        }
        debug_assert!(in_edges.iter().all(|&e| e != u32::MAX));
        let out_edge_ids = shared.graph.out_edges[op as usize].clone();
        let gating = gating_flags(&node.kind, node.inputs.len());
        // The host's notion of arity: inputs below it are handled by
        // operator-specific gate/stream logic, the rest are captured
        // scalars. ReadFile's name is operator-specific even though it has
        // no data input in the planner's sense.
        let data_arity = match node.kind {
            NodeKind::Phi => node.inputs.len(),
            NodeKind::Singleton { .. } | NodeKind::LiteralBag { .. } => 0,
            NodeKind::ReadFile => 1,
            _ => node.kind.data_arity().min(node.inputs.len()),
        };
        let inputs = in_edges
            .iter()
            .map(|&e| InputState {
                bufs: HashMap::new(),
                expected_senders: shared.graph.senders_per_dst(e, shared.machines),
            })
            .collect();
        let released_frontier = if shared.config.pipelined { u32::MAX } else { 0 };
        let machine = shared.graph.placement(op, inst);
        let templates = (shared.config.templates
            && !template::templates_off()
            && !shared.config.faults.withhold_decisions)
            .then(TemplateCache::new);
        Host {
            block: node.block,
            kind: node.kind.clone(),
            name: node.name.clone(),
            condition: node.condition,
            shared,
            op,
            inst,
            n_inst,
            machine,
            in_edges,
            out_edge_ids,
            gating,
            data_arity,
            pending_outputs: VecDeque::new(),
            current: None,
            inputs,
            kept: None,
            outbags: HashMap::new(),
            released_frontier,
            pending_io: None,
            emitted_elements: 0,
            hoist_hits: 0,
            templates,
            recording_sends: HashMap::new(),
        }
    }

    /// The logical operator this host runs.
    pub fn op(&self) -> OpId {
        self.op
    }

    /// Bag starts whose control-plane decisions were replayed from a
    /// template (0 when templates are disabled).
    pub fn template_hits(&self) -> u64 {
        self.templates.as_ref().map_or(0, |c| c.hits)
    }

    /// Bag starts that took the slow path and recorded a template.
    pub fn template_misses(&self) -> u64 {
        self.templates.as_ref().map_or(0, |c| c.misses)
    }

    /// Template replay fallbacks (send-hint divergence, hoist mismatch).
    pub fn template_invalidations(&self) -> u64 {
        self.templates.as_ref().map_or(0, |c| c.invalidations)
    }

    /// The path gained block `block` at position `pos`.
    pub fn on_path_append(
        &mut self,
        pos: u32,
        block: BlockId,
        path: &ExecutionPath,
        out: &mut HostOut,
    ) -> Result<(), RuntimeError> {
        if block == self.block {
            self.pending_outputs.push_back(pos);
        }
        self.advance_watchers(path, out)?;
        self.progress(path, out)
    }

    /// The path will never be extended again.
    pub fn on_exit(&mut self, path: &ExecutionPath, out: &mut HostOut) -> Result<(), RuntimeError> {
        self.advance_watchers(path, out)?;
        self.progress(path, out)
    }

    /// The barrier released positions up to `pos` (non-pipelined mode).
    pub fn on_release(
        &mut self,
        pos: u32,
        path: &ExecutionPath,
        out: &mut HostOut,
    ) -> Result<(), RuntimeError> {
        self.released_frontier = self.released_frontier.max(pos);
        self.progress(path, out)
    }

    /// Data arrived on an input edge. Residency accounting stays on the
    /// in-memory [`Batch::estimated_bytes`] estimate (identical to the row
    /// buffer's [`elems_bytes`]); only wire accounting uses encoded sizes.
    pub fn on_data(
        &mut self,
        edge: EdgeId,
        bag_len: u32,
        batch: Batch,
        path: &ExecutionPath,
        out: &mut HostOut,
    ) -> Result<(), RuntimeError> {
        let input = self.shared.graph.edges[edge as usize].dst_input;
        let is_new = !self.inputs[input].bufs.contains_key(&bag_len);
        self.shared.mem.charge(
            MemClass::AwaitingInputs,
            self.machine,
            self.op,
            is_new as u64,
            batch.len() as u64,
            batch.estimated_bytes(),
        );
        let buf = self.inputs[input].bufs.entry(bag_len).or_default();
        buf.elems.extend(batch.into_values());
        self.poke(path, out)
    }

    /// End-of-bag punctuation arrived on an input edge.
    pub fn on_done(
        &mut self,
        edge: EdgeId,
        bag_len: u32,
        count: u32,
        path: &ExecutionPath,
        out: &mut HostOut,
    ) -> Result<(), RuntimeError> {
        let input = self.shared.graph.edges[edge as usize].dst_input;
        let expected = self.inputs[input].expected_senders;
        if !self.inputs[input].bufs.contains_key(&bag_len) {
            // Punctuation can open the buffer before any data: one live
            // (still-empty) bag becomes resident.
            self.shared
                .mem
                .charge(MemClass::AwaitingInputs, self.machine, self.op, 1, 0, 0);
        }
        let buf = self.inputs[input].bufs.entry(bag_len).or_default();
        buf.done_senders += 1;
        buf.announced_total += count as u64;
        if buf.done_senders > expected {
            let got = buf.done_senders;
            return Err(RuntimeError::new(format!(
                "input {input} of `{}` got {got} end-of-bag punctuations for \
                 bag len {bag_len}, expected {expected}",
                self.name
            )));
        }
        self.poke(path, out)
    }

    /// The simulated disk finished a read for this host.
    pub fn on_io_done(
        &mut self,
        path: &ExecutionPath,
        out: &mut HostOut,
    ) -> Result<(), RuntimeError> {
        let elems = self
            .pending_io
            .take()
            .ok_or_else(|| RuntimeError::new("IoDone without a pending read".to_string()))?;
        let bag_len = {
            let active = self
                .current
                .as_mut()
                .ok_or_else(|| RuntimeError::new("IoDone without an active bag".to_string()))?;
            active.gate_done[0] = true;
            active.gates_left -= 1;
            active.len
        };
        out.obs.record(
            out.net,
            self.op,
            EventKind::IoFinished {
                bag_len,
                count: elems.len() as u64,
            },
        );
        if matches!(self.kind, NodeKind::Fused { .. }) {
            // A read-headed fused chain parks the raw elements until every
            // later stage's captured-scalar gate is satisfied; they flow
            // through the chain in `emit_sources`.
            self.current.as_mut().expect("active").read_elems = Some(elems);
        } else {
            self.emit_all(elems, out)?;
        }
        self.poke(path, out)
    }

    /// Whether this host has nothing scheduled and nothing in flight
    /// (termination detection for the threaded driver).
    pub fn idle(&self) -> bool {
        self.current.is_none() && self.pending_outputs.is_empty() && self.outbags.is_empty()
    }

    /// Introspects a non-idle host for the stall watchdog: what the active
    /// bag is waiting for (first unsatisfied input, barrier release, or a
    /// disk read) and which conditional-send watchers are still pending.
    /// Returns [`None`] when the host is idle.
    pub fn stall_info(&self) -> Option<crate::obs::watchdog::OpStall> {
        use crate::obs::watchdog::{Awaited, OpStall};
        if self.idle() {
            return None;
        }
        let mut pending_watchers: Vec<(EdgeId, u32)> = Vec::new();
        for (&len, bag) in &self.outbags {
            for (ei, e) in bag.edges.iter().enumerate() {
                if matches!(e, EdgeSend::Undecided { .. }) {
                    pending_watchers.push((self.out_edge_ids[ei], len));
                }
            }
        }
        pending_watchers.sort_unstable();
        let awaited = if self.pending_io.is_some() {
            Some(Awaited::DiskRead)
        } else if let Some(active) = &self.current {
            let mut found = None;
            for (i, sel) in active.sel.iter().enumerate() {
                let Some(sel_len) = *sel else { continue };
                let st = &self.inputs[i];
                let (received, announced, done_senders) = match st.bufs.get(&sel_len) {
                    Some(b) => (b.elems.len() as u64, b.announced_total, b.done_senders),
                    None => (0, 0, 0),
                };
                let satisfied = if self.gating[i] {
                    active.gate_done[i]
                } else {
                    done_senders == st.expected_senders
                        && received == announced
                        && active.consumed[i] as u64 == received
                };
                if !satisfied {
                    found = Some(Awaited::InputBag {
                        input: i as u32,
                        edge: self.in_edges[i],
                        bag_len: sel_len,
                        received,
                        announced,
                        done_senders,
                        expected_senders: st.expected_senders,
                    });
                    break;
                }
            }
            found
        } else if let Some(&pos) = self.pending_outputs.front() {
            (!self.shared.config.pipelined && pos > self.released_frontier)
                .then_some(Awaited::BarrierRelease { pos })
        } else {
            None
        };
        Some(OpStall {
            op: self.op,
            name: self.name.to_string(),
            block: self.block,
            bag_len: self.current.as_ref().map(|a| a.len),
            awaited,
            pending_watchers,
        })
    }

    fn poke(&mut self, path: &ExecutionPath, out: &mut HostOut) -> Result<(), RuntimeError> {
        self.progress(path, out)
    }

    // --- Memory accounting ------------------------------------------------

    /// Garbage-collects buffered input bags with identifier length below
    /// `keep`, crediting the freed residency. An associated function so
    /// call sites can hold a mutable borrow of one input while reading the
    /// registry.
    fn gc_input(
        state: &mut InputState,
        keep: u32,
        mem: &crate::obs::mem::MemRegistry,
        machine: u16,
        op: OpId,
    ) {
        let (mut bags, mut elems, mut bytes) = (0u64, 0u64, 0u64);
        state.bufs.retain(|&l, b| {
            if l >= keep {
                true
            } else {
                bags += 1;
                elems += b.elems.len() as u64;
                bytes += elems_bytes(&b.elems);
                false
            }
        });
        if bags > 0 {
            mem.credit(MemClass::AwaitingInputs, machine, op, bags, elems, bytes);
        }
    }

    /// Approximate residency of a hoist-cache entry: `(elements, bytes)`.
    fn kept_cost(kept: &Kept) -> (u64, u64) {
        match kept {
            Kept::Join { table, .. } => {
                let (mut elems, mut bytes) = (0u64, 0u64);
                for (k, vs) in table {
                    elems += vs.len() as u64;
                    bytes += k.estimated_bytes() + elems_bytes(vs);
                }
                (elems, bytes)
            }
            Kept::Cross { right, .. } => (right.len() as u64, elems_bytes(right)),
        }
    }

    /// Credits a hoist-cache entry leaving the cache (reused into an active
    /// bag, or invalidated by a changed input selection).
    fn credit_kept(&self, kept: &Kept) {
        let (elems, bytes) = Self::kept_cost(kept);
        self.shared
            .mem
            .credit(MemClass::HoistCache, self.machine, self.op, 1, elems, bytes);
    }

    /// End-of-run input-buffer GC: once the path has exited and this host
    /// is fully idle, no future occurrence can select a buffered input bag
    /// (selection candidates only come from path appends), so everything
    /// still buffered — kept during the run for potential re-selection — is
    /// released. Late in-flight arrivals re-enter via `poke`, which runs
    /// the sweep again.
    fn exit_gc(&mut self) {
        for state in &mut self.inputs {
            let (mut bags, mut elems, mut bytes) = (0u64, 0u64, 0u64);
            for b in state.bufs.values() {
                bags += 1;
                elems += b.elems.len() as u64;
                bytes += elems_bytes(&b.elems);
            }
            if bags > 0 {
                state.bufs.clear();
                self.shared.mem.credit(
                    MemClass::AwaitingInputs,
                    self.machine,
                    self.op,
                    bags,
                    elems,
                    bytes,
                );
            }
        }
    }

    // --- Scheduling -------------------------------------------------------

    /// Works through pending output bags as far as data allows, then (when
    /// the run is over for this host) sweeps the input buffers.
    fn progress(&mut self, path: &ExecutionPath, out: &mut HostOut) -> Result<(), RuntimeError> {
        self.progress_inner(path, out)?;
        if path.exited() && self.idle() {
            self.exit_gc();
        }
        Ok(())
    }

    /// Works through pending output bags as far as data allows.
    fn progress_inner(
        &mut self,
        path: &ExecutionPath,
        out: &mut HostOut,
    ) -> Result<(), RuntimeError> {
        loop {
            if self.current.is_none() {
                let Some(&pos) = self.pending_outputs.front() else {
                    return Ok(());
                };
                if !self.shared.config.pipelined && pos > self.released_frontier {
                    return Ok(()); // superstep barrier
                }
                self.pending_outputs.pop_front();
                self.start_bag(pos, path, out)?;
                // The path may already extend past this occurrence
                // (pipelining): resolve what can be resolved right away.
                self.advance_watchers(path, out)?;
            }
            // Feed the active bag from whatever is buffered: first satisfy
            // gates, then emit sources, then drain streams.
            let n = self.inputs.len();
            for i in 0..n {
                self.try_gate(i, out)?;
            }
            if self.active_ready_to_stream() {
                if !self.current.as_ref().expect("active").sources_emitted {
                    self.current.as_mut().expect("active").sources_emitted = true;
                    self.emit_sources(out)?;
                }
                for i in 0..n {
                    if !self.gating[i] {
                        self.drain_stream(i, out)?;
                    }
                }
            }
            if !self.try_finalize(path, out)? {
                return Ok(());
            }
        }
    }

    fn active_ready_to_stream(&self) -> bool {
        self.current.as_ref().is_some_and(|a| a.gates_left == 0)
    }

    /// Starts the output bag for the occurrence at `pos`: selects input
    /// bags (5.2.3), garbage-collects superseded buffers, consults the
    /// hoisting cache, and initializes operator state.
    ///
    /// Stream-order invariant: `BagOpened` is recorded *before* any of
    /// this bag's `InputSelected`/`HoistHit` events, and the bag's
    /// `BagFinalized` after all of them — the span layer
    /// ([`crate::obs::span`]) associates those children with "the bag
    /// this `(machine, op)` has open right now", so the per-machine
    /// record order is load-bearing. (`SendResolved` is exempt: a
    /// conditional send may resolve after the bag closed, so it carries
    /// its own bag identifier instead.)
    fn start_bag(
        &mut self,
        pos: u32,
        path: &ExecutionPath,
        out: &mut HostOut,
    ) -> Result<(), RuntimeError> {
        let len = pos + 1;
        self.shared.telemetry.bag_started(self.machine, self.op);
        out.obs
            .record(out.net, self.op, EventKind::BagOpened { pos, bag_len: len });
        let is_phi = matches!(self.kind, NodeKind::Phi);
        let n_inputs = self.in_edges.len();
        let mut sel: Vec<Option<u32>> = Vec::with_capacity(n_inputs);
        // Template lookup: a cached traversal of the same path suffix
        // replays the recorded selections in O(window) instead of
        // re-scanning the path — emitting the identical events and running
        // the identical GC, so results cannot differ (see
        // [`crate::template`] for the window soundness argument).
        let replay = self
            .templates
            .as_mut()
            .and_then(|c| c.lookup(path.blocks(), len))
            .map(|t| {
                let hints: Vec<Option<SendHint>> = t
                    .sends
                    .iter()
                    .map(|s| match s {
                        SendStatus::Recorded { slice, sent } => Some(SendHint {
                            slice: slice.clone(),
                            sent: *sent,
                            verified: 0,
                        }),
                        _ => None,
                    })
                    .collect();
                (
                    t.id,
                    t.selection.phi_winner,
                    t.selection.inputs.clone(),
                    hints,
                )
            });
        if self.templates.is_some() {
            self.shared.telemetry.template_lookup(replay.is_some());
        }
        let mut template_id = None;
        let mut send_hints: Vec<Option<SendHint>> = Vec::new();
        // Selection data collected on the slow path for recording.
        let mut rec_phi: Option<(usize, u32)> = None;
        let mut rec_inputs: Vec<SelSlot> = Vec::new();
        if let Some((id, phi_winner, slots, hints)) = replay {
            template_id = Some(id);
            send_hints = hints;
            // One suffix-key comparison replaces every selection scan.
            out.net.charge(self.shared.config.cost.replay_cost());
            if is_phi {
                let (win_idx, delta) = phi_winner.expect("phi template records a winner");
                let win_len = len - delta;
                for i in 0..n_inputs {
                    sel.push((i == win_idx).then_some(win_len));
                }
                if out.obs.enabled() {
                    out.obs.record(
                        out.net,
                        self.op,
                        EventKind::InputSelected {
                            edge: self.in_edges[win_idx],
                            bag_len: win_len,
                            rule: InputRule::PhiLatest,
                        },
                    );
                }
                for state in &mut self.inputs {
                    Self::gc_input(state, win_len, &self.shared.mem, self.machine, self.op);
                }
            } else {
                for (i, &e) in self.in_edges.iter().enumerate() {
                    let l = slots[i].selected(len);
                    if out.obs.enabled() {
                        let r = &self.shared.rules.edges[e as usize];
                        let rule =
                            if r.src_block == r.dst_block && r.src_stmt < r.dst_stmt && l == len {
                                InputRule::SameBlock
                            } else {
                                InputRule::LatestOccurrence
                            };
                        out.obs.record(
                            out.net,
                            self.op,
                            EventKind::InputSelected {
                                edge: e,
                                bag_len: l,
                                rule,
                            },
                        );
                    }
                    sel.push(Some(l));
                }
                for (i, state) in self.inputs.iter_mut().enumerate() {
                    if let Some(keep) = sel[i] {
                        Self::gc_input(state, keep, &self.shared.mem, self.machine, self.op);
                    }
                }
            }
        } else if is_phi {
            // Φ choice: the input whose producing block occurred latest.
            let mut best: Option<(u32, usize)> = None;
            let mut candidates = Vec::with_capacity(n_inputs);
            for (i, &e) in self.in_edges.iter().enumerate() {
                let c = self.shared.rules.select_input_len(e, path, pos);
                // The backward scan walked from this occurrence down to the
                // candidate's producer (or the whole prefix on a miss).
                out.net.charge(
                    self.shared
                        .config
                        .cost
                        .scan_cost(u64::from(c.map_or(len, |l| len - l + 1))),
                );
                if let Some(l) = c {
                    match best {
                        Some((bl, _)) if bl >= l => {}
                        _ => best = Some((l, i)),
                    }
                }
                candidates.push(c);
            }
            let (win_len, win_idx) = best.ok_or_else(|| {
                RuntimeError::new(format!(
                    "phi `{}` has no available input at path position {pos}",
                    self.name
                ))
            })?;
            rec_phi = Some((win_idx, len - win_len));
            for (i, c) in candidates.iter().enumerate() {
                sel.push(if i == win_idx { *c } else { None });
            }
            if out.obs.enabled() {
                out.obs.record(
                    out.net,
                    self.op,
                    EventKind::InputSelected {
                        edge: self.in_edges[win_idx],
                        bag_len: win_len,
                        rule: InputRule::PhiLatest,
                    },
                );
            }
            // GC: buffered bags older than the winner can never be selected
            // again (candidate prefixes grow monotonically).
            for state in &mut self.inputs {
                Self::gc_input(state, win_len, &self.shared.mem, self.machine, self.op);
            }
        } else {
            for (i, &e) in self.in_edges.iter().enumerate() {
                let l = self
                    .shared
                    .rules
                    .select_input_len(e, path, pos)
                    .ok_or_else(|| {
                        RuntimeError::new(format!(
                            "input {i} of `{}` has no producer occurrence before \
                             path position {pos} (invalid SSA?)",
                            self.name
                        ))
                    })?;
                // The backward scan examined every block between this
                // occurrence and the selected producer occurrence.
                out.net
                    .charge(self.shared.config.cost.scan_cost(u64::from(len - l + 1)));
                // Loop-invariant producers (block in no loop → at most one
                // occurrence per run) record their selection absolutely;
                // everything else records a window-bounded delta.
                let delta = len - l;
                rec_inputs.push(
                    if (delta as usize) > template::WINDOW
                        && self.shared.rules.edges[e as usize].once
                    {
                        SelSlot::Absolute(l)
                    } else {
                        SelSlot::Delta(delta)
                    },
                );
                if out.obs.enabled() {
                    // Which prefix rule fired (5.2.3): a same-block producer
                    // earlier in this very occurrence, or the latest earlier
                    // occurrence of the producing block.
                    let r = &self.shared.rules.edges[e as usize];
                    let rule = if r.src_block == r.dst_block && r.src_stmt < r.dst_stmt && l == len
                    {
                        InputRule::SameBlock
                    } else {
                        InputRule::LatestOccurrence
                    };
                    out.obs.record(
                        out.net,
                        self.op,
                        EventKind::InputSelected {
                            edge: e,
                            bag_len: l,
                            rule,
                        },
                    );
                }
                sel.push(Some(l));
            }
            for (i, state) in self.inputs.iter_mut().enumerate() {
                if let Some(keep) = sel[i] {
                    Self::gc_input(state, keep, &self.shared.mem, self.machine, self.op);
                }
            }
        }

        // Loop-invariant hoisting: reuse kept build state if the hoisted
        // input's selected bag is unchanged (Sec. 5.3).
        let mut state = init_state(&self.kind);
        let mut reused = false;
        if self.shared.config.hoisting {
            match (&self.kind, &self.kept) {
                (NodeKind::Join, Some(Kept::Join { bag_len, .. })) if sel[0] == Some(*bag_len) => {
                    if let Some(k) = self.kept.take() {
                        // The cached table moves into the active bag's
                        // operator state: cache residency becomes working
                        // state (re-charged as cache at finalize).
                        self.credit_kept(&k);
                        if let Kept::Join { table, .. } = k {
                            state = OpState::Build(table);
                            reused = true;
                        }
                    }
                }
                (NodeKind::Cross, Some(Kept::Cross { bag_len, .. }))
                    if sel[1] == Some(*bag_len) =>
                {
                    if let Some(k) = self.kept.take() {
                        self.credit_kept(&k);
                        if let Kept::Cross { right, .. } = k {
                            state = OpState::CrossRight(right);
                            reused = true;
                        }
                    }
                }
                _ => {}
            }
        }
        if reused {
            self.hoist_hits += 1;
            if out.obs.enabled() {
                let hoist_len = match self.kind {
                    NodeKind::Join => sel[0],
                    _ => sel[1],
                };
                out.obs.record(
                    out.net,
                    self.op,
                    EventKind::HoistHit {
                        pos,
                        bag_len: hoist_len.unwrap_or(0),
                    },
                );
            }
        } else if matches!(self.kind, NodeKind::Join | NodeKind::Cross) {
            if let Some(k) = self.kept.take() {
                self.credit_kept(&k); // invalidated: the selection changed
            }
        }

        // Record the slow-path traversal as a template, or — on replay —
        // reconcile the recorded hoist verdict with the live recomputation
        // (the hoist cache's contents are not path-determined, so replay
        // always trusts the live O(1) check; a disagreement counts as an
        // invalidation).
        let n_out_edges = self.out_edge_ids.len();
        if let Some(cache) = self.templates.as_mut() {
            match template_id {
                Some(id) => {
                    if cache.note_hoist(id, reused) {
                        self.shared.telemetry.template_invalidated();
                    }
                }
                None => {
                    template_id = cache.record(
                        path.blocks(),
                        len,
                        SelectionRecord {
                            phi_winner: rec_phi,
                            inputs: rec_inputs,
                            hoist_hit: reused,
                        },
                        n_out_edges,
                    );
                }
            }
        }

        // Gating bookkeeping; a reused hoisted input's gate is pre-satisfied.
        let hoist_input = match self.kind {
            NodeKind::Join => Some(0),
            NodeKind::Cross => Some(1),
            _ => None,
        };
        let mut gates_left = 0;
        let mut gate_done = vec![false; n_inputs];
        for (i, &g) in self.gating.iter().enumerate() {
            if !g || sel[i].is_none() || (reused && hoist_input == Some(i)) {
                gate_done[i] = true;
            } else {
                gates_left += 1;
            }
        }

        let n_captured = n_inputs.saturating_sub(self.data_arity);
        self.current = Some(Active {
            pos,
            len,
            sel,
            consumed: vec![0; n_inputs],
            gates_left,
            gate_done,
            captured: vec![Value::Unit; n_captured],
            state,
            write_name: None,
            sources_emitted: false,
            read_elems: None,
        });

        // Register the out-bag with per-edge send decisions.
        let mut edges = Vec::with_capacity(self.out_edge_ids.len());
        for (ei, &e) in self.out_edge_ids.iter().enumerate() {
            if self.shared.rules.edges[e as usize].immediate {
                let dst = self.shared.graph.edges[e as usize].dst;
                let dst_n = self.shared.graph.instances(dst, self.shared.machines);
                edges.push(EdgeSend::Streaming {
                    counts: vec![0; dst_n as usize],
                    pending: vec![Vec::new(); dst_n as usize],
                    done_sent: false,
                });
            } else {
                // The clock is only consulted when tracing records latency.
                let opened_ns = if out.obs.tracing() {
                    out.net.now_ns()
                } else {
                    0
                };
                // One conditionally-sent bag is now resident until the path
                // proves (or refutes) that its consumer runs.
                self.shared
                    .mem
                    .charge(MemClass::AwaitingBarrier, self.machine, self.op, 1, 0, 0);
                edges.push(EdgeSend::Undecided {
                    cursor: len,
                    buffer: Vec::new(),
                    opened_ns,
                    hint: send_hints.get(ei).and_then(Clone::clone),
                });
            }
        }
        self.outbags.insert(
            len,
            OutBag {
                edges,
                finalized: false,
            },
        );
        // Slow-path send resolutions of this bag fill into its template
        // (a hit traversal can also fill entries still unrecorded).
        if let Some(id) = template_id {
            self.recording_sends.insert(len, id);
        }
        Ok(())
    }

    // --- Input consumption ------------------------------------------------

    /// Gate-processes input `i` if it is a still-pending gate whose selected
    /// bag is complete.
    fn try_gate(&mut self, input: usize, out: &mut HostOut) -> Result<(), RuntimeError> {
        let Some(active) = &self.current else {
            return Ok(());
        };
        if !self.gating[input] || active.gate_done[input] {
            return Ok(());
        }
        let Some(sel_len) = active.sel[input] else {
            return Ok(());
        };
        let expected = self.inputs[input].expected_senders;
        let complete = self.inputs[input]
            .bufs
            .get(&sel_len)
            .is_some_and(|b| b.complete(expected));
        if !complete {
            return Ok(());
        }
        if self.pending_io.is_some() {
            return Ok(()); // disk read already in flight for this gate
        }
        self.process_gate(input, sel_len, out)
    }

    /// Consumes a completed gating input.
    fn process_gate(
        &mut self,
        input: usize,
        sel_len: u32,
        out: &mut HostOut,
    ) -> Result<(), RuntimeError> {
        let cost = self.shared.config.cost;
        // Pull out what we need from the buffer without holding borrows.
        let (single, count) = {
            let buf = self.inputs[input].bufs.get(&sel_len).expect("gate buffer");
            (buf.elems.first().cloned(), buf.elems.len())
        };
        if input >= self.data_arity {
            // Captured scalar: exactly one element.
            if count != 1 {
                return Err(RuntimeError::new(format!(
                    "captured scalar input {input} of `{}` holds {count} elements",
                    self.name
                )));
            }
            let slot = input - self.data_arity;
            let active = self.current.as_mut().expect("active");
            active.captured[slot] = single.expect("one element");
            active.gate_done[input] = true;
            active.gates_left -= 1;
            return Ok(());
        }
        // The file-name gate of a plain readFile or a read-headed fused
        // chain kicks off the asynchronous partition read; the gate is
        // marked done when the simulated disk answers (`on_io_done`).
        let read_gate = input == 0
            && match &self.kind {
                NodeKind::ReadFile => true,
                NodeKind::Fused { stages } => matches!(stages[0].kind, NodeKind::ReadFile),
                _ => false,
            };
        if read_gate {
            if count != 1 {
                return Err(RuntimeError::new(format!(
                    "file name bag for `{}` holds {count} elements",
                    self.name
                )));
            }
            let v = single.expect("one element");
            let name = v
                .as_str()
                .ok_or_else(|| {
                    RuntimeError::new(format!(
                        "file name for `{}` must be a string, got {v:?}",
                        self.name
                    ))
                })?
                .to_string();
            let (part, parts) = (self.inst as usize, self.n_inst as usize);
            let elems = self
                .shared
                .fs
                .read_partition(&name, part, parts)
                .map_err(|e| RuntimeError::new(e.to_string()))?;
            let bytes = self
                .shared
                .fs
                .partition_bytes(&name, part, parts)
                .unwrap_or(0);
            // Disk I/O proceeds asynchronously: the CPU pays only a
            // deserialization share now; the data arrives after the
            // disk delay (loop pipelining overlaps this with compute
            // from other iteration steps).
            out.net.charge(cost.elem_cost(elems.len()) / 4);
            let delay = cost.io_cost(bytes);
            debug_assert!(self.pending_io.is_none(), "one read at a time");
            self.pending_io = Some(elems);
            let machine = self.machine;
            out.obs.record(
                out.net,
                self.op,
                EventKind::IoStarted {
                    bag_len: self.current.as_ref().expect("active").len,
                    delay_ns: delay,
                },
            );
            out.net
                .schedule(delay, machine, Msg::IoDone { op: self.op });
            return Ok(());
        }
        match (&self.kind, input) {
            (NodeKind::WriteFile, 1) => {
                if count != 1 {
                    return Err(RuntimeError::new(format!(
                        "file name bag for `{}` holds {count} elements",
                        self.name
                    )));
                }
                let v = single.expect("one element");
                let name = v
                    .as_str()
                    .ok_or_else(|| {
                        RuntimeError::new(format!(
                            "file name for `{}` must be a string, got {v:?}",
                            self.name
                        ))
                    })?
                    .to_string();
                out.net.charge(cost.io.open_latency_ns);
                let active = self.current.as_mut().expect("active");
                active.write_name = Some(name);
            }
            (NodeKind::Join, 0) => {
                let elems = {
                    let buf = self.inputs[input].bufs.get(&sel_len).expect("gate buffer");
                    buf.elems.clone()
                };
                out.net.charge(cost.insert_cost(elems.len()));
                let mut table: HashMap<Value, Vec<Value>> = HashMap::with_capacity(elems.len());
                for v in elems {
                    table.entry(v.key().clone()).or_default().push(v);
                }
                let active = self.current.as_mut().expect("active");
                active.state = OpState::Build(table);
            }
            (NodeKind::Cross, 1) => {
                let elems = {
                    let buf = self.inputs[input].bufs.get(&sel_len).expect("gate buffer");
                    buf.elems.clone()
                };
                out.net.charge(cost.elem_cost(elems.len()));
                let active = self.current.as_mut().expect("active");
                active.state = OpState::CrossRight(elems);
            }
            (kind, input) => {
                return Err(RuntimeError::new(format!(
                    "unexpected gating input {input} for {}",
                    kind.mnemonic()
                )))
            }
        }
        let active = self.current.as_mut().expect("active");
        active.gate_done[input] = true;
        active.gates_left -= 1;
        Ok(())
    }

    /// Emits the output of source-like operators (Singleton, LiteralBag)
    /// once all captured values are in; announces condition decisions.
    fn emit_sources(&mut self, out: &mut HostOut) -> Result<(), RuntimeError> {
        let cost = self.shared.config.cost;
        match self.kind.clone() {
            NodeKind::Singleton { expr } => {
                let (captured, len) = {
                    let a = self.current.as_ref().expect("active");
                    (a.captured.clone(), a.len)
                };
                out.net.charge(cost.eval_cost(expr.node_count(), 1));
                let v = eval(&expr, &captured).map_err(|e| RuntimeError::new(e.message))?;
                if let Some(ci) = self.condition {
                    let b = v.as_bool().ok_or_else(|| {
                        RuntimeError::new(format!(
                            "condition `{}` evaluated to non-bool {v:?}",
                            self.name
                        ))
                    })?;
                    let target = if b { ci.then_blk } else { ci.else_blk };
                    out.decisions.push((len, target));
                }
                self.emit_all(vec![v], out)?;
            }
            NodeKind::LiteralBag { elems } => {
                let captured = self.current.as_ref().expect("active").captured.clone();
                let mut vals = Vec::with_capacity(elems.len());
                for e in &elems {
                    out.net.charge(cost.eval_cost(e.node_count(), 1));
                    vals.push(eval(e, &captured).map_err(|e| RuntimeError::new(e.message))?);
                }
                self.emit_all(vals, out)?;
            }
            NodeKind::Fused { .. } => {
                // Read-headed chain: the parked disk elements run through
                // every stage in one pass, now that all gates are in.
                if let Some(elems) = self.current.as_mut().expect("active").read_elems.take() {
                    let outv = self
                        .fused_transform(Batch::from_values(elems), out)?
                        .into_values();
                    self.emit_all(outv, out)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Runs a batch through every stage of a fused chain in one pass,
    /// batch-in/batch-out: each element-wise stage is the shared columnar
    /// kernel ([`kernel::map`] / [`kernel::flat_map`] / [`kernel::filter`]),
    /// so monomorphic runs stream through without per-element enum
    /// dispatch. The per-element traversal base is charged once for the
    /// whole chain (that is fusion's compute win); each stage then pays
    /// only for its own lambda.
    fn fused_transform(
        &mut self,
        mut batch: Batch,
        out: &mut HostOut,
    ) -> Result<Batch, RuntimeError> {
        let NodeKind::Fused { stages } = self.kind.clone() else {
            return Err(RuntimeError::new(
                "fused_transform on non-fused".to_string(),
            ));
        };
        let cost = self.shared.config.cost;
        let captured = self.current.as_ref().expect("active").captured.clone();
        out.net.charge(cost.elem_cost(batch.len()));
        let mut cap_off = 0usize;
        for stage in stages.iter() {
            let caps = &captured[cap_off..cap_off + stage.captured];
            cap_off += stage.captured;
            if batch.is_empty() {
                continue;
            }
            match &stage.kind {
                // The source stage: its elements are already in `batch`.
                NodeKind::ReadFile => {}
                NodeKind::Map { expr } => {
                    out.net
                        .charge(cost.fused_expr_cost(expr.node_count(), batch.len()));
                    batch = kernel::map(expr, caps, &batch)
                        .map_err(|e| RuntimeError::new(e.message))?;
                }
                NodeKind::FlatMap { expr } => {
                    out.net
                        .charge(cost.fused_expr_cost(expr.node_count(), batch.len()));
                    batch = kernel::flat_map(expr, caps, &batch)
                        .map_err(|e| RuntimeError::new(e.message))?;
                }
                NodeKind::Filter { expr } => {
                    out.net
                        .charge(cost.fused_expr_cost(expr.node_count(), batch.len()));
                    batch = kernel::filter(expr, caps, &batch)
                        .map_err(|e| RuntimeError::new(e.message))?;
                }
                NodeKind::Alias | NodeKind::Phi => {}
                other => {
                    return Err(RuntimeError::new(format!(
                        "operator {} cannot be a fused stage",
                        other.mnemonic()
                    )))
                }
            }
        }
        Ok(batch)
    }

    /// Processes all unconsumed elements of a stream input.
    fn drain_stream(&mut self, input: usize, out: &mut HostOut) -> Result<(), RuntimeError> {
        let (sel_len, start) = {
            let active = self.current.as_ref().expect("active");
            let Some(sel_len) = active.sel[input] else {
                return Ok(());
            };
            (sel_len, active.consumed[input])
        };
        let elems: Vec<Value> = {
            let Some(buf) = self.inputs[input].bufs.get(&sel_len) else {
                return Ok(());
            };
            if start >= buf.elems.len() {
                return Ok(());
            }
            buf.elems[start..].to_vec()
        };
        self.current.as_mut().expect("active").consumed[input] = start + elems.len();
        self.process_stream(input, elems, out)
    }

    fn process_stream(
        &mut self,
        input: usize,
        elems: Vec<Value>,
        out: &mut HostOut,
    ) -> Result<(), RuntimeError> {
        let kind = self.kind.clone();
        let cost = self.shared.config.cost;
        let captured = self.current.as_ref().expect("active").captured.clone();
        match &kind {
            // The element-wise transforms run through the shared columnar
            // kernels: one layout dispatch per run instead of one enum
            // inspection per element.
            NodeKind::Map { expr } => {
                out.net
                    .charge(cost.eval_cost(expr.node_count(), elems.len()));
                let outv = kernel::map(expr, &captured, &Batch::from_values(elems))
                    .map_err(|e| RuntimeError::new(e.message))?;
                self.emit_all(outv.into_values(), out)?;
            }
            NodeKind::FlatMap { expr } => {
                out.net
                    .charge(cost.eval_cost(expr.node_count(), elems.len()));
                let outv = kernel::flat_map(expr, &captured, &Batch::from_values(elems))
                    .map_err(|e| RuntimeError::new(e.message))?;
                self.emit_all(outv.into_values(), out)?;
            }
            NodeKind::Filter { expr } => {
                out.net
                    .charge(cost.eval_cost(expr.node_count(), elems.len()));
                let outv = kernel::filter(expr, &captured, &Batch::from_values(elems))
                    .map_err(|e| RuntimeError::new(e.message))?;
                self.emit_all(outv.into_values(), out)?;
            }
            NodeKind::Join => {
                debug_assert_eq!(input, 1, "probe side streams");
                out.net.charge(cost.probe_cost(elems.len()));
                let mut outv = Vec::new();
                {
                    let active = self.current.as_ref().expect("active");
                    let OpState::Build(table) = &active.state else {
                        return Err(RuntimeError::new("join probing before build".to_string()));
                    };
                    for r in &elems {
                        if let Some(matches) = table.get(r.key()) {
                            for l in matches {
                                outv.push(join_row(r.key(), l, r));
                            }
                        }
                    }
                }
                self.emit_all(outv, out)?;
            }
            NodeKind::Cross => {
                debug_assert_eq!(input, 0, "left side streams");
                let mut outv = Vec::new();
                {
                    let active = self.current.as_ref().expect("active");
                    let OpState::CrossRight(right) = &active.state else {
                        return Err(RuntimeError::new(
                            "cross streaming before collect".to_string(),
                        ));
                    };
                    out.net
                        .charge(cost.elem_cost(elems.len() * right.len().max(1)));
                    for l in &elems {
                        for r in right {
                            outv.push(Value::tuple([l.clone(), r.clone()]));
                        }
                    }
                }
                self.emit_all(outv, out)?;
            }
            NodeKind::Union | NodeKind::Alias | NodeKind::Phi => {
                out.net.charge(cost.elem_cost(elems.len()));
                self.emit_all(elems, out)?;
            }
            // A map-headed fused chain streams its data input through every
            // stage in one pass.
            NodeKind::Fused { .. } => {
                let outv = self.fused_transform(Batch::from_values(elems), out)?;
                self.emit_all(outv.into_values(), out)?;
            }
            NodeKind::ReduceByKey { expr } | NodeKind::ReduceByKeyLocal { expr } => {
                out.net
                    .charge(cost.eval_cost(expr.node_count(), elems.len()));
                let active = self.current.as_mut().expect("active");
                let OpState::Agg(map) = &mut active.state else {
                    return Err(RuntimeError::new("reduceByKey state mismatch".to_string()));
                };
                let mut params = Vec::with_capacity(2 + captured.len());
                params.push(Value::Unit);
                params.push(Value::Unit);
                params.extend(captured);
                for v in elems {
                    let fields = v.as_tuple().ok_or_else(|| {
                        RuntimeError::new(format!("reduceByKey expects (k, v) tuples, got {v:?}"))
                    })?;
                    if fields.len() != 2 {
                        return Err(RuntimeError::new(format!(
                            "reduceByKey expects 2-field tuples, got {v:?}"
                        )));
                    }
                    match map.entry(fields[0].clone()) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(fields[1].clone());
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            params[0] = e.get().clone();
                            params[1] = fields[1].clone();
                            *e.get_mut() =
                                eval(expr, &params).map_err(|e| RuntimeError::new(e.message))?;
                        }
                    }
                }
            }
            NodeKind::Reduce { expr, .. } => {
                out.net
                    .charge(cost.eval_cost(expr.node_count(), elems.len()));
                let active = self.current.as_mut().expect("active");
                let OpState::Fold(acc) = &mut active.state else {
                    return Err(RuntimeError::new("reduce state mismatch".to_string()));
                };
                let mut params = Vec::with_capacity(2 + captured.len());
                params.push(Value::Unit);
                params.push(Value::Unit);
                params.extend(captured);
                for v in elems {
                    match acc.take() {
                        None => *acc = Some(v),
                        Some(a) => {
                            params[0] = a;
                            params[1] = v;
                            *acc = Some(
                                eval(expr, &params).map_err(|e| RuntimeError::new(e.message))?,
                            );
                        }
                    }
                }
            }
            NodeKind::Distinct => {
                out.net.charge(cost.insert_cost(elems.len()));
                let mut outv = Vec::new();
                {
                    let active = self.current.as_mut().expect("active");
                    let OpState::Distinct(seen) = &mut active.state else {
                        return Err(RuntimeError::new("distinct state mismatch".to_string()));
                    };
                    for v in elems {
                        if seen.insert(v.clone()) {
                            outv.push(v);
                        }
                    }
                }
                self.emit_all(outv, out)?;
            }
            NodeKind::OutputSink { tag } => {
                out.net.charge(cost.elem_cost(elems.len()));
                out.obs.record(
                    out.net,
                    self.op,
                    EventKind::SinkWrote {
                        bag_len: self.current.as_ref().expect("active").len,
                        count: elems.len() as u64,
                    },
                );
                self.shared
                    .fs
                    .append(&format!("{OUTPUT_PREFIX}{tag}"), &elems);
            }
            NodeKind::WriteFile => {
                debug_assert_eq!(input, 0, "data side streams");
                let name = self
                    .current
                    .as_ref()
                    .expect("active")
                    .write_name
                    .clone()
                    .ok_or_else(|| RuntimeError::new("writeFile data before name".to_string()))?;
                let bytes: u64 = elems.iter().map(Value::estimated_bytes).sum();
                out.net.charge(cost.io_stream_cost(bytes));
                self.shared.fs.append(&name, &elems);
            }
            NodeKind::ReadFile | NodeKind::Singleton { .. } | NodeKind::LiteralBag { .. } => {
                return Err(RuntimeError::new(format!(
                    "source operator {} received stream data",
                    kind.mnemonic()
                )))
            }
        }
        Ok(())
    }

    // --- Finalization -----------------------------------------------------

    /// Finalizes the active bag if every used input is complete and
    /// consumed. Returns whether finalization happened.
    fn try_finalize(
        &mut self,
        path: &ExecutionPath,
        out: &mut HostOut,
    ) -> Result<bool, RuntimeError> {
        {
            let Some(active) = &self.current else {
                return Ok(false);
            };
            if active.gates_left > 0 {
                return Ok(false);
            }
            for (i, sel) in active.sel.iter().enumerate() {
                let Some(sel_len) = sel else { continue };
                if self.gating[i] {
                    continue; // gates already satisfied
                }
                let expected = self.inputs[i].expected_senders;
                match self.inputs[i].bufs.get(sel_len) {
                    Some(buf)
                        if buf.complete(expected) && active.consumed[i] == buf.elems.len() => {}
                    _ => return Ok(false),
                }
            }
        }
        // Final emissions of blocking aggregations.
        let final_emit: Option<Vec<Value>> = {
            let active = self.current.as_mut().expect("active");
            match &self.kind {
                NodeKind::ReduceByKey { .. } | NodeKind::ReduceByKeyLocal { .. } => {
                    let OpState::Agg(map) = std::mem::replace(&mut active.state, OpState::Simple)
                    else {
                        return Err(RuntimeError::new("reduceByKey state mismatch".to_string()));
                    };
                    let mut pairs: Vec<(Value, Value)> = map.into_iter().collect();
                    pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    Some(
                        pairs
                            .into_iter()
                            .map(|(k, v)| Value::tuple([k, v]))
                            .collect(),
                    )
                }
                NodeKind::Reduce { init, .. } => {
                    let OpState::Fold(acc) = std::mem::replace(&mut active.state, OpState::Simple)
                    else {
                        return Err(RuntimeError::new("reduce state mismatch".to_string()));
                    };
                    match (acc, init) {
                        (Some(a), _) => Some(vec![a]),
                        (None, Some(i)) => Some(vec![i.clone()]),
                        (None, None) => {
                            return Err(RuntimeError::new(format!(
                                "reduce `{}` on an empty bag with no initial value",
                                self.name
                            )))
                        }
                    }
                }
                _ => None,
            }
        };
        if let Some(vs) = final_emit {
            self.emit_all(vs, out)?;
        }
        // Sinks create their target even for empty bags, matching the
        // sequential semantics (an empty written file still exists).
        match &self.kind {
            NodeKind::OutputSink { tag } => {
                self.shared.fs.append(&format!("{OUTPUT_PREFIX}{tag}"), &[]);
            }
            NodeKind::WriteFile => {
                if let Some(name) = &self.current.as_ref().expect("active").write_name {
                    self.shared.fs.append(name, &[]);
                }
            }
            _ => {}
        }

        let active = self.current.take().expect("active");
        // Keep hoistable build state for the next output bag (Sec. 5.3).
        if self.shared.config.hoisting {
            let new_kept = match (&self.kind, active.state) {
                (NodeKind::Join, OpState::Build(table)) => Some(Kept::Join {
                    bag_len: active.sel[0].expect("join build selected"),
                    table,
                }),
                (NodeKind::Cross, OpState::CrossRight(right)) => Some(Kept::Cross {
                    bag_len: active.sel[1].expect("cross right selected"),
                    right,
                }),
                _ => None,
            };
            if let Some(k) = new_kept {
                // Deliberately retained across output bags: charged to the
                // hoist-cache class (excluded from the leak verdict).
                let (elems, bytes) = Self::kept_cost(&k);
                self.shared.mem.charge(
                    MemClass::HoistCache,
                    self.machine,
                    self.op,
                    1,
                    elems,
                    bytes,
                );
                self.kept = Some(k);
            }
        }

        // Mark the out-bag finalized and punctuate decided edges.
        if let Some(outbag) = self.outbags.get_mut(&active.len) {
            outbag.finalized = true;
        }
        self.shared.telemetry.bag_finished(self.machine, self.op);
        out.obs.record(
            out.net,
            self.op,
            EventKind::BagFinalized {
                pos: active.pos,
                bag_len: active.len,
            },
        );
        self.emit_done_where_possible(active.len, out);
        self.retire_outbags();

        if !self.shared.config.pipelined {
            out.computed.push(active.pos);
        }
        let _ = path;
        Ok(true)
    }

    // --- Emission & conditional sends --------------------------------------

    /// Emits produced elements of the active bag onto every outgoing edge.
    fn emit_all(&mut self, elems: Vec<Value>, out: &mut HostOut) -> Result<(), RuntimeError> {
        if elems.is_empty() {
            return Ok(());
        }
        self.emitted_elements += elems.len() as u64;
        self.shared
            .telemetry
            .elements_out(self.machine, self.op, elems.len() as u64);
        let bag_len = self.current.as_ref().expect("active").len;
        if out.obs.enabled() {
            out.obs.record(
                out.net,
                self.op,
                EventKind::Emitted {
                    bag_len,
                    count: elems.len() as u64,
                },
            );
        }
        let cost = self.shared.config.cost;
        let n_edges = self.out_edge_ids.len();
        if n_edges == 0 {
            return Ok(());
        }
        out.net.charge(cost.ser_cost(elems.len() * n_edges));
        for ei in 0..n_edges {
            let edge = self.out_edge_ids[ei];
            // Route first (immutable), then update state.
            enum Action {
                Skip,
                Buffer,
                Ship,
            }
            let action = match &self.outbags.get(&bag_len).expect("outbag").edges[ei] {
                EdgeSend::Dropped => Action::Skip,
                EdgeSend::Undecided { .. } => Action::Buffer,
                EdgeSend::Streaming { .. } => Action::Ship,
            };
            match action {
                Action::Skip => {}
                Action::Buffer => {
                    self.shared.mem.charge(
                        MemClass::AwaitingBarrier,
                        self.machine,
                        self.op,
                        0,
                        elems.len() as u64,
                        elems_bytes(&elems),
                    );
                    if let EdgeSend::Undecided { buffer, .. } =
                        &mut self.outbags.get_mut(&bag_len).expect("outbag").edges[ei]
                    {
                        buffer.extend(elems.iter().cloned());
                    }
                }
                Action::Ship => {
                    let routed = self.route_elems(edge, &elems);
                    if let EdgeSend::Streaming {
                        counts, pending, ..
                    } = &mut self.outbags.get_mut(&bag_len).expect("outbag").edges[ei]
                    {
                        for (d, vs) in routed {
                            counts[d as usize] += vs.len() as u32;
                            pending[d as usize].extend(vs);
                        }
                    }
                    self.flush_pending(bag_len, ei, out);
                }
            }
        }
        Ok(())
    }

    /// Partitions elements over the edge's destination instances.
    fn route_elems(&self, edge: EdgeId, elems: &[Value]) -> Vec<(u16, Vec<Value>)> {
        let mut routed: Vec<(u16, Vec<Value>)> = Vec::new();
        for v in elems {
            for d in self
                .shared
                .graph
                .route(edge, self.inst, Some(v.key()), self.shared.machines)
            {
                match routed.iter_mut().find(|(dd, _)| *dd == d) {
                    Some((_, vs)) => vs.push(v.clone()),
                    None => routed.push((d, vec![v.clone()])),
                }
            }
        }
        routed
    }

    /// Chunks routed elements into columnar [`Batch`]es of at most
    /// `cost.batch_elems` elements and ships each as one [`Msg::Data`],
    /// charging the batch's **actual encoded wire size** (or the legacy
    /// estimate under the `MITOS_BATCH_OFF` kill switch — see
    /// [`batch_wire_bytes`]) to the network and the flow registry.
    fn send_batches(
        &self,
        edge: EdgeId,
        dst_inst: u16,
        bag_len: u32,
        elems: Vec<Value>,
        out: &mut HostOut,
    ) {
        let dst = self.shared.graph.edges[edge as usize].dst;
        let machine = self.shared.graph.placement(dst, dst_inst);
        let max_elems = self.shared.config.cost.batch_elems.max(1);
        for chunk in elems.chunks(max_elems) {
            let batch = Batch::from_slice(chunk);
            let bytes = self.shared.config.cost.wire_bytes(batch_wire_bytes(&batch));
            self.shared
                .flow
                .msg_out(edge, self.machine, machine, batch.len() as u64, bytes);
            out.net.send(
                machine,
                Msg::Data {
                    edge,
                    dst_inst,
                    bag_len,
                    batch,
                },
                bytes,
            );
        }
    }

    /// Records a conditional-output send/drop resolution (5.2.4), with
    /// open→decision latency when tracing (the clock is never read at
    /// lower levels).
    fn record_send_resolved(
        &self,
        edge: EdgeId,
        bag_len: u32,
        sent: bool,
        buffered: u64,
        opened_ns: u64,
        out: &mut HostOut,
    ) {
        if !out.obs.enabled() {
            return;
        }
        let latency_ns = if out.obs.tracing() {
            out.net.now_ns().saturating_sub(opened_ns)
        } else {
            0
        };
        out.obs.record(
            out.net,
            self.op,
            EventKind::SendResolved {
                edge,
                bag_len,
                sent,
                buffered,
                latency_ns,
            },
        );
    }

    /// Advances conditional-send watchers for every in-flight out-bag.
    fn advance_watchers(
        &mut self,
        path: &ExecutionPath,
        out: &mut HostOut,
    ) -> Result<(), RuntimeError> {
        let mut to_flush: Vec<(u32, usize, Vec<Value>)> = Vec::new();
        let mut resolved_any = false;
        // Bag order, not map order: concurrent in-flight bags share one
        // template, and the first resolution to fill a send entry wins —
        // iterating in bag order keeps that choice (and the invalidation
        // counters) deterministic across runs and drivers.
        let mut lens: Vec<u32> = self.outbags.keys().copied().collect();
        lens.sort_unstable();
        for bag_len in lens {
            let n_edges = self.out_edge_ids.len();
            for ei in 0..n_edges {
                let edge = self.out_edge_ids[ei];
                let (decision, next, buffered, buf_held, buf_bytes, opened_ns) = {
                    let outbag = self.outbags.get_mut(&bag_len).expect("outbag");
                    let EdgeSend::Undecided {
                        cursor,
                        buffer,
                        opened_ns,
                        hint,
                    } = &mut outbag.edges[ei]
                    else {
                        continue;
                    };
                    // Template replay: verify the recorded resolution slice
                    // incrementally. A full match applies the recorded
                    // verdict at exactly the append the slow path would
                    // resolve on; a divergence falls back to the scan from
                    // the verified (provably non-resolving) prefix.
                    let step = hint
                        .as_mut()
                        .map(|h| h.advance(path.blocks(), path.exited(), bag_len));
                    let (d, next) = match step {
                        Some(HintStep::Resolved { sent, next }) => (
                            if sent {
                                SendDecision::Send
                            } else {
                                SendDecision::Drop
                            },
                            next,
                        ),
                        Some(HintStep::Pending { cursor }) => (SendDecision::Undecided, cursor),
                        Some(HintStep::Mismatch { cursor: from }) => {
                            *hint = None;
                            if let Some(cache) = self.templates.as_mut() {
                                cache.invalidations += 1;
                                self.shared.telemetry.template_invalidated();
                            }
                            self.shared.rules.decide_send(edge, path, bag_len, from)
                        }
                        None => {
                            let (d, next) =
                                self.shared.rules.decide_send(edge, path, bag_len, *cursor);
                            if d != SendDecision::Undecided {
                                // Fill the resolution into this bag's
                                // template, when one is recording: replayable
                                // iff it resolved on a block (not program
                                // exit) within the window.
                                if let (Some(&tid), Some(cache)) =
                                    (self.recording_sends.get(&bag_len), self.templates.as_mut())
                                {
                                    let r = &self.shared.rules.edges[edge as usize];
                                    let block_resolved = next > bag_len
                                        && match d {
                                            SendDecision::Send => true,
                                            _ => r.drop_mask[path.get(next - 1) as usize],
                                        };
                                    let status = if block_resolved
                                        && (next - bag_len) as usize <= template::WINDOW
                                    {
                                        SendStatus::Recorded {
                                            slice: path.blocks()[bag_len as usize..next as usize]
                                                .into(),
                                            sent: d == SendDecision::Send,
                                        }
                                    } else {
                                        SendStatus::Poisoned
                                    };
                                    cache.fill_send(tid, ei, status);
                                }
                            }
                            (d, next)
                        }
                    };
                    let buf_held = buffer.len() as u64;
                    let buf_bytes = elems_bytes(buffer);
                    let buffered = if d == SendDecision::Send {
                        std::mem::take(buffer)
                    } else {
                        Vec::new()
                    };
                    (d, next, buffered, buf_held, buf_bytes, *opened_ns)
                };
                let outbag = self.outbags.get_mut(&bag_len).expect("outbag");
                match decision {
                    SendDecision::Undecided => {
                        if let EdgeSend::Undecided { cursor, .. } = &mut outbag.edges[ei] {
                            *cursor = next;
                        }
                    }
                    SendDecision::Drop => {
                        outbag.edges[ei] = EdgeSend::Dropped;
                        self.shared.mem.credit(
                            MemClass::AwaitingBarrier,
                            self.machine,
                            self.op,
                            1,
                            buf_held,
                            buf_bytes,
                        );
                        resolved_any = true;
                        self.record_send_resolved(edge, bag_len, false, buf_held, opened_ns, out);
                    }
                    SendDecision::Send => {
                        let dst = self.shared.graph.edges[edge as usize].dst;
                        let dst_n = self.shared.graph.instances(dst, self.shared.machines);
                        outbag.edges[ei] = EdgeSend::Streaming {
                            counts: vec![0; dst_n as usize],
                            pending: vec![Vec::new(); dst_n as usize],
                            done_sent: false,
                        };
                        self.shared.mem.credit(
                            MemClass::AwaitingBarrier,
                            self.machine,
                            self.op,
                            1,
                            buf_held,
                            buf_bytes,
                        );
                        to_flush.push((bag_len, ei, buffered));
                        resolved_any = true;
                        self.record_send_resolved(edge, bag_len, true, buf_held, opened_ns, out);
                    }
                }
            }
        }
        for (bag_len, ei, buffered) in to_flush {
            let edge = self.out_edge_ids[ei];
            out.net
                .charge(self.shared.config.cost.ser_cost(buffered.len()));
            let routed = self.route_elems(edge, &buffered);
            if let EdgeSend::Streaming {
                counts, pending, ..
            } = &mut self.outbags.get_mut(&bag_len).expect("outbag").edges[ei]
            {
                for (d, vs) in routed {
                    counts[d as usize] += vs.len() as u32;
                    pending[d as usize].extend(vs);
                }
            }
            self.flush_pending(bag_len, ei, out);
        }
        if resolved_any {
            let lens: Vec<u32> = self
                .outbags
                .iter()
                .filter(|(_, b)| b.finalized)
                .map(|(&l, _)| l)
                .collect();
            for l in lens {
                self.emit_done_where_possible(l, out);
            }
            self.retire_outbags();
        }
        Ok(())
    }

    /// Drops retired out-bags, along with their template send-recording
    /// registrations.
    fn retire_outbags(&mut self) {
        let recording = &mut self.recording_sends;
        self.outbags.retain(|len, b| {
            let keep = !b.retired();
            if !keep {
                recording.remove(len);
            }
            keep
        });
    }

    /// Drains every full `cost.batch_elems` chunk of a streaming edge's
    /// per-destination pending output and ships each as one batch message;
    /// the sub-batch remainder stays pending until the bag finalizes.
    fn flush_pending(&mut self, bag_len: u32, ei: usize, out: &mut HostOut) {
        let max_elems = self.shared.config.cost.batch_elems.max(1);
        let edge = self.out_edge_ids[ei];
        let mut ship: Vec<(u16, Vec<Value>)> = Vec::new();
        if let Some(outbag) = self.outbags.get_mut(&bag_len) {
            if let EdgeSend::Streaming { pending, .. } = &mut outbag.edges[ei] {
                for (d, buf) in pending.iter_mut().enumerate() {
                    while buf.len() >= max_elems {
                        let rest = buf.split_off(max_elems);
                        ship.push((d as u16, std::mem::replace(buf, rest)));
                    }
                }
            }
        }
        for (d, vs) in ship {
            self.send_batches(edge, d, bag_len, vs, out);
        }
    }

    /// Sends end-of-bag punctuation on every decided edge of a finalized
    /// bag that hasn't sent it yet, flushing the edge's sub-batch pending
    /// remainder first so the punctuation counts are already on the wire.
    fn emit_done_where_possible(&mut self, bag_len: u32, out: &mut HostOut) {
        let n_edges = self.out_edge_ids.len();
        for ei in 0..n_edges {
            let edge = self.out_edge_ids[ei];
            let (counts, leftover): (Vec<u32>, Vec<Vec<Value>>) = {
                let Some(outbag) = self.outbags.get_mut(&bag_len) else {
                    return;
                };
                if !outbag.finalized {
                    return;
                }
                match &mut outbag.edges[ei] {
                    EdgeSend::Streaming {
                        counts,
                        pending,
                        done_sent,
                    } if !*done_sent => {
                        *done_sent = true;
                        (counts.clone(), std::mem::take(pending))
                    }
                    _ => continue,
                }
            };
            for (d, vs) in leftover.into_iter().enumerate() {
                if !vs.is_empty() {
                    self.send_batches(edge, d as u16, bag_len, vs, out);
                }
            }
            if out.obs.enabled() {
                out.obs.record(
                    out.net,
                    self.op,
                    EventKind::PunctuationSent {
                        edge,
                        bag_len,
                        count: counts.iter().map(|&c| c as u64).sum(),
                    },
                );
            }
            let e = &self.shared.graph.edges[edge as usize];
            let dst = e.dst;
            // A Forward sender only ever feeds its own peer instance; all
            // other partitionings may have sent anywhere, so they punctuate
            // every destination (receivers expect exactly
            // `senders_per_dst` punctuations).
            let targets: Vec<u16> = match e.partitioning {
                crate::graph::Partitioning::Forward => {
                    let dst_n = counts.len() as u16;
                    vec![self.inst.min(dst_n - 1)]
                }
                _ => (0..counts.len() as u16).collect(),
            };
            for d in targets {
                let machine = self.shared.graph.placement(dst, d);
                self.shared.flow.msg_out(edge, self.machine, machine, 0, 24);
                out.net.send(
                    machine,
                    Msg::BagDone {
                        edge,
                        dst_inst: d,
                        bag_len,
                        count: counts[d as usize],
                    },
                    24,
                );
            }
        }
    }
}

/// Which inputs must be fully collected before streaming can begin.
fn gating_flags(kind: &NodeKind, n_inputs: usize) -> Vec<bool> {
    let mut flags = vec![false; n_inputs];
    match kind {
        NodeKind::ReadFile => {
            flags[0] = true;
        }
        NodeKind::WriteFile => {
            if n_inputs > 1 {
                flags[1] = true;
            }
        }
        NodeKind::Map { .. }
        | NodeKind::FlatMap { .. }
        | NodeKind::Filter { .. }
        | NodeKind::ReduceByKey { .. }
        | NodeKind::ReduceByKeyLocal { .. }
        | NodeKind::Reduce { .. } => {
            for f in flags.iter_mut().skip(1) {
                *f = true; // captured scalars
            }
        }
        NodeKind::Join => {
            flags[0] = true; // build side
        }
        NodeKind::Cross => {
            if n_inputs > 1 {
                flags[1] = true; // collected side
            }
        }
        NodeKind::Singleton { .. } | NodeKind::LiteralBag { .. } => {
            for f in flags.iter_mut() {
                *f = true;
            }
        }
        // A read-headed chain gates on its file name like a plain readFile;
        // captured scalars of every stage gate like a map's.
        NodeKind::Fused { stages } => {
            if matches!(stages[0].kind, NodeKind::ReadFile) {
                flags[0] = true;
            }
            for f in flags.iter_mut().skip(1) {
                *f = true;
            }
        }
        NodeKind::Union
        | NodeKind::Distinct
        | NodeKind::Alias
        | NodeKind::Phi
        | NodeKind::OutputSink { .. } => {}
    }
    flags
}

fn init_state(kind: &NodeKind) -> OpState {
    match kind {
        NodeKind::Join => OpState::Build(HashMap::new()),
        NodeKind::Cross => OpState::CrossRight(Vec::new()),
        NodeKind::ReduceByKey { .. } | NodeKind::ReduceByKeyLocal { .. } => {
            OpState::Agg(HashMap::new())
        }
        // The fold is seeded with the empty-bag value when one exists
        // (sum/count); `.reduce(..)` starts from the first element.
        NodeKind::Reduce { init, .. } => OpState::Fold(init.clone()),
        NodeKind::Distinct => OpState::Distinct(HashSet::new()),
        _ => OpState::Simple,
    }
}
