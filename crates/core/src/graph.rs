//! The logical Mitos dataflow graph and its construction from SSA
//! (the paper's Sec. 4.3), plus physical planning (parallelism and edge
//! partitioning).
//!
//! "We create a single dataflow node from each assignment statement and a
//! single dataflow edge from each variable reference." Condition nodes are
//! the operators defining branch conditions; Φ-statements become Φ-nodes
//! whose input choice is resolved at runtime from the execution path.

use mitos_ir::nir::{FuncIr, Op, Terminator};
use mitos_ir::{BlockId, VarId};
use mitos_lang::{Expr, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of a logical operator (dataflow node).
pub type OpId = u32;
/// Index of a logical edge.
pub type EdgeId = u32;

/// Parallelism class of an operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Parallelism {
    /// One physical instance (wrapped scalars, global reduces, conditions).
    Single,
    /// One physical instance per cluster machine.
    Full,
}

/// How a logical edge distributes data among destination instances.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Partitioning {
    /// Instance `i` sends to instance `i` (same-machine when co-located).
    Forward,
    /// Partition by hash of the element key (field 0) — shuffles.
    Hash,
    /// Every source instance sends everything to every destination instance.
    Broadcast,
    /// All source instances send to the single destination instance.
    Gather,
}

/// The runtime behaviour of a node; expressions are compiled lambdas.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// Reads a file partition per instance. Inputs: `[name]`.
    ReadFile,
    /// Appends the data bag to a file. Inputs: `[data, name]`.
    WriteFile,
    /// Collects the data bag into the engine result. Inputs: `[data]`.
    OutputSink {
        /// Result tag.
        tag: Arc<str>,
    },
    /// Per-element transform. Inputs: `[data, captured..]`.
    Map {
        /// Lambda body (`$0` element, `$1..` captured).
        expr: Expr,
    },
    /// Per-element transform into a flattened list. Inputs: `[data, captured..]`.
    FlatMap {
        /// Lambda body.
        expr: Expr,
    },
    /// Predicate filter. Inputs: `[data, captured..]`.
    Filter {
        /// Predicate body.
        expr: Expr,
    },
    /// Hash equi-join on key. Inputs: `[build, probe]`. The build side is the
    /// loop-invariant-hoisting side (Sec. 5.3).
    Join,
    /// Cartesian product. Inputs: `[stream, collected]`.
    Cross,
    /// Multiset union. Inputs: `[left, right]`.
    Union,
    /// Per-key fold of `(k, v)` pairs. Inputs: `[data, captured..]`.
    ReduceByKey {
        /// Combiner body (`$0` acc, `$1` value, `$2..` captured).
        expr: Expr,
    },
    /// Partition-local pre-aggregation (no shuffle); the combiner pass's
    /// map-side combine. Inputs: `[data, captured..]`.
    ReduceByKeyLocal {
        /// Combiner body (`$0` acc, `$1` value, `$2..` captured).
        expr: Expr,
    },
    /// Global fold to a one-element bag. Inputs: `[data, captured..]`.
    Reduce {
        /// Combiner body.
        expr: Expr,
        /// Empty-bag value; `None` = error on empty input.
        init: Option<Value>,
    },
    /// Duplicate elimination. Inputs: `[data]`.
    Distinct,
    /// One-element bag from captured scalars. Inputs: `[captured..]`.
    Singleton {
        /// The scalar expression.
        expr: Expr,
    },
    /// Literal bag. Inputs: `[captured..]`.
    LiteralBag {
        /// Element expressions.
        elems: Vec<Expr>,
    },
    /// Identity forward. Inputs: `[data]`.
    Alias,
    /// Φ-node: forwards exactly one input, chosen from the execution path.
    /// Inputs: one per SSA operand.
    Phi,
    /// A fused chain of narrow per-element operators (see [`crate::fuse`]):
    /// the host runs every stage's kernel in one pass over the elements,
    /// with no intermediate bags or edges. Inputs: `[data-or-name,
    /// captured..]` — the head stage's data (or file-name) input first,
    /// then every stage's captured scalars in stage order.
    Fused {
        /// The stages, in execution order. Stage 0 may be a source
        /// ([`NodeKind::ReadFile`]); all later stages are per-element.
        stages: Arc<[FusedStage]>,
    },
}

/// One member of a fused operator chain.
#[derive(Clone, Debug)]
pub struct FusedStage {
    /// The original operator (`ReadFile`, `Map`, `FlatMap`, `Filter`, or a
    /// pass-through `Alias`/`Phi`).
    pub kind: NodeKind,
    /// Display name of the original logical node (its SSA variable).
    pub name: Arc<str>,
    /// Number of captured scalar inputs this stage consumes. The fused
    /// node's captured slots are laid out contiguously in stage order.
    pub captured: usize,
}

impl NodeKind {
    /// Number of *data* inputs (captured scalar inputs come after these).
    pub fn data_arity(&self) -> usize {
        match self {
            NodeKind::ReadFile | NodeKind::Singleton { .. } | NodeKind::LiteralBag { .. } => 0,
            NodeKind::Map { .. }
            | NodeKind::FlatMap { .. }
            | NodeKind::Filter { .. }
            | NodeKind::ReduceByKey { .. }
            | NodeKind::ReduceByKeyLocal { .. }
            | NodeKind::Reduce { .. }
            | NodeKind::Distinct
            | NodeKind::Alias
            | NodeKind::OutputSink { .. } => 1,
            NodeKind::WriteFile | NodeKind::Join | NodeKind::Cross | NodeKind::Union => 2,
            NodeKind::Phi => usize::MAX, // all inputs are data
            // Input 0 is the head's data (or file-name) input; the rest are
            // the stages' captured scalars.
            NodeKind::Fused { .. } => 1,
        }
    }

    /// Short name for display.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            NodeKind::ReadFile => "readFile",
            NodeKind::WriteFile => "writeFile",
            NodeKind::OutputSink { .. } => "output",
            NodeKind::Map { .. } => "map",
            NodeKind::FlatMap { .. } => "flatMap",
            NodeKind::Filter { .. } => "filter",
            NodeKind::Join => "join",
            NodeKind::Cross => "cross",
            NodeKind::Union => "union",
            NodeKind::ReduceByKey { .. } => "reduceByKey",
            NodeKind::ReduceByKeyLocal { .. } => "reduceByKeyLocal",
            NodeKind::Reduce { .. } => "reduce",
            NodeKind::Distinct => "distinct",
            NodeKind::Singleton { .. } => "singleton",
            NodeKind::LiteralBag { .. } => "bagLit",
            NodeKind::Alias => "alias",
            NodeKind::Phi => "phi",
            NodeKind::Fused { .. } => "fused",
        }
    }

    /// Display label: the mnemonic, except for fused chains, which join
    /// their stage mnemonics (`map+filter+flatMap`).
    pub fn label(&self) -> String {
        match self {
            NodeKind::Fused { stages } => stages
                .iter()
                .map(|s| s.kind.mnemonic())
                .collect::<Vec<_>>()
                .join("+"),
            other => other.mnemonic().to_string(),
        }
    }
}

/// A logical input edge of a node.
#[derive(Clone, Copy, Debug)]
pub struct InputSpec {
    /// Producing node.
    pub src: OpId,
    /// Distribution of data across destination instances.
    pub partitioning: Partitioning,
}

/// Branch targets of a condition node.
#[derive(Clone, Copy, Debug)]
pub struct CondInfo {
    /// Block chosen when the condition is true.
    pub then_blk: BlockId,
    /// Block chosen when the condition is false.
    pub else_blk: BlockId,
}

/// A logical dataflow node.
#[derive(Clone, Debug)]
pub struct LogicalNode {
    /// The SSA variable this node defines.
    pub var: VarId,
    /// Display name (the SSA variable name).
    pub name: Arc<str>,
    /// The basic block of the defining statement.
    pub block: BlockId,
    /// Position of the statement within its block (drives the same-block
    /// input-selection rule).
    pub stmt_idx: usize,
    /// Runtime behaviour.
    pub kind: NodeKind,
    /// Logical inputs, in order (data inputs first, then captured scalars).
    pub inputs: Vec<InputSpec>,
    /// Parallelism class.
    pub parallelism: Parallelism,
    /// Present iff this node decides a branch (a *condition node*).
    pub condition: Option<CondInfo>,
}

/// A logical edge with destination bookkeeping (derived from inputs).
#[derive(Clone, Copy, Debug)]
pub struct LogicalEdge {
    /// Producing node.
    pub src: OpId,
    /// Consuming node.
    pub dst: OpId,
    /// Index of this edge among `dst`'s inputs.
    pub dst_input: usize,
    /// Distribution.
    pub partitioning: Partitioning,
}

/// The complete logical dataflow job plus the control-flow graph it
/// implements.
#[derive(Clone, Debug)]
pub struct LogicalGraph {
    /// Dataflow nodes, indexed by [`OpId`].
    pub nodes: Vec<LogicalNode>,
    /// All edges (derived from node inputs), indexed by [`EdgeId`].
    pub edges: Vec<LogicalEdge>,
    /// Outgoing edge ids per node.
    pub out_edges: Vec<Vec<EdgeId>>,
    /// The SSA function (for terminators and block structure).
    pub func: FuncIr,
}

/// An error during dataflow building.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BuildError {
    /// Description.
    pub message: String,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dataflow build error: {}", self.message)
    }
}

impl std::error::Error for BuildError {}

impl LogicalGraph {
    /// Builds the single dataflow job from a validated SSA program:
    /// one node per statement, one edge per variable reference.
    pub fn build(func: &FuncIr) -> Result<LogicalGraph, BuildError> {
        let mut nodes: Vec<LogicalNode> = Vec::new();
        let mut var_to_op: HashMap<VarId, OpId> = HashMap::new();

        // Pass 1: create nodes.
        for (b, block) in func.blocks.iter().enumerate() {
            for (i, stmt) in block.stmts.iter().enumerate() {
                let id = nodes.len() as OpId;
                let info = &func.vars[stmt.target as usize];
                let (kind, _) = translate_op(&stmt.op)?;
                let parallelism = plan_parallelism(&kind, info.is_scalar);
                nodes.push(LogicalNode {
                    var: stmt.target,
                    name: info.name.clone(),
                    block: b as BlockId,
                    stmt_idx: i,
                    kind,
                    inputs: Vec::new(),
                    parallelism,
                    condition: None,
                });
                var_to_op.insert(stmt.target, id);
            }
        }

        // Pass 2: wire inputs (one edge per variable reference).
        {
            let mut op_iter = 0usize;
            for block in &func.blocks {
                for stmt in &block.stmts {
                    let uses = stmt.op.uses();
                    let dst = op_iter as OpId;
                    op_iter += 1;
                    let mut inputs = Vec::with_capacity(uses.len());
                    for (input_idx, u) in uses.iter().enumerate() {
                        let src = *var_to_op.get(u).ok_or_else(|| BuildError {
                            message: format!(
                                "variable `{}` has no defining node",
                                func.var_name(*u)
                            ),
                        })?;
                        let partitioning = plan_partitioning(
                            &nodes[dst as usize],
                            input_idx,
                            nodes[src as usize].parallelism,
                        );
                        inputs.push(InputSpec { src, partitioning });
                    }
                    nodes[dst as usize].inputs = inputs;
                }
            }
        }

        // Pass 3: mark condition nodes from branch terminators.
        for block in &func.blocks {
            if let Terminator::Branch {
                cond,
                then_blk,
                else_blk,
            } = &block.term
            {
                let op = *var_to_op.get(cond).ok_or_else(|| BuildError {
                    message: format!("condition `{}` has no node", func.var_name(*cond)),
                })?;
                nodes[op as usize].condition = Some(CondInfo {
                    then_blk: *then_blk,
                    else_blk: *else_blk,
                });
            }
        }

        // Derive the edge table.
        let mut edges = Vec::new();
        let mut out_edges = vec![Vec::new(); nodes.len()];
        for (dst, node) in nodes.iter().enumerate() {
            for (dst_input, input) in node.inputs.iter().enumerate() {
                let id = edges.len() as EdgeId;
                edges.push(LogicalEdge {
                    src: input.src,
                    dst: dst as OpId,
                    dst_input,
                    partitioning: input.partitioning,
                });
                out_edges[input.src as usize].push(id);
            }
        }

        Ok(LogicalGraph {
            nodes,
            edges,
            out_edges,
            func: func.clone(),
        })
    }

    /// Number of physical instances of a node on an `machines`-machine
    /// cluster.
    pub fn instances(&self, op: OpId, machines: u16) -> u16 {
        match self.nodes[op as usize].parallelism {
            Parallelism::Single => 1,
            Parallelism::Full => machines,
        }
    }

    /// The machine hosting instance `inst` of `op`. Single-instance
    /// operators live on machine 0 (with the control-flow "driver-side"
    /// chain), full operators place instance `i` on machine `i`.
    pub fn placement(&self, op: OpId, inst: u16) -> u16 {
        match self.nodes[op as usize].parallelism {
            Parallelism::Single => 0,
            Parallelism::Full => inst,
        }
    }

    /// Number of physical senders feeding one destination instance over an
    /// edge (how many `BagDone` messages to expect).
    pub fn senders_per_dst(&self, edge: EdgeId, machines: u16) -> u16 {
        let e = &self.edges[edge as usize];
        match e.partitioning {
            Partitioning::Forward => 1,
            Partitioning::Hash | Partitioning::Gather | Partitioning::Broadcast => {
                self.instances(e.src, machines)
            }
        }
    }

    /// Destination instances for an element sent by `src_inst` over `edge`.
    /// For `Hash`, the instance is determined by the element key.
    pub fn route(
        &self,
        edge: EdgeId,
        src_inst: u16,
        key: Option<&Value>,
        machines: u16,
    ) -> Vec<u16> {
        let e = &self.edges[edge as usize];
        let dst_n = self.instances(e.dst, machines);
        match e.partitioning {
            Partitioning::Forward => vec![src_inst.min(dst_n - 1)],
            Partitioning::Gather => vec![0],
            Partitioning::Broadcast => (0..dst_n).collect(),
            Partitioning::Hash => {
                let key = key.expect("hash routing needs a key");
                vec![(stable_hash(key) % dst_n as u64) as u16]
            }
        }
    }
}

/// FNV-1a over the value's own hash impl — deterministic across runs and
/// platforms (unlike `DefaultHasher` guarantees).
pub fn stable_hash(v: &Value) -> u64 {
    struct Fnv(u64);
    impl std::hash::Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
        }
    }
    use std::hash::Hash;
    let mut h = Fnv(0xcbf29ce484222325);
    v.hash(&mut h);
    std::hash::Hasher::finish(&h)
}

fn translate_op(op: &Op) -> Result<(NodeKind, ()), BuildError> {
    let kind = match op {
        Op::ReadFile { .. } => NodeKind::ReadFile,
        Op::WriteFile { .. } => NodeKind::WriteFile,
        Op::Output { tag, .. } => NodeKind::OutputSink { tag: tag.clone() },
        Op::Map { expr, .. } => NodeKind::Map { expr: expr.clone() },
        Op::FlatMap { expr, .. } => NodeKind::FlatMap { expr: expr.clone() },
        Op::Filter { expr, .. } => NodeKind::Filter { expr: expr.clone() },
        Op::Join { .. } => NodeKind::Join,
        Op::Cross { .. } => NodeKind::Cross,
        Op::Union { .. } => NodeKind::Union,
        Op::ReduceByKey { expr, .. } => NodeKind::ReduceByKey { expr: expr.clone() },
        Op::ReduceByKeyLocal { expr, .. } => NodeKind::ReduceByKeyLocal { expr: expr.clone() },
        Op::Reduce { expr, init, .. } => NodeKind::Reduce {
            expr: expr.clone(),
            init: init.clone(),
        },
        Op::Distinct { .. } => NodeKind::Distinct,
        Op::Singleton { expr, .. } => NodeKind::Singleton { expr: expr.clone() },
        Op::LiteralBag { elems, .. } => NodeKind::LiteralBag {
            elems: elems.clone(),
        },
        Op::Alias { .. } => NodeKind::Alias,
        Op::Phi { .. } => NodeKind::Phi,
    };
    Ok((kind, ()))
}

fn plan_parallelism(kind: &NodeKind, is_scalar: bool) -> Parallelism {
    if is_scalar {
        return Parallelism::Single;
    }
    match kind {
        // Global reduce gathers to one instance; its output is a wrapped
        // scalar anyway (is_scalar), so the first arm is defensive.
        // Literal bags are materialized once (a single driver-side
        // collection) and redistributed by their consumers.
        NodeKind::Reduce { .. } | NodeKind::Singleton { .. } | NodeKind::LiteralBag { .. } => {
            Parallelism::Single
        }
        _ => Parallelism::Full,
    }
}

fn plan_partitioning(dst: &LogicalNode, input_idx: usize, src_par: Parallelism) -> Partitioning {
    use NodeKind::*;
    if dst.parallelism == Parallelism::Single {
        // Everything funnels into the one instance.
        return Partitioning::Gather;
    }
    // Destination is Full.
    let data_arity = dst.kind.data_arity();
    if input_idx >= data_arity && data_arity != usize::MAX {
        // Captured scalar positions are always broadcast.
        return Partitioning::Broadcast;
    }
    match (&dst.kind, input_idx) {
        // The collected cross side and file names go everywhere.
        (Cross, 1) | (WriteFile, 1) => Partitioning::Broadcast,
        (Join, _) | (ReduceByKey { .. }, _) | (Distinct, _) => Partitioning::Hash,
        // A single-instance bag producer feeding a partitioned data input
        // must be redistributed, not replicated.
        _ if src_par == Parallelism::Single => Partitioning::Hash,
        _ => Partitioning::Forward,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitos_ir::compile_str;

    fn graph(src: &str) -> LogicalGraph {
        LogicalGraph::build(&compile_str(src).unwrap()).unwrap()
    }

    fn node_by_name<'g>(g: &'g LogicalGraph, name: &str) -> (&'g LogicalNode, OpId) {
        let (i, n) = g
            .nodes
            .iter()
            .enumerate()
            .find(|(_, n)| &*n.name == name)
            .unwrap_or_else(|| panic!("no node {name}"));
        (n, i as OpId)
    }

    #[test]
    fn one_node_per_statement_one_edge_per_reference() {
        let g = graph("a = bag(1, 2); b = a.map(x => x + 1); output(b, \"b\");");
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.edges.len(), 2);
        let (map_node, _) = node_by_name(&g, "b");
        assert_eq!(map_node.inputs.len(), 1);
        // Literal bags materialize at a single instance; consumers
        // redistribute them.
        assert_eq!(map_node.inputs[0].partitioning, Partitioning::Hash);
    }

    #[test]
    fn scalars_are_single_and_broadcast_to_bag_ops() {
        let g = graph("k = 5; b = bag(1, 2).filter(x => x < k); output(b, \"b\");");
        let (k, _) = node_by_name(&g, "k");
        assert_eq!(k.parallelism, Parallelism::Single);
        let (filter, _) = node_by_name(&g, "b");
        assert_eq!(filter.parallelism, Parallelism::Full);
        // input 0 = data (redistributed from the single literal-bag
        // instance), input 1 = captured k (broadcast).
        assert_eq!(filter.inputs[0].partitioning, Partitioning::Hash);
        assert_eq!(filter.inputs[1].partitioning, Partitioning::Broadcast);
    }

    #[test]
    fn joins_hash_partition_both_sides() {
        let g = graph("a = bag((1, 2)); b = bag((1, 3)); c = a join b; output(c, \"c\");");
        let (join, _) = node_by_name(&g, "c");
        assert_eq!(join.inputs[0].partitioning, Partitioning::Hash);
        assert_eq!(join.inputs[1].partitioning, Partitioning::Hash);
    }

    #[test]
    fn reduce_gathers_to_single() {
        let g = graph("b = bag(1, 2, 3); s = b.sum(); output(s, \"s\");");
        let sum_node = g
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Reduce { .. }))
            .unwrap();
        assert_eq!(sum_node.parallelism, Parallelism::Single);
        assert_eq!(sum_node.inputs[0].partitioning, Partitioning::Gather);
    }

    #[test]
    fn condition_nodes_are_marked() {
        let g = graph("i = 0; while (i < 2) { i = i + 1; } output(i, \"i\");");
        let conds: Vec<&LogicalNode> = g.nodes.iter().filter(|n| n.condition.is_some()).collect();
        assert_eq!(conds.len(), 1);
        let cond = conds[0].condition.unwrap();
        assert_ne!(cond.then_blk, cond.else_blk);
        assert_eq!(conds[0].parallelism, Parallelism::Single);
    }

    #[test]
    fn phi_nodes_have_multiple_inputs() {
        let g = graph("i = 0; while (i < 2) { i = i + 1; } output(i, \"i\");");
        let phi = g
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Phi))
            .unwrap();
        assert_eq!(phi.inputs.len(), 2);
    }

    #[test]
    fn readfile_broadcasts_its_name() {
        let g = graph("b = readFile(\"f\"); output(b, \"b\");");
        let rf = g
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::ReadFile))
            .unwrap();
        assert_eq!(rf.parallelism, Parallelism::Full);
        assert_eq!(rf.inputs[0].partitioning, Partitioning::Broadcast);
    }

    #[test]
    fn routing_covers_all_instances_exactly_once_for_hash() {
        let g = graph("a = bag((1, 2)); b = bag((1, 3)); c = a join b; output(c, \"c\");");
        let (_, join_id) = node_by_name(&g, "c");
        let edge = g
            .edges
            .iter()
            .position(|e| e.dst == join_id && e.dst_input == 0)
            .unwrap() as EdgeId;
        let machines = 4;
        for k in 0..100i64 {
            let key = Value::I64(k);
            let dsts = g.route(edge, 0, Some(&key), machines);
            assert_eq!(dsts.len(), 1);
            assert!(dsts[0] < machines);
            // Same key always routes the same way.
            assert_eq!(dsts, g.route(edge, 2, Some(&key), machines));
        }
    }

    #[test]
    fn broadcast_routes_to_everyone() {
        let g = graph("k = 5; b = bag(1).filter(x => x < k); output(b, \"b\");");
        let (_, filter_id) = node_by_name(&g, "b");
        let edge = g
            .edges
            .iter()
            .position(|e| e.dst == filter_id && e.dst_input == 1)
            .unwrap() as EdgeId;
        assert_eq!(g.route(edge, 0, None, 3), vec![0, 1, 2]);
    }

    #[test]
    fn stable_hash_is_deterministic() {
        let v = Value::tuple([Value::I64(42), Value::str("x")]);
        assert_eq!(stable_hash(&v), stable_hash(&v));
        assert_ne!(stable_hash(&Value::I64(1)), stable_hash(&Value::I64(2)));
    }

    #[test]
    fn cross_broadcasts_right_side() {
        let g = graph("a = bag(1); b = bag(2); c = a cross b; output(c, \"c\");");
        let (cross, _) = node_by_name(&g, "c");
        assert_eq!(cross.inputs[0].partitioning, Partitioning::Hash);
        assert_eq!(cross.inputs[1].partitioning, Partitioning::Broadcast);
    }

    #[test]
    fn senders_per_dst_matches_partitioning() {
        let g = graph("k = 5; a = bag((1, 2)); b = a.map(x => x); c = a join b; output(c, \"c\"); output(k, \"k\");");
        let machines = 4;
        for (i, e) in g.edges.iter().enumerate() {
            let senders = g.senders_per_dst(i as EdgeId, machines);
            match e.partitioning {
                Partitioning::Forward => assert_eq!(senders, 1),
                Partitioning::Hash | Partitioning::Gather => {
                    assert_eq!(senders, g.instances(e.src, machines))
                }
                Partitioning::Broadcast => {
                    assert_eq!(senders, g.instances(e.src, machines))
                }
            }
        }
    }
}
