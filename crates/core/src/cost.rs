//! The operator-level cost model, mapping logical work (elements processed,
//! expressions evaluated, hash operations, file IO) to virtual CPU
//! nanoseconds charged on the simulated cluster.
//!
//! The absolute values are calibrated to commodity 2010s hardware (the
//! paper's AMD Opteron testbed); the *shapes* of the evaluation figures are
//! insensitive to modest changes here, which `EXPERIMENTS.md` discusses.

use mitos_fs::IoCostModel;

/// Cost parameters for dataflow execution.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Base CPU ns per element handled by any operator.
    pub per_element_ns: u64,
    /// CPU ns per expression node, per evaluation.
    pub per_expr_node_ns: u64,
    /// CPU ns per hash-table insert (join build, reduceByKey, distinct).
    pub per_insert_ns: u64,
    /// CPU ns per hash-table probe.
    pub per_probe_ns: u64,
    /// CPU ns to serialize/deserialize one element for the network.
    pub per_ser_ns: u64,
    /// File system costs.
    pub io: IoCostModel,
    /// Elements per network data batch.
    pub batch_elems: usize,
    /// How many real-world records one simulated element stands for. The
    /// figure harnesses use this to model the paper's data volumes (tens
    /// of MB per loop step) without materializing millions of values: all
    /// per-element CPU, IO, and network costs scale by this factor.
    pub record_weight: u64,
    /// How many bytes a real record occupies relative to the simulated
    /// element's in-memory estimate (log lines carry URLs and timestamps,
    /// not bare integers). Scales IO and network volume only.
    pub bytes_per_record_scale: u64,
    /// CPU ns per path block examined while deriving a control-plane
    /// decision (the Sec. 5.2.3 backward scans). This is the per-step
    /// overhead the execution-template cache eliminates: a loop-invariant
    /// input's scan walks back to the start of an ever-growing path on
    /// every iteration.
    pub per_scan_block_ns: u64,
    /// Flat CPU ns to validate and replay a cached execution template at a
    /// bag start (one suffix-key comparison of at most
    /// [`crate::template::WINDOW`]` + 1` blocks).
    pub template_replay_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_element_ns: 120,
            per_expr_node_ns: 15,
            per_insert_ns: 90,
            per_probe_ns: 60,
            per_ser_ns: 50,
            io: IoCostModel::default(),
            batch_elems: 1024,
            record_weight: 1,
            bytes_per_record_scale: 1,
            per_scan_block_ns: 6,
            template_replay_ns: 40,
        }
    }
}

impl CostModel {
    /// Cost of evaluating an expression with `nodes` nodes over `n`
    /// elements.
    pub fn eval_cost(&self, nodes: usize, n: usize) -> u64 {
        (self.per_element_ns + self.per_expr_node_ns * nodes as u64) * n as u64 * self.record_weight
    }

    /// Base handling cost for `n` elements.
    pub fn elem_cost(&self, n: usize) -> u64 {
        self.per_element_ns * n as u64 * self.record_weight
    }

    /// Expression share of one stage of a fused operator chain over `n`
    /// elements. The per-element traversal base is charged once per chain
    /// pass (that is the compute side of fusion's win); each stage then
    /// pays only for its own lambda.
    pub fn fused_expr_cost(&self, nodes: usize, n: usize) -> u64 {
        self.per_expr_node_ns * nodes as u64 * n as u64 * self.record_weight
    }

    /// Hash-insert cost for `n` elements.
    pub fn insert_cost(&self, n: usize) -> u64 {
        self.per_insert_ns * n as u64 * self.record_weight
    }

    /// Hash-probe cost for `n` elements.
    pub fn probe_cost(&self, n: usize) -> u64 {
        self.per_probe_ns * n as u64 * self.record_weight
    }

    /// Serialization cost for `n` elements.
    pub fn ser_cost(&self, n: usize) -> u64 {
        self.per_ser_ns * n as u64 * self.record_weight
    }

    /// Disk access cost (open + transfer) for a weighted payload.
    pub fn io_cost(&self, bytes: u64) -> u64 {
        self.io
            .access_cost_ns(bytes * self.record_weight * self.bytes_per_record_scale)
    }

    /// Disk streaming cost (no open) for a weighted payload.
    pub fn io_stream_cost(&self, bytes: u64) -> u64 {
        (bytes * self.record_weight * self.bytes_per_record_scale * 1000)
            / self.io.bytes_per_us.max(1)
    }

    /// Wire size of a weighted payload.
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        bytes * self.record_weight * self.bytes_per_record_scale
    }

    /// Cost of a control-plane selection scan over `blocks` path blocks.
    /// Control-plane work is per decision, not per data record, so
    /// `record_weight` does not apply.
    pub fn scan_cost(&self, blocks: u64) -> u64 {
        self.per_scan_block_ns * blocks
    }

    /// Cost of one execution-template lookup + replay at a bag start.
    pub fn replay_cost(&self) -> u64 {
        self.template_replay_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_cost_scales_with_elements_and_nodes() {
        let m = CostModel::default();
        assert_eq!(m.eval_cost(0, 10), 10 * m.per_element_ns);
        assert!(m.eval_cost(5, 10) > m.eval_cost(1, 10));
        assert_eq!(m.eval_cost(3, 0), 0);
    }

    #[test]
    fn record_weight_scales_everything() {
        let mut m = CostModel::default();
        let base = (m.eval_cost(2, 10), m.insert_cost(5), m.io_cost(100));
        m.record_weight = 10;
        assert_eq!(m.eval_cost(2, 10), base.0 * 10);
        assert_eq!(m.insert_cost(5), base.1 * 10);
        assert!(m.io_cost(100) > base.2);
        assert_eq!(m.wire_bytes(7), 70);
    }
}
