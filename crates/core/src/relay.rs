//! At-least-once delivery for fault-injection runs.
//!
//! With network faults active (see [`crate::rt::FaultPlan`]), every remote
//! **guarded** message — data-plane [`Msg::Data`]/[`Msg::BagDone`] and
//! control-plane [`Msg::Decision`]/[`Msg::BagComputed`]/[`Msg::Release`] —
//! is wrapped in a sequence-numbered [`Msg::Reliable`] envelope. The
//! protocol:
//!
//! * **Sender**: assigns a per-peer sequence number, keeps the payload in
//!   an unacked buffer, and arms a self-addressed [`Msg::RetryTick`] timer.
//!   Each tick retransmits everything still unacked toward that peer and
//!   re-arms with exponential backoff; after [`MAX_ATTEMPTS`] rounds it
//!   gives up with a [`RuntimeError`] naming the peer and the stuck
//!   payloads.
//! * **Receiver**: always acks `(src, seq)` — even for duplicates, since
//!   the original ack may itself have been lost — and delivers a payload at
//!   most once, deduplicating by `(src, seq)` with a compacting watermark.
//!
//! Retransmitted envelopes are new physical messages, so the fault
//! schedule (pure in the per-link send index) gives them fresh verdicts:
//! under any drop probability below one, delivery eventually succeeds.
//! Because the runtime is already tolerant of *reordered* logical traffic
//! (input bags complete by element counts, barrier releases take maxima,
//! decisions are buffered by path index), exactly-once delivery in order
//! is not required — dedup alone restores correctness.
//!
//! The whole layer is inert (never instantiated, zero envelope bytes) when
//! no network faults are configured, keeping fault-free runs bit-identical
//! to builds without it.

use crate::graph::EdgeId;
use crate::obs::event::OP_NONE;
use crate::obs::flow::FlowRegistry;
use crate::obs::mem::{MemClass, MemRegistry, DEDUP_ENTRY_BYTES, ENVELOPE_BYTES};
use crate::rt::{Msg, Net, RuntimeError};
use std::collections::{BTreeMap, HashSet};

/// First retransmission backoff (ns; virtual under the simulator, wall
/// under threads). Doubles per round up to `BASE_BACKOFF_NS << MAX_SHIFT`.
pub const BASE_BACKOFF_NS: u64 = 1_500_000;
/// Cap on the exponential backoff shift (max backoff = base × 2⁶).
const MAX_SHIFT: u32 = 6;
/// Retransmission rounds per peer before giving up with an error.
pub const MAX_ATTEMPTS: u32 = 30;

/// An unacknowledged guarded payload awaiting retransmission.
#[derive(Debug)]
struct Pending {
    msg: Msg,
    bytes: u64,
}

/// Per-worker state of the at-least-once delivery protocol: send-side
/// sequence numbers and unacked buffers, receive-side dedup, and counters.
#[derive(Debug, Default)]
pub struct Relay {
    machine: u16,
    enabled: bool,
    /// Next sequence number per peer.
    next_seq: Vec<u64>,
    /// Unacked payloads per peer, ordered by sequence number.
    unacked: Vec<BTreeMap<u64, Pending>>,
    /// Retransmission rounds taken since the peer's buffer last drained.
    attempts: Vec<u32>,
    /// Whether a RetryTick is already in flight for the peer.
    tick_armed: Vec<bool>,
    /// Receive side: delivered sequence numbers above the watermark.
    seen: Vec<HashSet<u64>>,
    /// Receive side: every seq below this has been delivered.
    delivered_below: Vec<u64>,
    /// Envelopes retransmitted by this worker.
    pub retransmits: u64,
    /// Duplicate deliveries discarded by this worker.
    pub dups_dropped: u64,
}

/// Whether the relay guards `msg`: all inter-worker data- and
/// control-plane traffic. `Start` is driver-injected, `IoDone` is a local
/// timer, and the relay's own `Reliable`/`Ack`/`RetryTick` never re-wrap.
fn guarded(msg: &Msg) -> bool {
    matches!(
        msg,
        Msg::Decision { .. }
            | Msg::Data { .. }
            | Msg::BagDone { .. }
            | Msg::BagComputed { .. }
            | Msg::Release { .. }
    )
}

/// The data-plane edge a guarded payload travels on, if any — the key
/// under which the flow registry accounts relay inflight windows and
/// retransmitted bytes.
fn data_edge(msg: &Msg) -> Option<EdgeId> {
    match msg {
        Msg::Data { edge, .. } | Msg::BagDone { edge, .. } => Some(*edge),
        _ => None,
    }
}

/// Short payload name for give-up diagnostics.
fn payload_kind(msg: &Msg) -> &'static str {
    match msg {
        Msg::Start => "start",
        Msg::Decision { .. } => "decision broadcast",
        Msg::Data { .. } => "data batch",
        Msg::BagDone { .. } => "end-of-bag punctuation",
        Msg::BagComputed { .. } => "barrier bag-computed",
        Msg::Release { .. } => "barrier release",
        Msg::IoDone { .. } => "io completion",
        Msg::Reliable { .. } => "reliable envelope",
        Msg::Ack { .. } => "ack",
        Msg::RetryTick { .. } => "retry tick",
    }
}

impl Relay {
    /// Creates the relay for `machine` in a cluster of `machines`.
    /// Disabled relays pass every send through untouched.
    pub fn new(machine: u16, machines: u16, enabled: bool) -> Relay {
        let n = machines as usize;
        Relay {
            machine,
            enabled,
            next_seq: vec![0; n],
            unacked: (0..n).map(|_| BTreeMap::new()).collect(),
            attempts: vec![0; n],
            tick_armed: vec![false; n],
            seen: (0..n).map(|_| HashSet::new()).collect(),
            delivered_below: vec![0; n],
            retransmits: 0,
            dups_dropped: 0,
        }
    }

    /// Whether the protocol is on (network faults active and recovery
    /// enabled).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Sends through `net`, wrapping remote guarded payloads in a
    /// sequence-numbered envelope and arming the retransmission timer.
    /// Data-plane payloads entering the unacked buffer grow their edge's
    /// inflight window in `flow`; every buffered envelope charges its
    /// payload-plus-envelope bytes to [`MemClass::RelayBuf`] in `mem`.
    pub fn send_via(
        &mut self,
        net: &mut dyn Net,
        machine: u16,
        msg: Msg,
        bytes: u64,
        flow: &FlowRegistry,
        mem: &MemRegistry,
    ) {
        if !self.enabled || machine == self.machine || !guarded(&msg) {
            net.send(machine, msg, bytes);
            return;
        }
        let m = machine as usize;
        let seq = self.next_seq[m];
        self.next_seq[m] += 1;
        net.send(
            machine,
            Msg::Reliable {
                src: self.machine,
                seq,
                payload: Box::new(msg.clone()),
            },
            bytes + ENVELOPE_BYTES,
        );
        if let Some(edge) = data_edge(&msg) {
            flow.inflight_inc(edge, self.machine);
        }
        let elems = match &msg {
            Msg::Data { batch, .. } => batch.len() as u64,
            _ => 0,
        };
        mem.charge(
            MemClass::RelayBuf,
            self.machine,
            OP_NONE,
            1,
            elems,
            bytes + ENVELOPE_BYTES,
        );
        self.unacked[m].insert(seq, Pending { msg, bytes });
        self.arm(net, machine);
    }

    /// Arms one RetryTick toward `peer` unless one is already in flight.
    fn arm(&mut self, net: &mut dyn Net, peer: u16) {
        let m = peer as usize;
        if self.tick_armed[m] {
            return;
        }
        self.tick_armed[m] = true;
        let shift = self.attempts[m].min(MAX_SHIFT);
        net.timer(
            BASE_BACKOFF_NS << shift,
            self.machine,
            Msg::RetryTick { peer },
        );
    }

    /// Receive side: acks `(src, seq)` and returns whether the payload is
    /// fresh (deliver it) or a duplicate (discard it). Fresh entries
    /// charge [`MemClass::DedupTable`] residency in `mem`; watermark
    /// compaction credits it back, so a gap-free run holds the table at
    /// zero.
    pub fn accept(&mut self, net: &mut dyn Net, src: u16, seq: u64, mem: &MemRegistry) -> bool {
        net.send(
            src,
            Msg::Ack {
                peer: self.machine,
                seq,
            },
            ENVELOPE_BYTES,
        );
        let s = src as usize;
        if seq < self.delivered_below[s] || !self.seen[s].insert(seq) {
            self.dups_dropped += 1;
            return false;
        }
        mem.charge(
            MemClass::DedupTable,
            self.machine,
            OP_NONE,
            1,
            0,
            DEDUP_ENTRY_BYTES,
        );
        // Compact the dense prefix into the watermark.
        let mut compacted = 0u64;
        while self.seen[s].remove(&self.delivered_below[s]) {
            self.delivered_below[s] += 1;
            compacted += 1;
        }
        if compacted > 0 {
            mem.credit(
                MemClass::DedupTable,
                self.machine,
                OP_NONE,
                compacted,
                0,
                compacted * DEDUP_ENTRY_BYTES,
            );
        }
        true
    }

    /// Send side: an ack from `peer` retires the pending payload (and
    /// shrinks its edge's inflight window in `flow` and its
    /// [`MemClass::RelayBuf`] residency in `mem`).
    pub fn on_ack(&mut self, peer: u16, seq: u64, flow: &FlowRegistry, mem: &MemRegistry) {
        let m = peer as usize;
        if let Some(pending) = self.unacked[m].remove(&seq) {
            if let Some(edge) = data_edge(&pending.msg) {
                flow.inflight_dec(edge, self.machine);
            }
            let elems = match &pending.msg {
                Msg::Data { batch, .. } => batch.len() as u64,
                _ => 0,
            };
            mem.credit(
                MemClass::RelayBuf,
                self.machine,
                OP_NONE,
                1,
                elems,
                pending.bytes + ENVELOPE_BYTES,
            );
        }
        if self.unacked[m].is_empty() {
            self.attempts[m] = 0;
        }
    }

    /// A retransmission timer fired for `peer`: re-sends everything still
    /// unacked and re-arms with backoff. Returns `(peer, seq, attempt,
    /// step)` per retransmitted envelope for observability — `step` is the
    /// decision index when the payload is a [`Msg::Decision`] and
    /// `u32::MAX` otherwise, so the span layer can count decision-delivery
    /// attempts — or an error once the attempt budget is exhausted
    /// (`fault_note` names the injected plan). Data-plane resends charge
    /// their envelope bytes to the edge's retransmission counters in
    /// `flow`.
    pub fn on_tick(
        &mut self,
        net: &mut dyn Net,
        peer: u16,
        fault_note: &str,
        flow: &FlowRegistry,
    ) -> Result<Vec<(u16, u64, u32, u32)>, RuntimeError> {
        let m = peer as usize;
        self.tick_armed[m] = false;
        if self.unacked[m].is_empty() {
            return Ok(Vec::new());
        }
        self.attempts[m] += 1;
        if self.attempts[m] > MAX_ATTEMPTS {
            let (first_seq, first) = self.unacked[m].iter().next().expect("non-empty");
            return Err(RuntimeError::new(format!(
                "machine {} gave up after {} retransmission rounds to machine {peer}: \
                 {} message(s) unacknowledged, oldest is {} #{first_seq}; injected faults: {}",
                self.machine,
                MAX_ATTEMPTS,
                self.unacked[m].len(),
                payload_kind(&first.msg),
                fault_note,
            )));
        }
        let attempt = self.attempts[m];
        let resend: Vec<(u64, Msg, u64)> = self.unacked[m]
            .iter()
            .map(|(s, p)| (*s, p.msg.clone(), p.bytes))
            .collect();
        let mut recorded = Vec::with_capacity(resend.len());
        for (seq, msg, bytes) in resend {
            let step = match &msg {
                Msg::Decision { index, .. } => *index,
                _ => u32::MAX,
            };
            if let Some(edge) = data_edge(&msg) {
                flow.retransmit(edge, self.machine, bytes + ENVELOPE_BYTES);
            }
            net.send(
                peer,
                Msg::Reliable {
                    src: self.machine,
                    seq,
                    payload: Box::new(msg),
                },
                bytes + ENVELOPE_BYTES,
            );
            self.retransmits += 1;
            recorded.push((peer, seq, attempt, step));
        }
        self.arm(net, peer);
        Ok(recorded)
    }
}

/// A [`Net`] adapter routing worker sends through the relay, so host and
/// control-flow-manager code needs no fault awareness at all.
pub struct ReliableNet<'a> {
    /// The underlying transport.
    pub inner: &'a mut dyn Net,
    /// The owning worker's relay state.
    pub relay: &'a mut Relay,
    /// Per-edge flow accounting for inflight windows and retransmissions.
    pub flow: &'a FlowRegistry,
    /// Residency accounting for the relay's retransmit buffer.
    pub mem: &'a MemRegistry,
}

impl Net for ReliableNet<'_> {
    fn send(&mut self, machine: u16, msg: Msg, bytes: u64) {
        self.relay
            .send_via(self.inner, machine, msg, bytes, self.flow, self.mem);
    }

    fn charge(&mut self, ns: u64) {
        self.inner.charge(ns);
    }

    fn schedule(&mut self, delay_ns: u64, machine: u16, msg: Msg) {
        self.inner.schedule(delay_ns, machine, msg);
    }

    fn timer(&mut self, delay_ns: u64, machine: u16, msg: Msg) {
        self.inner.timer(delay_ns, machine, msg);
    }

    fn now_ns(&mut self) -> u64 {
        self.inner.now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CaptureNet {
        sent: Vec<(u16, Msg)>,
        timers: Vec<(u64, u16, Msg)>,
    }

    impl Net for CaptureNet {
        fn send(&mut self, machine: u16, msg: Msg, _bytes: u64) {
            self.sent.push((machine, msg));
        }
        fn charge(&mut self, _ns: u64) {}
        fn schedule(&mut self, _delay_ns: u64, machine: u16, msg: Msg) {
            self.sent.push((machine, msg));
        }
        fn timer(&mut self, delay_ns: u64, machine: u16, msg: Msg) {
            self.timers.push((delay_ns, machine, msg));
        }
        fn now_ns(&mut self) -> u64 {
            0
        }
    }

    fn decision() -> Msg {
        Msg::Decision {
            index: 3,
            block: 1,
            ctx: crate::obs::span::SpanCtx::default(),
        }
    }

    fn flow() -> FlowRegistry {
        FlowRegistry::new(2, 4)
    }

    fn mem() -> MemRegistry {
        MemRegistry::new(2, 4)
    }

    #[test]
    fn disabled_relay_passes_sends_through() {
        let mut relay = Relay::new(0, 2, false);
        let mut net = CaptureNet::default();
        relay.send_via(&mut net, 1, decision(), 16, &flow(), &mem());
        assert!(matches!(net.sent[0].1, Msg::Decision { .. }));
        assert!(net.timers.is_empty());
    }

    #[test]
    fn guarded_remote_sends_are_wrapped_and_armed() {
        let mut relay = Relay::new(0, 2, true);
        let mut net = CaptureNet::default();
        relay.send_via(&mut net, 1, decision(), 16, &flow(), &mem());
        relay.send_via(&mut net, 1, decision(), 16, &flow(), &mem());
        match (&net.sent[0].1, &net.sent[1].1) {
            (Msg::Reliable { seq: 0, src: 0, .. }, Msg::Reliable { seq: 1, .. }) => {}
            other => panic!("expected two envelopes, got {other:?}"),
        }
        assert_eq!(net.timers.len(), 1, "one tick per peer, not per message");
        assert_eq!(net.timers[0].0, BASE_BACKOFF_NS);
    }

    #[test]
    fn local_and_unguarded_sends_bypass_the_relay() {
        let mut relay = Relay::new(0, 2, true);
        let mut net = CaptureNet::default();
        relay.send_via(&mut net, 0, decision(), 16, &flow(), &mem()); // local
        relay.send_via(&mut net, 1, Msg::Start, 0, &flow(), &mem()); // unguarded
        assert!(matches!(net.sent[0].1, Msg::Decision { .. }));
        assert!(matches!(net.sent[1].1, Msg::Start));
        assert!(net.timers.is_empty());
    }

    #[test]
    fn receiver_acks_and_dedups() {
        let mut relay = Relay::new(1, 2, true);
        let mut net = CaptureNet::default();
        let mreg = mem();
        assert!(relay.accept(&mut net, 0, 0, &mreg));
        assert!(!relay.accept(&mut net, 0, 0, &mreg), "duplicate discarded");
        assert!(relay.accept(&mut net, 0, 2, &mreg), "gaps are fine");
        assert!(relay.accept(&mut net, 0, 1, &mreg));
        assert!(
            !relay.accept(&mut net, 0, 1, &mreg),
            "below-watermark duplicate"
        );
        assert_eq!(relay.dups_dropped, 2);
        assert_eq!(net.sent.len(), 5, "every delivery is acked, even dups");
        assert!(net
            .sent
            .iter()
            .all(|(m, s)| *m == 0 && matches!(s, Msg::Ack { peer: 1, .. })));
        assert_eq!(relay.delivered_below[0], 3, "watermark compacts");
        assert!(relay.seen[0].is_empty());
        if mreg.enabled() {
            let table = mreg.snapshot().class_total(MemClass::DedupTable);
            assert_eq!(
                (table.live, table.bytes),
                (0, 0),
                "compacted table holds no residency"
            );
        }
    }

    #[test]
    fn ticks_retransmit_until_acked_with_backoff() {
        let mut relay = Relay::new(0, 2, true);
        let mut net = CaptureNet::default();
        let reg = flow();
        let mreg = mem();
        relay.send_via(&mut net, 1, decision(), 16, &reg, &mreg);
        net.sent.clear();
        net.timers.clear();
        let resent = relay.on_tick(&mut net, 1, "drop 1.00", &reg).unwrap();
        assert_eq!(resent, vec![(1, 0, 1, 3)], "step = the decision's index");
        assert_eq!(net.sent.len(), 1);
        assert_eq!(net.timers.len(), 1);
        assert_eq!(net.timers[0].0, BASE_BACKOFF_NS << 1, "backoff doubled");
        assert_eq!(relay.retransmits, 1);

        relay.on_ack(1, 0, &reg, &mreg);
        net.sent.clear();
        let resent = relay.on_tick(&mut net, 1, "drop 1.00", &reg).unwrap();
        assert!(resent.is_empty(), "nothing unacked, tick disarms");
        assert!(net.sent.is_empty());
        assert_eq!(relay.attempts[1], 0, "attempts reset after drain");
    }

    #[test]
    fn data_resends_charge_per_edge_flow_counters() {
        let mut relay = Relay::new(0, 2, true);
        let mut net = CaptureNet::default();
        let reg = flow();
        let mreg = mem();
        if !reg.enabled() {
            return; // MITOS_FLOW_OFF set in the environment
        }
        let data = Msg::Data {
            edge: 2,
            dst_inst: 0,
            bag_len: 1,
            batch: mitos_lang::Batch::new(),
        };
        relay.send_via(&mut net, 1, data, 40, &reg, &mreg);
        if mreg.enabled() {
            let buf = mreg.snapshot().class_total(MemClass::RelayBuf);
            assert_eq!(buf.live, 1, "one unacked envelope resident");
            assert_eq!(buf.bytes, 40 + ENVELOPE_BYTES);
        }
        relay.on_tick(&mut net, 1, "drop 1.00", &reg).unwrap();
        relay.on_ack(1, 0, &reg, &mreg);
        let report = reg.snapshot();
        let edge = &report.edges[2];
        assert_eq!(edge.retrans_msgs(), 1);
        assert_eq!(edge.retrans_bytes(), 40 + 24, "resend pays envelope too");
        assert_eq!(edge.inflight_hwm(), 1, "window peaked at one unacked msg");
        let report2 = reg.snapshot();
        assert_eq!(
            report2.edges[2].retrans_bytes(),
            64,
            "ack retired the window without disturbing retransmit totals"
        );
        if mreg.enabled() {
            let buf = mreg.snapshot().class_total(MemClass::RelayBuf);
            assert_eq!((buf.live, buf.bytes), (0, 0), "ack drained the buffer");
            assert_eq!(
                mreg.snapshot().class_total(MemClass::RelayBuf).bytes_hwm,
                40 + ENVELOPE_BYTES,
                "peak survives the drain"
            );
        }
    }

    #[test]
    fn exhausted_attempts_error_names_the_fault() {
        let mut relay = Relay::new(0, 2, true);
        let mut net = CaptureNet::default();
        let reg = flow();
        relay.send_via(&mut net, 1, decision(), 16, &reg, &mem());
        let mut last = Ok(Vec::new());
        for _ in 0..=MAX_ATTEMPTS {
            last = relay.on_tick(&mut net, 1, "drop 1.00 (fault seed 0x7)", &reg);
        }
        let err = last.expect_err("attempt budget exhausted");
        assert!(err.message.contains("gave up"), "{}", err.message);
        assert!(
            err.message.contains("decision broadcast"),
            "{}",
            err.message
        );
        assert!(err.message.contains("drop 1.00"), "{}", err.message);
    }

    /// The dedup table must stay bounded by the compaction watermark on a
    /// long run, not grow monotonically: entries above the watermark are
    /// exactly the out-of-order gap, and a dense delivery drains the table
    /// back to empty.
    #[test]
    fn dedup_table_is_bounded_by_the_watermark() {
        let mut relay = Relay::new(1, 2, true);
        let mut net = CaptureNet::default();
        let mreg = mem();
        // Seeded xorshift over delivery order: deliver seqs in windows of
        // 16, each window shuffled deterministically, with duplicates
        // sprinkled in — a long reordered-and-duplicated stream.
        let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut step = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut max_table = 0usize;
        for window in 0..64u64 {
            let base = window * 16;
            let mut seqs: Vec<u64> = (base..base + 16).collect();
            // Fisher-Yates with the seeded generator.
            for i in (1..seqs.len()).rev() {
                let j = (step() % (i as u64 + 1)) as usize;
                seqs.swap(i, j);
            }
            for &seq in &seqs {
                relay.accept(&mut net, 0, seq, &mreg);
                if step() % 4 == 0 {
                    relay.accept(&mut net, 0, seq, &mreg); // duplicate
                }
                max_table = max_table.max(relay.seen[0].len());
                assert!(
                    relay.seen[0].len() <= 16,
                    "table exceeded the reorder window: {} entries",
                    relay.seen[0].len()
                );
            }
            // A window boundary is a dense prefix: compaction must have
            // folded everything into the watermark.
            assert!(
                relay.seen[0].is_empty(),
                "dense prefix not compacted at window {window}"
            );
            assert_eq!(relay.delivered_below[0], base + 16);
        }
        assert!(max_table > 1, "shuffle produced no reordering to test");
        if mreg.enabled() {
            let table = mreg.snapshot().class_total(MemClass::DedupTable);
            assert_eq!((table.live, table.bytes), (0, 0), "drained to watermark");
            assert!(
                table.bytes_hwm >= DEDUP_ENTRY_BYTES,
                "peak recorded while the gap was open"
            );
        }
    }
}
