//! Graphviz (DOT) export of the logical dataflow job, in the style of the
//! paper's Figure 3b: basic blocks as dashed clusters, Φ-nodes filled
//! black, condition nodes colored, conditional edges dashed and colored
//! like their deciding condition node, wrapped scalars thin-bordered.

use crate::graph::{LogicalGraph, NodeKind, OpId, Parallelism, Partitioning};
use crate::path::PathRules;
use std::fmt::Write as _;

/// Colors assigned to condition nodes (cycled).
const CONDITION_COLORS: [&str; 4] = ["blue", "brown", "darkgreen", "purple"];

/// Renders the dataflow as a DOT digraph.
pub fn to_dot(graph: &LogicalGraph) -> String {
    let rules = PathRules::build(graph);
    let mut out = String::new();
    let _ = writeln!(out, "digraph mitos {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    // Color per condition node's block (its decisions gate same-colored
    // conditional edges).
    let mut cond_color: Vec<Option<&str>> = vec![None; graph.func.block_count()];
    let mut next_color = 0usize;
    for node in &graph.nodes {
        if node.condition.is_some() {
            cond_color[node.block as usize] =
                Some(CONDITION_COLORS[next_color % CONDITION_COLORS.len()]);
            next_color += 1;
        }
    }

    // Nodes grouped into block clusters (the dotted rectangles of Fig. 3).
    for block in 0..graph.func.block_count() {
        let members: Vec<(OpId, &crate::graph::LogicalNode)> = graph
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (i as OpId, n))
            .filter(|(_, n)| n.block as usize == block)
            .collect();
        if members.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  subgraph cluster_block{block} {{");
        let _ = writeln!(out, "    label=\"block {block}\"; style=dashed;");
        for (id, node) in members {
            let mut attrs = Vec::new();
            match node.kind {
                NodeKind::Phi => {
                    attrs.push("style=filled".to_string());
                    attrs.push("fillcolor=black".to_string());
                    attrs.push("fontcolor=white".to_string());
                }
                _ => {
                    if node.condition.is_some() {
                        let color = cond_color[node.block as usize].unwrap_or("blue");
                        attrs.push("style=filled".to_string());
                        attrs.push(format!("fillcolor={color}"));
                        attrs.push("fontcolor=white".to_string());
                    } else if node.parallelism == Parallelism::Single {
                        // Wrapped scalars: thin borders in the paper.
                        attrs.push("penwidth=0.5".to_string());
                    } else {
                        attrs.push("penwidth=2".to_string());
                    }
                }
            }
            let label = format!("{}\\n{}", node.name, node.kind.mnemonic());
            let _ = writeln!(
                out,
                "    n{id} [label=\"{label}\", {}];",
                attrs.join(", ")
            );
        }
        let _ = writeln!(out, "  }}");
    }

    // Edges; conditional (watched) edges are dashed and colored like the
    // condition that gates the target block.
    for (eid, edge) in graph.edges.iter().enumerate() {
        let r = &rules.edges[eid];
        let mut attrs: Vec<String> = Vec::new();
        if !r.immediate {
            attrs.push("style=dashed".to_string());
            if let Some(color) = cond_color
                .get(r.dst_block as usize)
                .copied()
                .flatten()
                .or_else(|| cond_color.get(r.src_block as usize).copied().flatten())
            {
                attrs.push(format!("color={color}"));
            }
        }
        match edge.partitioning {
            Partitioning::Hash => attrs.push("label=\"hash\"".to_string()),
            Partitioning::Broadcast => attrs.push("label=\"bcast\"".to_string()),
            Partitioning::Gather => attrs.push("label=\"gather\"".to_string()),
            Partitioning::Forward => {}
        }
        let _ = writeln!(
            out,
            "  n{} -> n{} [{}];",
            edge.src,
            edge.dst,
            attrs.join(", ")
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LogicalGraph;

    fn dot_of(src: &str) -> String {
        to_dot(&LogicalGraph::build(&mitos_ir::compile_str(src).unwrap()).unwrap())
    }

    #[test]
    fn renders_clusters_and_edges() {
        let dot = dot_of(
            "i = 0; while (i < 3) { b = bag((i, 1)); i = i + 1; } output(i, \"i\");",
        );
        assert!(dot.starts_with("digraph mitos {"));
        assert!(dot.contains("cluster_block0"), "{dot}");
        assert!(dot.contains("fillcolor=black"), "phi present: {dot}");
        assert!(dot.contains("style=dashed"), "conditional edges: {dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn condition_nodes_are_colored() {
        let dot = dot_of("c = true; if (c) { x = 1; } else { x = 2; } output(x, \"x\");");
        assert!(dot.contains("fillcolor=blue"), "{dot}");
    }

    #[test]
    fn hash_edges_are_labelled() {
        let dot = dot_of(
            "a = bag((1, 2)); b = bag((1, 3)); c = a join b; output(c.count(), \"n\");",
        );
        assert!(dot.contains("label=\"hash\""), "{dot}");
        assert!(dot.contains("label=\"gather\""), "{dot}");
    }

    #[test]
    fn node_count_matches_graph() {
        let src = "a = bag(1); b = a.map(x => x); output(b, \"b\");";
        let graph = LogicalGraph::build(&mitos_ir::compile_str(src).unwrap()).unwrap();
        let dot = to_dot(&graph);
        let rendered = dot.matches("[label=\"").count();
        // One label per node plus edge labels; at least every node renders.
        assert!(rendered >= graph.nodes.len(), "{dot}");
    }
}
