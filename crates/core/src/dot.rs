//! Graphviz (DOT) export of the logical dataflow job, in the style of the
//! paper's Figure 3b: basic blocks as dashed clusters, Φ-nodes filled
//! black, condition nodes colored, conditional edges dashed and colored
//! like their deciding condition node, wrapped scalars thin-bordered.
//!
//! Runtime annotations are composed through one options struct,
//! [`DotOverlay`]: observed metrics counts, critical-path highlighting,
//! data-plane flow heat, and state-residency heat each activate when the
//! corresponding field is set, and freely combine.

use crate::graph::{LogicalGraph, NodeKind, OpId, Parallelism, Partitioning};
use crate::obs::{CriticalPath, FlowReport, MemReport, MetricsRegistry};
use crate::path::PathRules;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Colors assigned to condition nodes (cycled).
const CONDITION_COLORS: [&str; 4] = ["blue", "brown", "darkgreen", "purple"];

/// Optional runtime overlays for [`to_dot`]. `DotOverlay::default()`
/// renders the plain structural graph; set any combination of fields to
/// annotate it. Replaces the former `to_dot_with_metrics` /
/// `to_dot_annotated` / `to_dot_with_flow` / `to_dot_with_mem` family.
#[derive(Clone, Copy, Default)]
pub struct DotOverlay<'a> {
    /// Observed runtime counts (from [`crate::obs::ObsReport::metrics`]):
    /// per-node `bags`/`emitted`/`hoists`, per-conditional-edge
    /// `sent`/`drop`.
    pub metrics: Option<&'a MetricsRegistry>,
    /// Critical-path highlighting ([`crate::obs::critical_path`]):
    /// operators and logical edges on the traced run's critical path
    /// render bold red with their exclusive time contribution.
    pub critical: Option<&'a CriticalPath>,
    /// Data-plane heat from a run's [`FlowReport`]: edge width and color
    /// scale with observed serialized bytes (hottest edges bold red),
    /// labels carry bytes/elements.
    pub flow: Option<&'a FlowReport>,
    /// State-residency heat from a run's [`MemReport`]: node border width
    /// and color scale with each operator's peak resident bytes (hungriest
    /// operators bold red), labels carry the peak.
    pub mem: Option<&'a MemReport>,
}

/// Renders the dataflow as a DOT digraph, annotated with whichever
/// overlays are set in `overlay` (pass `&DotOverlay::default()` for the
/// plain structural graph).
pub fn to_dot(graph: &LogicalGraph, overlay: &DotOverlay) -> String {
    let DotOverlay {
        metrics,
        critical,
        flow,
        mem,
    } = *overlay;
    let crit_ops: BTreeMap<u32, u64> = critical
        .map(|c| c.op_contrib.iter().copied().collect())
        .unwrap_or_default();
    let crit_edges: BTreeMap<u32, u64> = critical
        .map(|c| c.edge_contrib.iter().copied().collect())
        .unwrap_or_default();
    // Per-operator peak resident bytes; the hungriest normalizes the heat.
    let mem_ops: BTreeMap<u32, u64> = mem
        .map(|m| {
            m.ops_by_peak()
                .into_iter()
                .filter(|&(_, peak, _)| peak > 0)
                .map(|(op, peak, _)| (op, peak))
                .collect()
        })
        .unwrap_or_default();
    let max_mem_peak = mem_ops.values().copied().max().unwrap_or(0);
    let rules = PathRules::build(graph);
    let mut out = String::new();
    let _ = writeln!(out, "digraph mitos {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    // Color per condition node's block (its decisions gate same-colored
    // conditional edges).
    let mut cond_color: Vec<Option<&str>> = vec![None; graph.func.block_count()];
    let mut next_color = 0usize;
    for node in &graph.nodes {
        if node.condition.is_some() {
            cond_color[node.block as usize] =
                Some(CONDITION_COLORS[next_color % CONDITION_COLORS.len()]);
            next_color += 1;
        }
    }

    // Nodes grouped into block clusters (the dotted rectangles of Fig. 3).
    for block in 0..graph.func.block_count() {
        let members: Vec<(OpId, &crate::graph::LogicalNode)> = graph
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (i as OpId, n))
            .filter(|(_, n)| n.block as usize == block)
            .collect();
        if members.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  subgraph cluster_block{block} {{");
        let _ = writeln!(out, "    label=\"block {block}\"; style=dashed;");
        for (id, node) in members {
            let mut attrs = Vec::new();
            match node.kind {
                NodeKind::Phi => {
                    attrs.push("style=filled".to_string());
                    attrs.push("fillcolor=black".to_string());
                    attrs.push("fontcolor=white".to_string());
                }
                _ => {
                    if node.condition.is_some() {
                        let color = cond_color[node.block as usize].unwrap_or("blue");
                        attrs.push("style=filled".to_string());
                        attrs.push(format!("fillcolor={color}"));
                        attrs.push("fontcolor=white".to_string());
                    } else if node.parallelism == Parallelism::Single {
                        // Wrapped scalars: thin borders in the paper.
                        attrs.push("penwidth=0.5".to_string());
                    } else {
                        attrs.push("penwidth=2".to_string());
                    }
                }
            }
            let mut label = format!("{}\\n{}", node.name, node.kind.label());
            if let Some(m) = metrics.and_then(|m| m.ops.get(id as usize)) {
                let _ = write!(
                    label,
                    "\\nbags={} emitted={}",
                    m.bags_opened, m.elements_emitted
                );
                if m.hoist_hits > 0 {
                    let _ = write!(label, " hoists={}", m.hoist_hits);
                }
            }
            if let Some(&ns) = crit_ops.get(&id) {
                // Last color/penwidth wins in DOT, so the highlight
                // overrides any styling pushed above.
                attrs.push("color=red".to_string());
                attrs.push("penwidth=3".to_string());
                let _ = write!(label, "\\ncrit={}", crate::obs::fmt_ns(ns));
            }
            if let Some(&peak) = mem_ops.get(&id) {
                // Heat scales with this operator's share of the hungriest
                // operator's peak residency; operators that never held
                // state keep the plain styling.
                let frac = peak as f64 / max_mem_peak.max(1) as f64;
                let color = if frac > 0.66 {
                    "red"
                } else if frac > 0.33 {
                    "orange"
                } else {
                    "gray40"
                };
                attrs.push(format!("color={color}"));
                attrs.push(format!("penwidth={:.1}", 1.0 + 4.0 * frac));
                let _ = write!(label, "\\npeak={}", crate::obs::flow::fmt_bytes(peak));
            }
            let _ = writeln!(out, "    n{id} [label=\"{label}\", {}];", attrs.join(", "));
        }
        let _ = writeln!(out, "  }}");
    }

    // Hottest edge's byte count normalizes the heat overlay.
    let max_flow_bytes = flow
        .map(|f| f.edges.iter().map(|e| e.bytes()).max().unwrap_or(0))
        .unwrap_or(0);
    // Edges; conditional (watched) edges are dashed and colored like the
    // condition that gates the target block.
    for (eid, edge) in graph.edges.iter().enumerate() {
        let r = &rules.edges[eid];
        let mut attrs: Vec<String> = Vec::new();
        let mut label_parts: Vec<String> = Vec::new();
        if !r.immediate {
            attrs.push("style=dashed".to_string());
            if let Some(color) = cond_color
                .get(r.dst_block as usize)
                .copied()
                .flatten()
                .or_else(|| cond_color.get(r.src_block as usize).copied().flatten())
            {
                attrs.push(format!("color={color}"));
            }
            if let Some(em) = metrics.and_then(|m| m.edges.get(eid)) {
                if em.sent_bags + em.dropped_bags > 0 {
                    label_parts.push(format!("sent={} drop={}", em.sent_bags, em.dropped_bags));
                }
            }
        }
        match edge.partitioning {
            Partitioning::Hash => label_parts.insert(0, "hash".to_string()),
            Partitioning::Broadcast => label_parts.insert(0, "bcast".to_string()),
            Partitioning::Gather => label_parts.insert(0, "gather".to_string()),
            Partitioning::Forward => {}
        }
        if let Some(&ns) = crit_edges.get(&(eid as u32)) {
            attrs.push("color=red".to_string());
            attrs.push("penwidth=3".to_string());
            label_parts.push(format!("crit={}", crate::obs::fmt_ns(ns)));
        }
        if let Some(ef) = flow
            .and_then(|f| f.edges.get(eid))
            .filter(|ef| ef.bytes() > 0)
        {
            // Heat scales with this edge's share of the hottest edge's
            // bytes; edges that carried nothing keep the plain styling.
            let frac = ef.bytes() as f64 / max_flow_bytes.max(1) as f64;
            let color = if frac > 0.66 {
                "red"
            } else if frac > 0.33 {
                "orange"
            } else {
                "gray40"
            };
            attrs.push(format!("color={color}"));
            attrs.push(format!("penwidth={:.1}", 1.0 + 4.0 * frac));
            label_parts.push(format!(
                "{} / {} elems",
                crate::obs::flow::fmt_bytes(ef.bytes()),
                ef.elems_out()
            ));
        }
        if !label_parts.is_empty() {
            attrs.push(format!("label=\"{}\"", label_parts.join("\\n")));
        }
        let _ = writeln!(
            out,
            "  n{} -> n{} [{}];",
            edge.src,
            edge.dst,
            attrs.join(", ")
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LogicalGraph;

    fn dot_of(src: &str) -> String {
        to_dot(
            &LogicalGraph::build(&mitos_ir::compile_str(src).unwrap()).unwrap(),
            &DotOverlay::default(),
        )
    }

    #[test]
    fn renders_clusters_and_edges() {
        let dot = dot_of("i = 0; while (i < 3) { b = bag((i, 1)); i = i + 1; } output(i, \"i\");");
        assert!(dot.starts_with("digraph mitos {"));
        assert!(dot.contains("cluster_block0"), "{dot}");
        assert!(dot.contains("fillcolor=black"), "phi present: {dot}");
        assert!(dot.contains("style=dashed"), "conditional edges: {dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn condition_nodes_are_colored() {
        let dot = dot_of("c = true; if (c) { x = 1; } else { x = 2; } output(x, \"x\");");
        assert!(dot.contains("fillcolor=blue"), "{dot}");
    }

    #[test]
    fn hash_edges_are_labelled() {
        let dot =
            dot_of("a = bag((1, 2)); b = bag((1, 3)); c = a join b; output(c.count(), \"n\");");
        assert!(dot.contains("label=\"hash\""), "{dot}");
        assert!(dot.contains("label=\"gather\""), "{dot}");
    }

    #[test]
    fn node_count_matches_graph() {
        let src = "a = bag(1); b = a.map(x => x); output(b, \"b\");";
        let graph = LogicalGraph::build(&mitos_ir::compile_str(src).unwrap()).unwrap();
        let dot = to_dot(&graph, &DotOverlay::default());
        let rendered = dot.matches("[label=\"").count();
        // One label per node plus edge labels; at least every node renders.
        assert!(rendered >= graph.nodes.len(), "{dot}");
    }

    #[test]
    fn metrics_overlay_annotates_nodes_and_edges() {
        use crate::obs::ObsLevel;
        use crate::rt::EngineConfig;
        use mitos_fs::InMemoryFs;
        use mitos_sim::SimConfig;

        let src = r#"
            t = 0;
            for i = 1 to 3 {
                if (i % 2 == 0) { t = t + i; }
            }
            output(t, "t");
        "#;
        let func = mitos_ir::compile_str(src).unwrap();
        let cfg = EngineConfig::new().with_obs(ObsLevel::Metrics);
        // The overlay must be laid over the graph the engine actually ran
        // (post-fusion), so indices line up with the metrics registry.
        let graph = crate::fuse::planned_graph(&func, &cfg).unwrap();
        let fs = InMemoryFs::new();
        let r = crate::engine::run_sim(&func, &fs, cfg, SimConfig::with_machines(2)).unwrap();
        let obs = r.obs.expect("metrics collected");
        let dot = to_dot(
            &graph,
            &DotOverlay {
                metrics: Some(&obs.metrics),
                ..DotOverlay::default()
            },
        );
        assert!(dot.contains("bags="), "node overlay: {dot}");
        assert!(dot.contains("emitted="), "node overlay: {dot}");
        assert!(
            dot.contains("sent=") || dot.contains("drop="),
            "conditional edge overlay: {dot}"
        );
    }

    #[test]
    fn flow_overlay_heats_data_edges() {
        use crate::rt::EngineConfig;
        use mitos_fs::InMemoryFs;
        use mitos_sim::SimConfig;

        let src = r#"
            total = 0;
            i = 0;
            while (i < 3) {
                b = bag((1, i), (2, i), (3, i));
                total = total + b.count();
                i = i + 1;
            }
            output(total, "t");
        "#;
        let func = mitos_ir::compile_str(src).unwrap();
        let cfg = EngineConfig::default();
        let graph = crate::fuse::planned_graph(&func, &cfg).unwrap();
        let fs = InMemoryFs::new();
        let r = crate::engine::run_sim(&func, &fs, cfg, SimConfig::with_machines(2)).unwrap();
        if !r.flow.enabled {
            return; // MITOS_FLOW_OFF in the environment
        }
        let dot = to_dot(
            &graph,
            &DotOverlay {
                flow: Some(&r.flow),
                ..DotOverlay::default()
            },
        );
        assert!(dot.contains("elems"), "flow labels present: {dot}");
        assert!(dot.contains("penwidth=5.0"), "hottest edge bold: {dot}");
        assert!(dot.contains("color=red"), "hottest edge red: {dot}");
    }

    #[test]
    fn mem_overlay_heats_stateful_nodes() {
        use crate::rt::EngineConfig;
        use mitos_fs::InMemoryFs;
        use mitos_sim::SimConfig;

        let src = r#"
            total = 0;
            i = 0;
            while (i < 3) {
                b = bag((1, i), (2, i), (3, i));
                total = total + b.count();
                i = i + 1;
            }
            output(total, "t");
        "#;
        let func = mitos_ir::compile_str(src).unwrap();
        let cfg = EngineConfig::default();
        let graph = crate::fuse::planned_graph(&func, &cfg).unwrap();
        let fs = InMemoryFs::new();
        let r = crate::engine::run_sim(&func, &fs, cfg, SimConfig::with_machines(2)).unwrap();
        if !r.mem.enabled {
            return; // MITOS_MEM_OFF in the environment
        }
        let dot = to_dot(
            &graph,
            &DotOverlay {
                mem: Some(&r.mem),
                ..DotOverlay::default()
            },
        );
        assert!(dot.contains("peak="), "mem labels present: {dot}");
        assert!(dot.contains("penwidth=5.0"), "hungriest node bold: {dot}");
        assert!(dot.contains("color=red"), "hungriest node red: {dot}");
    }

    #[test]
    fn critical_path_overlay_highlights_bottleneck() {
        use crate::obs::{critical_path, ObsLevel};
        use crate::rt::EngineConfig;
        use mitos_fs::InMemoryFs;
        use mitos_sim::SimConfig;

        let src = r#"
            total = 0;
            i = 0;
            while (i < 3) {
                b = bag((1, i), (2, i));
                total = total + b.count();
                i = i + 1;
            }
            output(total, "t");
        "#;
        let func = mitos_ir::compile_str(src).unwrap();
        let cfg = EngineConfig::new().with_obs(ObsLevel::Trace);
        let graph = crate::fuse::planned_graph(&func, &cfg).unwrap();
        let fs = InMemoryFs::new();
        let r = crate::engine::run_sim(&func, &fs, cfg, SimConfig::with_machines(2)).unwrap();
        let obs = r.obs.expect("trace collected");
        let critical = critical_path(&obs, r.sim.end_time);
        assert!(!critical.steps.is_empty(), "critical path found");
        let dot = to_dot(
            &graph,
            &DotOverlay {
                metrics: Some(&obs.metrics),
                critical: Some(&critical),
                ..DotOverlay::default()
            },
        );
        assert!(dot.contains("crit="), "critical overlay present: {dot}");
        assert!(dot.contains("color=red"), "highlight present: {dot}");
    }
}
