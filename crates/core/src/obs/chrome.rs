//! Chrome trace-event JSON exporter.
//!
//! Produces the [Trace Event Format] consumed by `chrome://tracing` and
//! Perfetto: one *process* per machine, one *thread lane* per operator
//! (extra lanes appear when loop pipelining overlaps bag computations of
//! the same operator). Each bag's open→finalize life is a paired `B`/`E`
//! duration event; producer→consumer bag dependencies render as `s`/`f`
//! flow arrows between the slices; everything else (input selection,
//! conditional send resolution, punctuations, decision broadcasts, …)
//! renders as instant events on the operator's lane.
//!
//! The writer is dependency-free: JSON is emitted by hand, and
//! [`validate_json`] provides a small self-contained checker used by the
//! test-suite to prove the output parses.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use super::event::{EventKind, OP_NONE};
use super::ObsReport;
use crate::engine::OpStats;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Thread id used for worker-level (control-flow manager) events.
const TID_CONTROL: u64 = u32::MAX as u64;
/// Lane stride per operator: lanes `op*1024 .. op*1024+slots` hold the
/// operator's (possibly pipelined-overlapping) bag computations.
const LANES_PER_OP: u64 = 1024;

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Microsecond timestamp with nanosecond fraction, as Chrome expects.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn args_json(kind: &EventKind) -> String {
    match kind {
        EventKind::BagOpened { pos, bag_len } => {
            format!("{{\"pos\":{pos},\"bag_len\":{bag_len}}}")
        }
        EventKind::InputSelected {
            edge,
            bag_len,
            rule,
        } => format!(
            "{{\"edge\":{edge},\"bag_len\":{bag_len},\"rule\":\"{}\"}}",
            rule.label()
        ),
        EventKind::HoistHit { pos, bag_len } => {
            format!("{{\"pos\":{pos},\"bag_len\":{bag_len}}}")
        }
        EventKind::Emitted { bag_len, count } => {
            format!("{{\"bag_len\":{bag_len},\"count\":{count}}}")
        }
        EventKind::SendResolved {
            edge,
            bag_len,
            sent,
            buffered,
            latency_ns,
        } => format!(
            "{{\"edge\":{edge},\"bag_len\":{bag_len},\"sent\":{sent},\
             \"buffered\":{buffered},\"latency_ns\":{latency_ns}}}"
        ),
        EventKind::BagFinalized { pos, bag_len } => {
            format!("{{\"pos\":{pos},\"bag_len\":{bag_len}}}")
        }
        EventKind::PunctuationSent {
            edge,
            bag_len,
            count,
        } => format!("{{\"edge\":{edge},\"bag_len\":{bag_len},\"count\":{count}}}"),
        EventKind::SinkWrote { bag_len, count } => {
            format!("{{\"bag_len\":{bag_len},\"count\":{count}}}")
        }
        EventKind::DecisionBroadcast { pos, block } => {
            format!("{{\"pos\":{pos},\"block\":{block}}}")
        }
        EventKind::DecisionReceived { pos, block, parent } => {
            format!("{{\"pos\":{pos},\"block\":{block},\"parent\":{parent}}}")
        }
        EventKind::PathAppended { pos, block } => {
            format!("{{\"pos\":{pos},\"block\":{block}}}")
        }
        EventKind::IoStarted { bag_len, delay_ns } => {
            format!("{{\"bag_len\":{bag_len},\"delay_ns\":{delay_ns}}}")
        }
        EventKind::IoFinished { bag_len, count } => {
            format!("{{\"bag_len\":{bag_len},\"count\":{count}}}")
        }
        EventKind::StepReleased { pos } => format!("{{\"pos\":{pos}}}"),
        EventKind::RetransmitSent {
            peer,
            seq,
            attempt,
            step,
        } => {
            format!("{{\"peer\":{peer},\"seq\":{seq},\"attempt\":{attempt},\"step\":{step}}}")
        }
        EventKind::DuplicateDropped { peer, seq } => {
            format!("{{\"peer\":{peer},\"seq\":{seq}}}")
        }
    }
}

/// One bag's open→finalize interval on a machine.
struct Interval {
    start: u64,
    end: u64,
    bag_len: u32,
    pos: u32,
}

/// Renders the merged event stream as Chrome trace-event JSON
/// (`{"traceEvents": [...]}`). `ops` supplies operator names for the lane
/// metadata; unknown operators fall back to `op<N>`.
pub fn chrome_trace(report: &ObsReport, ops: &[OpStats]) -> String {
    let mut names: HashMap<u32, String> = HashMap::new();
    for s in ops {
        names.insert(s.op, format!("{} [{}]", s.name, s.kind));
    }
    let op_name =
        |op: u32| -> String { names.get(&op).cloned().unwrap_or_else(|| format!("op{op}")) };

    let max_ts = report.events.iter().map(|e| e.t_ns).max().unwrap_or(0);

    // Pair bag open/finalize into intervals per (machine, op). A machine
    // hosts at most one instance per operator, so (machine, op, bag_len)
    // identifies a bag computation.
    let mut open: HashMap<(u16, u32, u32), (u64, u32)> = HashMap::new();
    let mut intervals: HashMap<(u16, u32), Vec<Interval>> = HashMap::new();
    for e in &report.events {
        match e.kind {
            EventKind::BagOpened { pos, bag_len } => {
                open.insert((e.machine, e.op, bag_len), (e.t_ns, pos));
            }
            EventKind::BagFinalized { pos, bag_len } => {
                let (start, _) = open
                    .remove(&(e.machine, e.op, bag_len))
                    .unwrap_or((e.t_ns, pos));
                intervals
                    .entry((e.machine, e.op))
                    .or_default()
                    .push(Interval {
                        start,
                        // A zero-duration interval would tie its own B and E
                        // timestamps, which viewers may reorder; stretch it to
                        // 1 ns so every pair nests under any stable ts sort.
                        end: e.t_ns.max(start + 1),
                        bag_len,
                        pos,
                    });
            }
            _ => {}
        }
    }
    // Bags still open at the end of the run close at the last timestamp.
    for ((machine, op, bag_len), (start, pos)) in open {
        intervals.entry((machine, op)).or_default().push(Interval {
            start,
            end: max_ts.max(start + 1),
            bag_len,
            pos,
        });
    }

    // Greedy lane assignment: overlapping intervals of one operator (loop
    // pipelining) go to separate lanes so B/E events nest properly.
    // records: (t_ns, order, json) — order breaks timestamp ties so, within
    // a lane, a flow start precedes the E it binds to, an E precedes a B
    // sharing its timestamp, and a flow finish lands after the consumer's B.
    let mut records: Vec<(u64, u8, String)> = Vec::new();
    let mut lanes_used: HashMap<(u16, u32), u64> = HashMap::new();
    let mut bag_lane: HashMap<(u16, u32, u32), (u64, u64, u64)> = HashMap::new();
    for ((machine, op), mut ivs) in intervals {
        ivs.sort_by_key(|iv| (iv.start, iv.end));
        let mut lane_free_at: Vec<u64> = Vec::new();
        for iv in ivs {
            let slot = match lane_free_at.iter().position(|&f| f <= iv.start) {
                Some(s) => s,
                None => {
                    lane_free_at.push(0);
                    lane_free_at.len() - 1
                }
            };
            lane_free_at[slot] = iv.end;
            let tid = op as u64 * LANES_PER_OP + slot as u64;
            bag_lane.insert((machine, op, iv.bag_len), (tid, iv.start, iv.end));
            let mut name = String::new();
            esc(&mut name, &op_name(op));
            records.push((
                iv.start,
                2,
                format!(
                    "{{\"ph\":\"B\",\"pid\":{machine},\"tid\":{tid},\"ts\":{},\
                     \"name\":\"{name}\",\"args\":{{\"pos\":{},\"bag_len\":{}}}}}",
                    ts_us(iv.start),
                    iv.pos,
                    iv.bag_len
                ),
            ));
            records.push((
                iv.end,
                1,
                format!(
                    "{{\"ph\":\"E\",\"pid\":{machine},\"tid\":{tid},\"ts\":{}}}",
                    ts_us(iv.end)
                ),
            ));
            let used = lanes_used.entry((machine, op)).or_insert(0);
            *used = (*used).max(slot as u64 + 1);
        }
    }

    // Flow events: one arrow per producer→consumer bag dependency,
    // reconstructed the same way the critical-path analyzer does it
    // (each `InputSelected` belongs to the bag its operator opened last
    // on that machine; the producing operator comes from the edge table).
    // The arrow starts inside the producer's slice (at its E, which the
    // `s` order key precedes) and binds to the consumer's enclosing
    // slice at its B (`"bp":"e"`).
    // A bag occurrence on a worker: (machine, operator, bag id length).
    type BagRef = (u16, u32, u32);
    let mut open_now: HashMap<(u16, u32), u32> = HashMap::new();
    let mut selections: Vec<(BagRef, u32, u32)> = Vec::new();
    for e in &report.events {
        match e.kind {
            EventKind::BagOpened { bag_len, .. } => {
                open_now.insert((e.machine, e.op), bag_len);
            }
            EventKind::InputSelected { edge, bag_len, .. } => {
                if let Some(&cur) = open_now.get(&(e.machine, e.op)) {
                    selections.push(((e.machine, e.op, cur), edge, bag_len));
                }
            }
            _ => {}
        }
    }
    let mut producer_machines: Vec<((u32, u32), u16)> = bag_lane
        .keys()
        .map(|&(m, op, len)| ((op, len), m))
        .collect();
    producer_machines.sort_unstable();
    let mut arrows: Vec<(BagRef, BagRef)> = Vec::new();
    for &(consumer, edge, sel_len) in &selections {
        let Some(&(src_op, _)) = report.edges.get(edge as usize) else {
            continue;
        };
        let lo = producer_machines.partition_point(|&(k, _)| k < (src_op, sel_len));
        for &(k, m) in &producer_machines[lo..] {
            if k != (src_op, sel_len) {
                break;
            }
            let producer = (m, src_op, sel_len);
            if producer != consumer {
                arrows.push((producer, consumer));
            }
        }
    }
    arrows.sort_unstable();
    arrows.dedup();
    for (id, (producer, consumer)) in arrows.into_iter().enumerate() {
        let (Some(&(p_tid, p_start, p_end)), Some(&(c_tid, c_start, c_end))) =
            (bag_lane.get(&producer), bag_lane.get(&consumer))
        else {
            continue;
        };
        // Flow timestamps must not decrease and each endpoint must lie
        // inside its slice; under loop pipelining a consumer can open
        // before its (streaming) producer finalizes, so clamp both ends.
        let s_ts = p_end.min(c_start).max(p_start);
        let f_ts = c_start.max(s_ts);
        if f_ts > c_end {
            continue;
        }
        // Order keys keep the endpoints inside their B..E pairs when
        // timestamps tie with a slice boundary on the same lane.
        let s_order = if s_ts == p_end { 0 } else { 3 };
        let f_order = if f_ts == c_end { 0 } else { 3 };
        let common = format!("\"cat\":\"bag-dep\",\"name\":\"bag\",\"id\":{id}");
        records.push((
            s_ts,
            s_order,
            format!(
                "{{\"ph\":\"s\",{common},\"pid\":{},\"tid\":{p_tid},\"ts\":{}}}",
                producer.0,
                ts_us(s_ts)
            ),
        ));
        records.push((
            f_ts,
            f_order,
            format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",{common},\"pid\":{},\"tid\":{c_tid},\
                 \"ts\":{}}}",
                consumer.0,
                ts_us(f_ts)
            ),
        ));
    }

    // Instant events on the operator's first lane (or the control lane).
    let mut machines: Vec<u16> = Vec::new();
    for e in &report.events {
        if !machines.contains(&e.machine) {
            machines.push(e.machine);
        }
        if matches!(
            e.kind,
            EventKind::BagOpened { .. } | EventKind::BagFinalized { .. }
        ) {
            continue;
        }
        let tid = if e.op == OP_NONE {
            TID_CONTROL
        } else {
            lanes_used.entry((e.machine, e.op)).or_insert(1);
            e.op as u64 * LANES_PER_OP
        };
        records.push((
            e.t_ns,
            3,
            format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{tid},\"ts\":{},\
                 \"name\":\"{}\",\"args\":{}}}",
                e.machine,
                ts_us(e.t_ns),
                e.kind.name(),
                args_json(&e.kind)
            ),
        ));
    }
    records.sort_by_key(|r| (r.0, r.1));

    // Metadata first: process names per machine, thread names per lane.
    machines.sort_unstable();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, rec: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(rec);
    };
    for m in &machines {
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{m},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"machine {m}\"}}}}"
            ),
        );
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{m},\"tid\":{TID_CONTROL},\
                 \"name\":\"thread_name\",\"args\":{{\"name\":\"control-flow\"}}}}"
            ),
        );
    }
    let mut lanes: Vec<(&(u16, u32), &u64)> = lanes_used.iter().collect();
    lanes.sort();
    for (&(machine, op), &n_lanes) in lanes {
        for slot in 0..n_lanes {
            let tid = op as u64 * LANES_PER_OP + slot;
            let label = if slot == 0 {
                op_name(op)
            } else {
                format!("{} (pipelined +{slot})", op_name(op))
            };
            let mut name = String::new();
            esc(&mut name, &label);
            push(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{machine},\"tid\":{tid},\
                     \"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }
    }
    for (_, _, rec) in &records {
        push(&mut out, &mut first, rec);
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

// --- Minimal JSON validator (tests; no external parser available) --------

/// Checks that `s` is one well-formed JSON value. Returns the byte offset
/// and a description on failure. Not a full RFC 8259 validator (accepts
/// any non-control characters in strings) but strict about structure.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, "true"),
        Some(b'f') => literal(b, i, "false"),
        Some(b'n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        other => Err(format!("unexpected {other:?} at byte {i}")),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len()
        && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    if *i == start {
        return Err(format!("empty number at byte {start}"));
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(|_| ())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*i], b'"');
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        if b.len() < *i + 5 || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {i}"));
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            c if c < 0x20 => return Err(format!("control char in string at byte {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}"));
        }
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}"));
        }
        *i += 1;
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{merge_bufs, ObsBuf, ObsLevel};
    use super::*;

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e2,true,null,\"x\\n\"]}").unwrap();
        validate_json("[]").unwrap();
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("{\"a\"}").is_err());
        assert!(validate_json("\"unterminated").is_err());
    }

    #[test]
    fn empty_trace_is_valid() {
        let report = merge_bufs(ObsLevel::Trace, [ObsBuf::new(ObsLevel::Trace, 0)]);
        let json = chrome_trace(&report, &[]);
        validate_json(&json).unwrap();
        assert!(json.contains("traceEvents"));
    }
}
