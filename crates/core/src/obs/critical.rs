//! Bag-dependency DAG reconstruction and critical-path analysis.
//!
//! A traced run contains, per `(machine, operator, bag identifier)`
//! triple, one **bag computation**: the interval from its
//! [`EventKind::BagOpened`] to its [`EventKind::BagFinalized`] event.
//! [`EventKind::InputSelected`] events say which producer bag each
//! computation consumed and [`EventKind::SendResolved`] events say when a
//! conditional producer's send decision became known (Sec. 5.2.4) — so
//! the event stream determines a dependency DAG in which an input is
//! **available** to a consumer only once the producer finished *and* the
//! send decision resolved. The critical path is the dependency chain with
//! the largest total of *exclusive* contributions: each step counts only
//! the time between its inputs becoming available and its own finish.
//!
//! Two invariants follow from that definition (and are pinned by property
//! tests): the path length never exceeds the makespan (contributions
//! telescope inside finish times, since an input is never available
//! before its producer finishes), and it never undercuts the longest
//! single bag computation (every node may start a chain by itself).
//!
//! Everything here is deterministic: state lives in `BTreeMap`s and ties
//! break toward the smallest key, so the same event stream always yields
//! the same path.

use super::event::EventKind;
use super::{Event, ObsReport};
use std::collections::BTreeMap;

/// Identity of one bag computation: `(machine, operator, bag prefix
/// length)` — the bag identifier of Sec. 5.2.1 plus the machine that
/// hosts this instance of the operator.
pub type BagKey = (u16, u32, u32);

/// One bag computation: an operator instance computing one bag, with its
/// observed interval and (after analysis) its scheduling slack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BagNode {
    /// Machine the computation ran on.
    pub machine: u16,
    /// Logical operator id.
    pub op: u32,
    /// Bag identifier prefix length (`pos + 1`).
    pub bag_len: u32,
    /// When the bag was opened (scheduled, inputs selected).
    pub start_ns: u64,
    /// When the bag was finalized — or the last trace timestamp for bags
    /// still open when the run ended.
    pub end_ns: u64,
    /// How much later this computation could have finished without
    /// delaying any consumer's latest input (for terminal bags: without
    /// extending the makespan).
    pub slack_ns: u64,
}

impl BagNode {
    /// Busy duration of this computation.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// The key of this node.
    pub fn key(&self) -> BagKey {
        (self.machine, self.op, self.bag_len)
    }
}

/// One step of the critical path, in execution order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalStep {
    /// The bag computation on the path.
    pub node: BagNode,
    /// Logical edge the chain arrived on (`None` for the first step).
    pub via_edge: Option<u32>,
    /// Exclusive contribution of this step to the path length: time from
    /// its inputs becoming available (or its own start) to its finish.
    pub contribution_ns: u64,
}

/// The critical path of one traced run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Total path length in nanoseconds (0 for empty traces).
    pub length_ns: u64,
    /// The chain of bag computations, in execution order.
    pub steps: Vec<CriticalStep>,
    /// Exclusive contribution summed per operator, largest first (ties
    /// broken toward the smaller operator id).
    pub op_contrib: Vec<(u32, u64)>,
    /// Exclusive contribution summed per logical edge the chain
    /// traversed, largest first (ties broken toward the smaller edge id).
    pub edge_contrib: Vec<(u32, u64)>,
    /// Every bag computation with its slack, sorted by key.
    pub nodes: Vec<BagNode>,
}

/// Extracts bag-computation intervals from a trace: for every
/// `(machine, op, bag_len)`, the `BagOpened`‥`BagFinalized` span. Bags
/// still open when the trace ends are closed at the last observed
/// timestamp (never before their own start).
pub fn bag_intervals(events: &[Event]) -> BTreeMap<BagKey, (u64, u64)> {
    let mut spans: BTreeMap<BagKey, (u64, Option<u64>)> = BTreeMap::new();
    let mut max_ts = 0u64;
    for e in events {
        max_ts = max_ts.max(e.t_ns);
        match e.kind {
            EventKind::BagOpened { bag_len, .. } => {
                spans
                    .entry((e.machine, e.op, bag_len))
                    .or_insert((e.t_ns, None));
            }
            EventKind::BagFinalized { bag_len, .. } => {
                if let Some(s) = spans.get_mut(&(e.machine, e.op, bag_len)) {
                    s.1 = Some(e.t_ns);
                }
            }
            _ => {}
        }
    }
    spans
        .into_iter()
        .map(|(k, (start, end))| (k, (start, end.unwrap_or(max_ts).max(start))))
        .collect()
}

/// Reconstructs the bag-dependency DAG from a traced run and computes its
/// critical path, per-node slack, and per-operator/per-edge contribution
/// totals. `makespan_ns` is the run's end time (virtual or wall-clock) and
/// only feeds the slack of terminal bags. Requires a report produced at
/// [`super::ObsLevel::Trace`] with topology attached
/// ([`super::attach_topology`]); anything less yields an empty path.
pub fn critical_path(report: &ObsReport, makespan_ns: u64) -> CriticalPath {
    let intervals = bag_intervals(&report.events);
    if intervals.is_empty() {
        return CriticalPath::default();
    }

    // Which machines computed each logical bag (op, len).
    let mut producers: BTreeMap<(u32, u32), Vec<u16>> = BTreeMap::new();
    for &(m, op, len) in intervals.keys() {
        producers.entry((op, len)).or_default().push(m);
    }

    // Scan the (time-sorted) stream once: attribute each `InputSelected`
    // to the bag its operator opened last on that machine (selection is
    // recorded while the bag is being opened), and note when each
    // conditional edge's send decision resolved positively.
    let mut open: BTreeMap<(u16, u32), u32> = BTreeMap::new();
    let mut dep_specs: BTreeMap<BagKey, Vec<(u32, u32)>> = BTreeMap::new();
    let mut resolved: BTreeMap<(u16, u32, u32), u64> = BTreeMap::new();
    for e in &report.events {
        match e.kind {
            EventKind::BagOpened { bag_len, .. } => {
                open.insert((e.machine, e.op), bag_len);
            }
            EventKind::InputSelected { edge, bag_len, .. } => {
                if let Some(&cur) = open.get(&(e.machine, e.op)) {
                    dep_specs
                        .entry((e.machine, e.op, cur))
                        .or_default()
                        .push((edge, bag_len));
                }
            }
            EventKind::SendResolved {
                edge,
                bag_len,
                sent: true,
                ..
            } => {
                resolved.entry((e.machine, edge, bag_len)).or_insert(e.t_ns);
            }
            _ => {}
        }
    }

    // Concrete dependencies: consumer → [(producer, via edge, arrival)].
    // A consumer depends on every machine's instance of the selected bag;
    // the input arrives no earlier than the producer's finish and, on
    // conditional edges, no earlier than the send decision.
    let mut deps: BTreeMap<BagKey, Vec<(BagKey, u32, u64)>> = BTreeMap::new();
    for (consumer, specs) in &dep_specs {
        let list = deps.entry(*consumer).or_default();
        for &(edge, sel_len) in specs {
            let Some(&(src_op, _)) = report.edges.get(edge as usize) else {
                continue;
            };
            let Some(machines) = producers.get(&(src_op, sel_len)) else {
                continue;
            };
            for &m in machines {
                let p: BagKey = (m, src_op, sel_len);
                if p == *consumer {
                    continue;
                }
                let p_end = intervals[&p].1;
                let arrival = match resolved.get(&(m, edge, sel_len)) {
                    Some(&ts) => p_end.max(ts),
                    None => p_end,
                };
                list.push((p, edge, arrival));
            }
        }
        list.sort_unstable();
        list.dedup();
    }

    // Longest exclusive-contribution chain ending at each node, by
    // memoized iterative DFS. A malformed stream could cycle; an on-stack
    // dependency is simply not taken.
    const ON_STACK: u8 = 1;
    const DONE: u8 = 2;
    let keys: Vec<BagKey> = intervals.keys().copied().collect();
    let mut state: BTreeMap<BagKey, u8> = BTreeMap::new();
    let mut lval: BTreeMap<BagKey, u64> = BTreeMap::new();
    let mut best: BTreeMap<BagKey, Option<(BagKey, u32)>> = BTreeMap::new();
    let empty: Vec<(BagKey, u32, u64)> = Vec::new();
    for &root in &keys {
        if state.get(&root) == Some(&DONE) {
            continue;
        }
        let mut stack = vec![root];
        while let Some(&k) = stack.last() {
            if state.get(&k) == Some(&DONE) {
                stack.pop();
                continue;
            }
            state.insert(k, ON_STACK);
            let ds = deps.get(&k).unwrap_or(&empty);
            if let Some(&(p, _, _)) = ds.iter().find(|&&(p, _, _)| !state.contains_key(&p)) {
                stack.push(p);
                continue;
            }
            let (start, end) = intervals[&k];
            let mut l = end - start;
            let mut b: Option<(BagKey, u32)> = None;
            for &(p, edge, arrival) in ds {
                if state.get(&p) != Some(&DONE) {
                    continue;
                }
                let cand = lval[&p] + end.saturating_sub(start.max(arrival));
                if cand > l {
                    l = cand;
                    b = Some((p, edge));
                }
            }
            lval.insert(k, l);
            best.insert(k, b);
            state.insert(k, DONE);
            stack.pop();
        }
    }

    // Per-node slack: how much later it could finish without pushing any
    // consumer past its *latest* input; never consumed → against the
    // makespan.
    let mut slack: BTreeMap<BagKey, u64> = BTreeMap::new();
    for ds in deps.values() {
        let Some(latest) = ds.iter().map(|&(_, _, a)| a).max() else {
            continue;
        };
        for &(p, _, a) in ds {
            let room = latest - a;
            slack
                .entry(p)
                .and_modify(|s| *s = (*s).min(room))
                .or_insert(room);
        }
    }
    let node_of = |k: BagKey| -> BagNode {
        let (start, end) = intervals[&k];
        BagNode {
            machine: k.0,
            op: k.1,
            bag_len: k.2,
            start_ns: start,
            end_ns: end,
            slack_ns: slack
                .get(&k)
                .copied()
                .unwrap_or_else(|| makespan_ns.saturating_sub(end)),
        }
    };

    // The path ends at the node with the largest chain value (smallest
    // key on ties); recover the chain by walking predecessors.
    let mut tail = keys[0];
    for &k in &keys {
        if lval[&k] > lval[&tail] {
            tail = k;
        }
    }
    let length_ns = lval[&tail];
    let mut steps: Vec<CriticalStep> = Vec::new();
    let mut cur = Some(tail);
    while let Some(k) = cur {
        let pred = best[&k];
        steps.push(CriticalStep {
            node: node_of(k),
            via_edge: pred.map(|(_, e)| e),
            contribution_ns: lval[&k] - pred.map_or(0, |(p, _)| lval[&p]),
        });
        cur = pred.map(|(p, _)| p);
    }
    steps.reverse();

    let mut op_tot: BTreeMap<u32, u64> = BTreeMap::new();
    let mut edge_tot: BTreeMap<u32, u64> = BTreeMap::new();
    for s in &steps {
        *op_tot.entry(s.node.op).or_default() += s.contribution_ns;
        if let Some(e) = s.via_edge {
            *edge_tot.entry(e).or_default() += s.contribution_ns;
        }
    }
    let by_contrib = |m: BTreeMap<u32, u64>| -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    };

    CriticalPath {
        length_ns,
        steps,
        op_contrib: by_contrib(op_tot),
        edge_contrib: by_contrib(edge_tot),
        nodes: keys.iter().map(|&k| node_of(k)).collect(),
    }
}
