//! Per-phase control-plane latency histograms with log₂ buckets,
//! exported in Prometheus text format.
//!
//! Built post-hoc from the causal span trees ([`crate::obs::span`]):
//! for each step the control plane decomposes into four phases —
//! `broadcast` (decide → remote receipt), `assembly` (path append →
//! first bag open on that machine), `execute` (bag open → finalize),
//! and `send_resolve` (bag open → conditional-send decision). The
//! bucket layout matches [`crate::obs::metrics::LatencyStats`]: bucket
//! `i` covers `[2^(i-1), 2^i)` ns (bucket 0 = 0 ns), 32 buckets total,
//! so the `+Inf`-free upper bound is ~2.1 s.

use std::fmt::Write as _;

use crate::obs::span::{SpanKind, StepTree};

/// Number of log₂ buckets (covers 0 ns .. ~2.1 s).
pub const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram with exact sum and count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket `i` counts samples in `[2^(i-1), 2^i)` ns (bucket 0 = 0).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples in ns (not bucketized).
    pub sum_ns: u64,
    /// Largest sample seen.
    pub max_ns: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        let idx = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Approximate quantile (`q` in 0..=1): the inclusive upper bound
    /// `2^i - 1` of the bucket holding the `q`-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max_ns
    }
}

/// The four control-plane phases of a step, each with a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseHistograms {
    /// Decide span → each remote Recv span (one sample per receipt).
    pub broadcast: Histogram,
    /// Path append → first bag open on the same machine.
    pub assembly: Histogram,
    /// Bag open → bag finalize (one sample per executed bag).
    pub execute: Histogram,
    /// Bag open → conditional-send resolution (the recorded latency).
    pub send_resolve: Histogram,
    /// Steps contributing samples.
    pub steps: u64,
}

impl PhaseHistograms {
    /// Derives the per-phase histograms from built step trees.
    pub fn from_trees(trees: &[StepTree]) -> PhaseHistograms {
        let mut h = PhaseHistograms {
            steps: trees.len() as u64,
            ..PhaseHistograms::default()
        };
        for tree in trees {
            let Some(root) = tree.spans.first() else {
                continue;
            };
            // Earliest exec start per machine (for the assembly phase).
            let mut append_start: Vec<(u16, u64)> = Vec::new();
            for s in &tree.spans {
                match s.kind {
                    SpanKind::Recv => {
                        h.broadcast.record(s.start_ns.saturating_sub(root.start_ns));
                    }
                    SpanKind::Append => append_start.push((s.machine, s.start_ns)),
                    SpanKind::Exec => {
                        h.execute.record(s.end_ns.saturating_sub(s.start_ns));
                    }
                    _ => {}
                }
            }
            for &(m, t0) in &append_start {
                if let Some(first_exec) = tree
                    .spans
                    .iter()
                    .filter(|s| s.kind == SpanKind::Exec && s.machine == m)
                    .map(|s| s.start_ns)
                    .min()
                {
                    h.assembly.record(first_exec.saturating_sub(t0));
                }
            }
            for s in &tree.spans {
                if s.kind != SpanKind::Send {
                    continue;
                }
                if let Some(exec) = tree.spans.iter().find(|e| e.id == s.parent) {
                    h.send_resolve
                        .record(s.start_ns.saturating_sub(exec.start_ns));
                }
            }
        }
        h
    }

    /// Iterates `(phase name, histogram)`.
    pub fn phases(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("broadcast", &self.broadcast),
            ("assembly", &self.assembly),
            ("execute", &self.execute),
            ("send_resolve", &self.send_resolve),
        ]
    }

    /// Renders the histograms in Prometheus text exposition format:
    /// cumulative `_bucket` series with `le` labels, `_sum`/`_count`,
    /// plus p50/p99/max gauges and a `mitos_steps_total` counter.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP mitos_phase_latency_ns Control-plane per-step phase latency.\n");
        out.push_str("# TYPE mitos_phase_latency_ns histogram\n");
        for (name, h) in self.phases() {
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                cum += c;
                if c == 0 && i > 0 && (1u64 << i) > h.max_ns.max(1) * 2 {
                    break; // omit empty tail buckets
                }
                let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                let _ = writeln!(
                    out,
                    "mitos_phase_latency_ns_bucket{{phase=\"{name}\",le=\"{le}\"}} {cum}"
                );
            }
            let _ = writeln!(
                out,
                "mitos_phase_latency_ns_bucket{{phase=\"{name}\",le=\"+Inf\"}} {}",
                h.count
            );
            let _ = writeln!(
                out,
                "mitos_phase_latency_ns_sum{{phase=\"{name}\"}} {}",
                h.sum_ns
            );
            let _ = writeln!(
                out,
                "mitos_phase_latency_ns_count{{phase=\"{name}\"}} {}",
                h.count
            );
        }
        out.push_str("# HELP mitos_phase_latency_quantile_ns Per-phase latency quantiles.\n");
        out.push_str("# TYPE mitos_phase_latency_quantile_ns gauge\n");
        for (name, h) in self.phases() {
            let _ = writeln!(
                out,
                "mitos_phase_latency_quantile_ns{{phase=\"{name}\",q=\"0.5\"}} {}",
                h.quantile(0.5)
            );
            let _ = writeln!(
                out,
                "mitos_phase_latency_quantile_ns{{phase=\"{name}\",q=\"0.99\"}} {}",
                h.quantile(0.99)
            );
            let _ = writeln!(
                out,
                "mitos_phase_latency_quantile_ns{{phase=\"{name}\",q=\"max\"}} {}",
                h.max_ns
            );
        }
        out.push_str("# HELP mitos_steps_total Path positions traced.\n");
        out.push_str("# TYPE mitos_steps_total counter\n");
        let _ = writeln!(out, "mitos_steps_total {}", self.steps);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_matches_latency_stats() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.buckets[0], 1);
        h.record(1);
        assert_eq!(h.buckets[1], 1);
        h.record(2);
        h.record(3);
        assert_eq!(h.buckets[2], 2);
        h.record(1024);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum_ns, 1030);
        assert_eq!(h.max_ns, 1024);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(100); // bucket 7: [64, 128)
        }
        h.record(1_000_000); // bucket 20
        assert_eq!(h.quantile(0.5), (1 << 7) - 1);
        assert_eq!(h.quantile(0.99), (1 << 7) - 1);
        assert_eq!(h.quantile(1.0), (1 << 20) - 1);
        assert_eq!(h.max_ns, 1_000_000);
    }

    #[test]
    fn prometheus_format_is_cumulative_and_closed() {
        let mut p = PhaseHistograms::default();
        p.execute.record(10);
        p.execute.record(100);
        p.steps = 1;
        let text = p.prometheus();
        assert!(text.contains("mitos_phase_latency_ns_bucket{phase=\"execute\",le=\"+Inf\"} 2"));
        assert!(text.contains("mitos_phase_latency_ns_sum{phase=\"execute\"} 110"));
        assert!(text.contains("mitos_phase_latency_ns_count{phase=\"execute\"} 2"));
        assert!(text.contains("mitos_steps_total 1"));
        // Empty phases still export a closed histogram.
        assert!(text.contains("mitos_phase_latency_ns_bucket{phase=\"broadcast\",le=\"+Inf\"} 0"));
    }
}
