//! Per-worker metrics: counters and latency histograms derived from the
//! event vocabulary, aggregated across workers at join time.
//!
//! The registry is updated by [`super::ObsBuf::record`] — one `match` per
//! event, no allocation on the hot path beyond amortized `Vec` growth the
//! first time an operator or edge is seen.

use super::event::{EventKind, InputRule, OP_NONE};

/// Number of power-of-two latency buckets (covers 1 ns .. ~2 s and beyond;
/// the last bucket absorbs everything larger).
pub const LATENCY_BUCKETS: usize = 32;

/// A counter/sum/max latency accumulator with power-of-two buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// `buckets[i]` counts samples in `[2^(i-1), 2^i)` (bucket 0: zero).
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyStats {
    fn default() -> LatencyStats {
        LatencyStats {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyStats {
    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
        let idx = (64 - u64::leading_zeros(ns) as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx] += 1;
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Counters for one logical operator (summed over instances and machines).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpMetrics {
    /// Output bags scheduled ([`EventKind::BagOpened`]).
    pub bags_opened: u64,
    /// Output bags fully computed ([`EventKind::BagFinalized`]).
    pub bags_finalized: u64,
    /// Loop-invariant hoisting reuse hits (Sec. 5.3).
    pub hoist_hits: u64,
    /// Elements produced into output bags.
    pub elements_emitted: u64,
    /// Conditional-edge bags the path proved reachable and shipped (5.2.4).
    pub cond_sent: u64,
    /// Conditional-edge bags discarded because the consumer can never
    /// select them (5.2.4).
    pub cond_dropped: u64,
    /// Elements buffered while undecided and later shipped.
    pub elements_deferred: u64,
    /// Elements buffered while undecided and then thrown away.
    pub elements_discarded: u64,
    /// End-of-bag punctuations sent.
    pub punctuations: u64,
    /// Elements appended to `out://` sinks.
    pub sink_written: u64,
    /// Asynchronous file reads issued.
    pub io_reads: u64,
    /// Elements delivered by file reads.
    pub io_elements: u64,
    /// Input selections resolved by the same-block rule (5.2.3).
    pub sel_same_block: u64,
    /// Input selections resolved by the latest-occurrence rule (5.2.3).
    pub sel_latest: u64,
    /// Φ input selections (latest alternative, 5.2.3).
    pub sel_phi: u64,
    /// Bag-open → send/drop decision latency on conditional edges.
    /// Meaningful only at [`super::ObsLevel::Trace`] — the `Metrics` level
    /// never reads the clock, so samples are recorded as zero there.
    pub decision_latency: LatencyStats,
}

impl OpMetrics {
    fn merge(&mut self, o: &OpMetrics) {
        self.bags_opened += o.bags_opened;
        self.bags_finalized += o.bags_finalized;
        self.hoist_hits += o.hoist_hits;
        self.elements_emitted += o.elements_emitted;
        self.cond_sent += o.cond_sent;
        self.cond_dropped += o.cond_dropped;
        self.elements_deferred += o.elements_deferred;
        self.elements_discarded += o.elements_discarded;
        self.punctuations += o.punctuations;
        self.sink_written += o.sink_written;
        self.io_reads += o.io_reads;
        self.io_elements += o.io_elements;
        self.sel_same_block += o.sel_same_block;
        self.sel_latest += o.sel_latest;
        self.sel_phi += o.sel_phi;
        self.decision_latency.merge(&o.decision_latency);
    }
}

/// Counters for one logical edge (conditional sends, for the DOT overlay).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeMetrics {
    /// Bags shipped on this edge after a send decision.
    pub sent_bags: u64,
    /// Bags discarded on this edge after a drop decision.
    pub dropped_bags: u64,
    /// Buffered elements thrown away by drop decisions.
    pub elements_dropped: u64,
}

impl EdgeMetrics {
    fn merge(&mut self, o: &EdgeMetrics) {
        self.sent_bags += o.sent_bags;
        self.dropped_bags += o.dropped_bags;
        self.elements_dropped += o.elements_dropped;
    }
}

/// The per-worker (and, after merging, per-run) metrics registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    /// Per-operator counters, indexed by operator id (grown on demand).
    pub ops: Vec<OpMetrics>,
    /// Per-edge counters, indexed by logical edge id (grown on demand).
    pub edges: Vec<EdgeMetrics>,
    /// Control-flow decisions broadcast by the control-flow managers.
    pub decisions_broadcast: u64,
    /// Broadcast decisions received by remote control-flow managers
    /// (post-dedup when the recovery protocol is active).
    pub decisions_received: u64,
    /// Block occurrences appended to local execution paths.
    pub path_appends: u64,
    /// Superstep barrier releases (non-pipelined mode).
    pub steps_released: u64,
    /// At-least-once envelopes retransmitted (fault-injection runs).
    pub retransmits: u64,
    /// Duplicate reliable deliveries discarded by receiver-side dedup
    /// (fault-injection runs).
    pub dup_msgs_dropped: u64,
}

impl MetricsRegistry {
    fn op_mut(&mut self, op: u32) -> &mut OpMetrics {
        let i = op as usize;
        if i >= self.ops.len() {
            self.ops.resize_with(i + 1, OpMetrics::default);
        }
        &mut self.ops[i]
    }

    fn edge_mut(&mut self, edge: u32) -> &mut EdgeMetrics {
        let i = edge as usize;
        if i >= self.edges.len() {
            self.edges.resize_with(i + 1, EdgeMetrics::default);
        }
        &mut self.edges[i]
    }

    /// Applies one event to the counters.
    pub fn apply(&mut self, op: u32, kind: &EventKind) {
        match kind {
            EventKind::BagOpened { .. } => self.op_mut(op).bags_opened += 1,
            EventKind::InputSelected { rule, .. } => {
                let m = self.op_mut(op);
                match rule {
                    InputRule::SameBlock => m.sel_same_block += 1,
                    InputRule::LatestOccurrence => m.sel_latest += 1,
                    InputRule::PhiLatest => m.sel_phi += 1,
                }
            }
            EventKind::HoistHit { .. } => self.op_mut(op).hoist_hits += 1,
            EventKind::Emitted { count, .. } => self.op_mut(op).elements_emitted += count,
            EventKind::SendResolved {
                edge,
                sent,
                buffered,
                latency_ns,
                ..
            } => {
                {
                    let m = self.op_mut(op);
                    if *sent {
                        m.cond_sent += 1;
                        m.elements_deferred += buffered;
                    } else {
                        m.cond_dropped += 1;
                        m.elements_discarded += buffered;
                    }
                    m.decision_latency.record(*latency_ns);
                }
                let em = self.edge_mut(*edge);
                if *sent {
                    em.sent_bags += 1;
                } else {
                    em.dropped_bags += 1;
                    em.elements_dropped += buffered;
                }
            }
            EventKind::BagFinalized { .. } => self.op_mut(op).bags_finalized += 1,
            EventKind::PunctuationSent { .. } => self.op_mut(op).punctuations += 1,
            EventKind::SinkWrote { count, .. } => self.op_mut(op).sink_written += count,
            EventKind::DecisionBroadcast { .. } => self.decisions_broadcast += 1,
            EventKind::DecisionReceived { .. } => self.decisions_received += 1,
            EventKind::PathAppended { .. } => self.path_appends += 1,
            EventKind::IoStarted { .. } => self.op_mut(op).io_reads += 1,
            EventKind::IoFinished { count, .. } => self.op_mut(op).io_elements += count,
            EventKind::StepReleased { .. } => self.steps_released += 1,
            EventKind::RetransmitSent { .. } => self.retransmits += 1,
            EventKind::DuplicateDropped { .. } => self.dup_msgs_dropped += 1,
        }
        debug_assert!(
            op != OP_NONE
                || matches!(
                    kind,
                    EventKind::DecisionBroadcast { .. }
                        | EventKind::DecisionReceived { .. }
                        | EventKind::PathAppended { .. }
                        | EventKind::StepReleased { .. }
                        | EventKind::RetransmitSent { .. }
                        | EventKind::DuplicateDropped { .. }
                ),
            "operator event recorded with OP_NONE"
        );
    }

    /// Folds another registry into this one (worker join).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        if self.ops.len() < other.ops.len() {
            self.ops.resize_with(other.ops.len(), OpMetrics::default);
        }
        for (a, b) in self.ops.iter_mut().zip(other.ops.iter()) {
            a.merge(b);
        }
        if self.edges.len() < other.edges.len() {
            self.edges
                .resize_with(other.edges.len(), EdgeMetrics::default);
        }
        for (a, b) in self.edges.iter_mut().zip(other.edges.iter()) {
            a.merge(b);
        }
        self.decisions_broadcast += other.decisions_broadcast;
        self.decisions_received += other.decisions_received;
        self.path_appends += other.path_appends;
        self.steps_released += other.steps_released;
        self.retransmits += other.retransmits;
        self.dup_msgs_dropped += other.dup_msgs_dropped;
    }

    /// Total elements emitted across all operators.
    pub fn total_emitted(&self) -> u64 {
        self.ops.iter().map(|m| m.elements_emitted).sum()
    }

    /// Total hoisting hits across all operators.
    pub fn total_hoist_hits(&self) -> u64 {
        self.ops.iter().map(|m| m.hoist_hits).sum()
    }

    /// Total elements appended to output sinks.
    pub fn total_sink_written(&self) -> u64 {
        self.ops.iter().map(|m| m.sink_written).sum()
    }

    /// Total bags discarded on conditional edges.
    pub fn total_cond_dropped(&self) -> u64 {
        self.ops.iter().map(|m| m.cond_dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_cover_range() {
        let mut l = LatencyStats::default();
        l.record(0);
        l.record(1);
        l.record(1_000_000);
        l.record(u64::MAX);
        assert_eq!(l.count, 4);
        assert_eq!(l.buckets.iter().sum::<u64>(), 4);
        assert_eq!(l.max_ns, u64::MAX);
        assert_eq!(l.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(l.buckets[LATENCY_BUCKETS - 1], 1, "huge clamps to last");
    }

    #[test]
    fn apply_and_merge_reconcile() {
        let mut a = MetricsRegistry::default();
        a.apply(2, &EventKind::BagOpened { pos: 0, bag_len: 1 });
        a.apply(
            2,
            &EventKind::Emitted {
                bag_len: 1,
                count: 5,
            },
        );
        a.apply(
            2,
            &EventKind::SendResolved {
                edge: 7,
                bag_len: 1,
                sent: false,
                buffered: 5,
                latency_ns: 100,
            },
        );
        let mut b = MetricsRegistry::default();
        b.apply(
            2,
            &EventKind::Emitted {
                bag_len: 2,
                count: 3,
            },
        );
        b.apply(OP_NONE, &EventKind::DecisionBroadcast { pos: 1, block: 2 });
        a.merge(&b);
        assert_eq!(a.ops[2].elements_emitted, 8);
        assert_eq!(a.ops[2].cond_dropped, 1);
        assert_eq!(a.ops[2].elements_discarded, 5);
        assert_eq!(a.edges[7].dropped_bags, 1);
        assert_eq!(a.decisions_broadcast, 1);
        assert_eq!(a.total_emitted(), 8);
    }
}
