//! Structured runtime observability (tracing + metrics).
//!
//! The runtime emits one [`Event`] per observable step of the bag
//! lifecycle — bag opened, input selected (and which prefix rule fired),
//! elements emitted, conditional output sent or discarded, end-of-bag
//! punctuation, hoisting hits, control-flow decision broadcasts — and
//! keeps a per-worker [`MetricsRegistry`] of counters and histograms.
//! Workers record into a private [`ObsBuf`]; the drivers merge buffers at
//! join time into one [`ObsReport`] attached to
//! [`crate::engine::EngineResult`].
//!
//! Timestamps come from [`crate::rt::Net::now_ns`]: virtual time under the
//! simulator, monotonic wall-clock under the threaded driver. Recording
//! charges **zero virtual time**, so tracing never perturbs simulated
//! results; at [`ObsLevel::Off`] (the default) every record call is a
//! single branch.
//!
//! Exporters: [`chrome::chrome_trace`] (Chrome `chrome://tracing` /
//! Perfetto JSON), [`explain::explain_report`] (per-operator text table),
//! and the count overlay in [`crate::dot::to_dot`] via [`crate::dot::DotOverlay::metrics`].

pub mod chrome;
pub mod critical;
pub mod event;
pub mod explain;
pub mod flow;
pub mod histo;
pub mod live;
pub mod mem;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod span;
pub mod watchdog;

pub use chrome::{chrome_trace, validate_json};
pub use critical::{critical_path, BagNode, CriticalPath};
pub use event::{Event, EventKind, InputRule, OP_NONE};
pub use explain::{explain_parts, explain_report};
pub use flow::{EdgeFlow, FlowRegistry, FlowReport, BACKPRESSURE_WINDOW};
pub use histo::{Histogram, PhaseHistograms};
pub use live::{progress_line, watch_table, OpSnapshot, Snapshot, TelemetryHub, WorkerSnapshot};
pub use mem::{ClassMem, MachineMem, MemClass, MemRegistry, MemReport};
pub use metrics::{EdgeMetrics, LatencyStats, MetricsRegistry, OpMetrics};
pub use profile::{build_profile, Profile};
pub use recorder::{FlightRecorder, FLIGHT_SLOTS};
pub use span::{build_step_trees, render_tree, span_id, Span, SpanCtx, SpanKind, StepTree};
pub use watchdog::{diagnose, fault_note, Awaited, OpStall, StallReport, WorkerStall};

use crate::path::LoopNest;
use crate::rt::Net;

/// Human-readable nanoseconds (`1.23ms` / `4.5us` / `678ns`), shared by
/// the text reports.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= crate::rt::NS_PER_MS {
        format!("{:.2}ms", ns as f64 / crate::rt::NS_PER_MS as f64)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// JSON string literal with the required escapes, shared by the
/// hand-rolled JSON exporters ([`profile`], [`flow`]).
pub(crate) fn json_str(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// How much the runtime records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ObsLevel {
    /// Record nothing; every instrumentation site is a single branch.
    #[default]
    Off,
    /// Update counters/histograms only (no per-event storage, no clock
    /// reads).
    Metrics,
    /// Counters plus the full timestamped event stream.
    Trace,
}

/// Per-worker recording buffer. One per [`crate::worker::Worker`]; never
/// shared, so recording is lock-free.
#[derive(Debug, Default)]
pub struct ObsBuf {
    level: ObsLevel,
    machine: u16,
    events: Vec<Event>,
    /// Counters, updated on every recorded event.
    pub metrics: MetricsRegistry,
}

impl ObsBuf {
    /// Creates a buffer recording at `level` for `machine`.
    pub fn new(level: ObsLevel, machine: u16) -> ObsBuf {
        ObsBuf {
            level,
            machine,
            events: Vec::new(),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Whether anything is recorded at all. Hot call sites may use this to
    /// skip argument construction entirely.
    #[inline]
    pub fn enabled(&self) -> bool {
        !matches!(self.level, ObsLevel::Off)
    }

    /// Whether the full event stream (with timestamps) is recorded.
    #[inline]
    pub fn tracing(&self) -> bool {
        matches!(self.level, ObsLevel::Trace)
    }

    /// Records one event attributed to operator `op` (or [`OP_NONE`]).
    /// The clock is only read when tracing; counters always update when
    /// enabled. No-op (one branch) when the level is [`ObsLevel::Off`].
    #[inline]
    pub fn record(&mut self, net: &mut dyn Net, op: u32, kind: EventKind) {
        match self.level {
            ObsLevel::Off => {}
            ObsLevel::Metrics => self.metrics.apply(op, &kind),
            ObsLevel::Trace => {
                self.metrics.apply(op, &kind);
                self.events.push(Event {
                    t_ns: net.now_ns(),
                    machine: self.machine,
                    op,
                    kind,
                });
            }
        }
    }

    /// Recorded events (empty unless tracing).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Drains this buffer into `(events, metrics)`, leaving it empty.
    pub fn take(&mut self) -> (Vec<Event>, MetricsRegistry) {
        (
            std::mem::take(&mut self.events),
            std::mem::take(&mut self.metrics),
        )
    }
}

/// The merged observability output of one run.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// The level the run recorded at.
    pub level: ObsLevel,
    /// All events, sorted by timestamp (then machine); empty unless the
    /// level was [`ObsLevel::Trace`].
    pub events: Vec<Event>,
    /// Counters aggregated across all workers.
    pub metrics: MetricsRegistry,
    /// The program's loop-nesting structure, attached by the drivers so
    /// the analysis layer ([`profile`], [`critical`]) can decode bag
    /// identifiers into iteration coordinates without the compiled
    /// function.
    pub loops: LoopNest,
    /// `(src op, dst op)` per logical edge id, attached by the drivers —
    /// events carry edge ids, and the analyzers need their endpoints to
    /// reconstruct the bag-dependency DAG.
    pub edges: Vec<(u32, u32)>,
}

/// Merges per-worker buffers (at join) into one report. Events are stably
/// sorted by timestamp then machine, so per-machine relative order is
/// preserved under timestamp ties (common in virtual time).
pub fn merge_bufs(level: ObsLevel, bufs: impl IntoIterator<Item = ObsBuf>) -> ObsReport {
    let mut events = Vec::new();
    let mut metrics = MetricsRegistry::default();
    for mut b in bufs {
        let (ev, m) = b.take();
        events.extend(ev);
        metrics.merge(&m);
    }
    events.sort_by_key(|e| (e.t_ns, e.machine));
    ObsReport {
        level,
        events,
        metrics,
        loops: LoopNest::default(),
        edges: Vec::new(),
    }
}

/// Attaches the static program topology (loop nest + edge endpoints) the
/// analysis layer needs. Called by the drivers right after [`merge_bufs`].
pub fn attach_topology(report: &mut ObsReport, graph: &crate::graph::LogicalGraph) {
    report.loops = LoopNest::build(&graph.func);
    report.edges = graph.edges.iter().map(|e| (e.src, e.dst)).collect();
}
