//! `EXPLAIN`-style per-operator text report.
//!
//! Extends the basic [`crate::engine::OpStats`] table with the
//! observability counters when a run recorded them: bags opened and
//! finalized (Sec. 5.2.2), conditional-output bags sent vs. discarded and
//! the elements dropped with them (Sec. 5.2.4), which input-selection
//! rules fired (Sec. 5.2.3), end-of-bag punctuations, and the
//! open→decision latency on conditional edges.

use super::critical::bag_intervals;
use super::fmt_ns;
use super::metrics::OpMetrics;
use crate::engine::{EngineResult, OpStats};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn rules_cell(m: &OpMetrics) -> String {
    let mut parts = Vec::new();
    if m.sel_same_block > 0 {
        parts.push(format!("same-block:{}", m.sel_same_block));
    }
    if m.sel_latest > 0 {
        parts.push(format!("latest:{}", m.sel_latest));
    }
    if m.sel_phi > 0 {
        parts.push(format!("phi:{}", m.sel_phi));
    }
    if parts.is_empty() {
        "-".to_string()
    } else {
        parts.join(" ")
    }
}

/// Renders the per-operator report for a finished run. With observability
/// enabled (`--explain` / `--trace`, or [`crate::rt::EngineConfig::obs`]
/// at [`super::ObsLevel::Metrics`] or above) the table carries the full
/// counter set; otherwise it falls back to the always-collected
/// [`crate::engine::OpStats`] columns. Rows are ordered by total busy
/// time (traced runs; with a per-machine max/mean skew column) or by
/// emitted elements (metrics-only runs), largest first.
pub fn explain_report(result: &EngineResult) -> String {
    explain_parts(
        &result.op_stats,
        result.obs.as_ref(),
        result.path.len(),
        result.hoist_hits,
        result.decisions,
        (
            result.template_hits,
            result.template_misses,
            result.template_invalidations,
        ),
        result.millis(),
    )
}

/// [`explain_report`] over its constituent pieces, for callers (like the
/// `mitos` facade) that hold the run data in another shape. The
/// `templates` triple is (hits, misses, invalidations) from the
/// control-plane template cache; all-zero (templates disabled or the run
/// never started a bag) renders nothing, keeping such output byte-stable.
pub fn explain_parts(
    op_stats: &[crate::engine::OpStats],
    obs: Option<&super::ObsReport>,
    path_len: usize,
    hoist_hits: u64,
    decisions: u64,
    templates: (u64, u64, u64),
    millis: f64,
) -> String {
    let mut out = String::new();
    let obs = obs.filter(|o| o.level != super::ObsLevel::Off);
    match obs {
        Some(obs) => {
            // Per-operator busy time and machine skew are derivable only
            // from the traced bag intervals; at Metrics level the columns
            // render as "-" and the emitted count orders the rows instead.
            let tracing = obs.level == super::ObsLevel::Trace;
            let mut busy_per_op: BTreeMap<u32, BTreeMap<u16, u64>> = BTreeMap::new();
            if tracing {
                for (&(machine, op, _), &(start, end)) in &bag_intervals(&obs.events) {
                    *busy_per_op
                        .entry(op)
                        .or_default()
                        .entry(machine)
                        .or_default() += end - start;
                }
            }
            let total_busy =
                |op: u32| -> u64 { busy_per_op.get(&op).map_or(0, |m| m.values().sum()) };
            let mut order: Vec<&OpStats> = op_stats.iter().collect();
            if tracing {
                order.sort_by(|a, b| {
                    total_busy(b.op)
                        .cmp(&total_busy(a.op))
                        .then(a.op.cmp(&b.op))
                });
            } else {
                order.sort_by(|a, b| b.emitted.cmp(&a.emitted).then(a.op.cmp(&b.op)));
            }
            let _ = writeln!(
                out,
                "{:<24} {:<10} {:>4} {:>10} {:>10} {:>5} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>6} {:>14}  input rules",
                "operator", "kind", "inst", "emitted", "busy", "skew", "hoists", "opened",
                "closed", "c.sent", "c.drop", "discard", "punct",
                "lat mean/max",
            );
            let empty = OpMetrics::default();
            for s in order {
                let m = obs.metrics.ops.get(s.op as usize).unwrap_or(&empty);
                let lat = if m.decision_latency.count == 0 {
                    "-".to_string()
                } else {
                    format!(
                        "{}/{}",
                        fmt_ns(m.decision_latency.mean_ns()),
                        fmt_ns(m.decision_latency.max_ns)
                    )
                };
                // Skew = max over mean of per-machine busy time (1.00 =
                // perfectly balanced); meaningful only when several
                // machines hosted the operator.
                let (busy_cell, skew_cell) = match busy_per_op.get(&s.op) {
                    Some(per_machine) if !per_machine.is_empty() => {
                        let total: u64 = per_machine.values().sum();
                        let max = per_machine.values().copied().max().unwrap_or(0);
                        let mean = total as f64 / per_machine.len() as f64;
                        let skew = if total == 0 { 0.0 } else { max as f64 / mean };
                        (fmt_ns(total), format!("{skew:.2}"))
                    }
                    _ => ("-".to_string(), "-".to_string()),
                };
                let _ = writeln!(
                    out,
                    "{:<24} {:<10} {:>4} {:>10} {:>10} {:>5} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>6} {:>14}  {}",
                    s.name,
                    s.kind,
                    s.instances,
                    s.emitted,
                    busy_cell,
                    skew_cell,
                    s.hoist_hits,
                    m.bags_opened,
                    m.bags_finalized,
                    m.cond_sent,
                    m.cond_dropped,
                    m.elements_discarded,
                    m.punctuations,
                    lat,
                    rules_cell(m)
                );
            }
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "path: {} blocks; decisions broadcast: {}; path appends: {}; \
                 steps released: {}",
                path_len,
                obs.metrics.decisions_broadcast,
                obs.metrics.path_appends,
                obs.metrics.steps_released,
            );
            let _ = writeln!(
                out,
                "bags: {} opened, {} conditional dropped; elements: {} emitted, \
                 {} discarded, {} written to sinks",
                obs.metrics.ops.iter().map(|m| m.bags_opened).sum::<u64>(),
                obs.metrics.total_cond_dropped(),
                obs.metrics.total_emitted(),
                obs.metrics
                    .ops
                    .iter()
                    .map(|m| m.elements_discarded)
                    .sum::<u64>(),
                obs.metrics.total_sink_written(),
            );
            // Fault-injection runs only: keep fault-free explain output
            // byte-stable.
            if obs.metrics.retransmits > 0 || obs.metrics.dup_msgs_dropped > 0 {
                let _ = writeln!(
                    out,
                    "recovery: {} retransmission(s) sent, {} duplicate delivery(ies) dropped",
                    obs.metrics.retransmits, obs.metrics.dup_msgs_dropped,
                );
            }
            if obs.level == super::ObsLevel::Trace {
                let _ = writeln!(out, "events recorded: {}", obs.events.len());
            }
        }
        None => {
            let _ = writeln!(
                out,
                "{:<24} {:<10} {:>4} {:>12} {:>8}",
                "operator", "kind", "inst", "emitted", "hoists"
            );
            for s in op_stats {
                let _ = writeln!(
                    out,
                    "{:<24} {:<10} {:>4} {:>12} {:>8}",
                    s.name, s.kind, s.instances, s.emitted, s.hoist_hits
                );
            }
            let _ = writeln!(
                out,
                "\n(run with observability enabled — `--explain`/`--trace` — \
                 for bag lifecycle and conditional-send counters)"
            );
        }
    }
    // Template-cache counters: only when the cache saw traffic, so runs
    // with templates disabled keep byte-identical explain output.
    let (t_hits, t_misses, t_inval) = templates;
    if t_hits + t_misses + t_inval > 0 {
        let rate = t_hits as f64 / (t_hits + t_misses).max(1) as f64;
        let _ = writeln!(
            out,
            "templates: {t_hits} hit(s), {t_misses} miss(es), {t_inval} invalidation(s) \
             (hit rate {rate:.2})",
        );
    }
    let _ = writeln!(
        out,
        "total: {hoist_hits} hoist hits, {decisions} decisions, {millis:.3} ms \
         (virtual time under the simulator, wall-clock under threads)",
    );
    out
}
