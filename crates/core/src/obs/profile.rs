//! Per-iteration profiling: attributes the traced bag lifecycle back to
//! **loop-iteration coordinates** and reports where each iteration's time
//! went.
//!
//! Every bag identifier is `(operator, path-prefix length)` (Sec. 5.2.1),
//! so `prefix length − 1` names a position on the execution path, and the
//! program's loop nest ([`crate::path::LoopNest`]) decodes that position
//! into iteration coordinates — e.g. `[2.0]` = third outer iteration,
//! first inner iteration. No extra runtime tagging is needed: the
//! profiler is a pure post-hoc analysis over the event stream, so it
//! inherits the zero-virtual-time guarantee of the recording layer.
//!
//! The profile splits iterations into **warmup** (first pass of the
//! innermost coordinate, where loop-invariant build state is constructed,
//! Sec. 5.3) and **steady state**, aggregates busy time per machine to
//! surface stragglers/skew, and embeds the run's critical path
//! ([`super::critical`]) with per-iteration attribution.

use super::critical::{bag_intervals, critical_path, CriticalPath};
use super::event::EventKind;
use super::{fmt_ns, json_str, ObsReport};
use crate::engine::OpStats;
use mitos_ir::BlockId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregates for one loop iteration (or, with empty coordinates, for
/// everything outside all loops).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IterRow {
    /// Iteration coordinates, outermost loop first; empty = outside
    /// loops.
    pub coords: Vec<u32>,
    /// Bag computations attributed to this iteration (across machines).
    pub bags: u64,
    /// Total busy time across machines (sum of bag-computation spans).
    pub busy_ns: u64,
    /// Elements emitted.
    pub emitted: u64,
    /// Control-flow decisions broadcast while resolving this iteration's
    /// path positions.
    pub decisions: u64,
    /// Total open→decision latency of conditional sends whose producing
    /// bag belongs to this iteration.
    pub send_wait_ns: u64,
    /// Earliest bag open in this iteration.
    pub start_ns: u64,
    /// Latest bag finish in this iteration.
    pub end_ns: u64,
    /// Critical-path contribution from bags of this iteration.
    pub critical_ns: u64,
    /// Busy time per machine (straggler/skew analysis).
    pub machine_busy: BTreeMap<u16, u64>,
    /// Busy time per operator.
    pub op_busy: BTreeMap<u32, u64>,
}

impl IterRow {
    /// Wall-clock span of the iteration (first open to last finish).
    pub fn span_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Machine skew: max per-machine busy over mean per-machine busy
    /// (1.0 = perfectly balanced; 0.0 when nothing ran).
    pub fn skew(&self) -> f64 {
        skew_of(&self.machine_busy)
    }

    /// The busiest operator of this iteration, if any ran.
    pub fn hot_op(&self) -> Option<(u32, u64)> {
        self.op_busy
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&op, &ns)| (op, ns))
    }

    /// Renders the coordinates as `[2.0]` (empty → `(outside)`).
    pub fn label(&self) -> String {
        coord_label(&self.coords)
    }
}

/// Whole-run aggregates for one machine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MachineRow {
    /// Machine id.
    pub machine: u16,
    /// Total busy time (sum of bag-computation spans).
    pub busy_ns: u64,
    /// Bag computations hosted.
    pub bags: u64,
    /// Elements emitted.
    pub emitted: u64,
}

/// Aggregates over a set of iteration rows (warmup or steady state).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Number of iteration rows in the phase.
    pub rows: u64,
    /// Total busy time.
    pub busy_ns: u64,
    /// Elements emitted.
    pub emitted: u64,
    /// Critical-path contribution.
    pub critical_ns: u64,
}

/// The full iteration profile of one traced run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profile {
    /// Per-iteration rows, sorted by coordinates (an empty-coordinate
    /// "outside loops" row sorts first when present).
    pub rows: Vec<IterRow>,
    /// Per-machine totals, sorted by machine id.
    pub machines: Vec<MachineRow>,
    /// Totals over warmup iterations: innermost coordinate 0, where
    /// loop-invariant state is first built (Sec. 5.3).
    pub warmup: PhaseTotals,
    /// Totals over steady-state iterations (innermost coordinate > 0).
    pub steady: PhaseTotals,
    /// The run's critical path through the bag-dependency DAG.
    pub critical: CriticalPath,
    /// Run end time: virtual ns under the simulator, wall-clock ns under
    /// threads.
    pub makespan_ns: u64,
    /// Maximum loop-nesting depth of the program.
    pub max_depth: u32,
}

fn skew_of(per_machine: &BTreeMap<u16, u64>) -> f64 {
    let n = per_machine.len() as f64;
    let total: u64 = per_machine.values().sum();
    let max = per_machine.values().copied().max().unwrap_or(0);
    if total == 0 {
        0.0
    } else {
        max as f64 / (total as f64 / n)
    }
}

fn coord_label(coords: &[u32]) -> String {
    if coords.is_empty() {
        "(outside)".to_string()
    } else {
        let parts: Vec<String> = coords.iter().map(u32::to_string).collect();
        format!("[{}]", parts.join("."))
    }
}

/// Builds the iteration profile for a traced run. `path` is the run's
/// execution path (block occurrences), `makespan_ns` its end time. The
/// report must have been produced at [`super::ObsLevel::Trace`] with
/// topology attached ([`super::attach_topology`]); anything less yields
/// an empty profile.
pub fn build_profile(report: &ObsReport, path: &[BlockId], makespan_ns: u64) -> Profile {
    let coords = report.loops.coords(path);
    let coord_at = |pos: u32| -> Vec<u32> { coords.get(pos as usize).cloned().unwrap_or_default() };
    let critical = critical_path(report, makespan_ns);

    let mut rows: BTreeMap<Vec<u32>, IterRow> = BTreeMap::new();
    let mut machines: BTreeMap<u16, MachineRow> = BTreeMap::new();

    // Bag computations: busy time, span, per-machine and per-operator
    // attribution. `bag_len − 1` is the path position of the occurrence
    // the bag belongs to.
    for (&(machine, op, bag_len), &(start, end)) in &bag_intervals(&report.events) {
        let c = coord_at(bag_len.saturating_sub(1));
        let dur = end - start;
        let row = rows.entry(c).or_default();
        row.bags += 1;
        row.busy_ns += dur;
        if row.bags == 1 {
            row.start_ns = start;
            row.end_ns = end;
        } else {
            row.start_ns = row.start_ns.min(start);
            row.end_ns = row.end_ns.max(end);
        }
        *row.machine_busy.entry(machine).or_default() += dur;
        *row.op_busy.entry(op).or_default() += dur;
        let m = machines.entry(machine).or_insert_with(|| MachineRow {
            machine,
            ..MachineRow::default()
        });
        m.busy_ns += dur;
        m.bags += 1;
    }

    // Element and decision counters, and conditional-send wait.
    for e in &report.events {
        match e.kind {
            EventKind::Emitted { bag_len, count } => {
                rows.entry(coord_at(bag_len.saturating_sub(1)))
                    .or_default()
                    .emitted += count;
                machines
                    .entry(e.machine)
                    .or_insert_with(|| MachineRow {
                        machine: e.machine,
                        ..MachineRow::default()
                    })
                    .emitted += count;
            }
            EventKind::DecisionBroadcast { pos, .. } => {
                rows.entry(coord_at(pos)).or_default().decisions += 1;
            }
            EventKind::SendResolved {
                bag_len,
                latency_ns,
                ..
            } => {
                rows.entry(coord_at(bag_len.saturating_sub(1)))
                    .or_default()
                    .send_wait_ns += latency_ns;
            }
            _ => {}
        }
    }

    // Critical-path attribution per iteration.
    for s in &critical.steps {
        rows.entry(coord_at(s.node.bag_len.saturating_sub(1)))
            .or_default()
            .critical_ns += s.contribution_ns;
    }

    let rows: Vec<IterRow> = rows
        .into_iter()
        .map(|(coords, mut row)| {
            row.coords = coords;
            row
        })
        .collect();

    // Warmup = first pass of the innermost coordinate (the pass that
    // builds hoisted loop-invariant state); rows outside loops belong to
    // neither phase.
    let mut warmup = PhaseTotals::default();
    let mut steady = PhaseTotals::default();
    for row in &rows {
        let Some(&inner) = row.coords.last() else {
            continue;
        };
        let phase = if inner == 0 { &mut warmup } else { &mut steady };
        phase.rows += 1;
        phase.busy_ns += row.busy_ns;
        phase.emitted += row.emitted;
        phase.critical_ns += row.critical_ns;
    }

    Profile {
        rows,
        machines: machines.into_values().collect(),
        warmup,
        steady,
        critical,
        makespan_ns,
        max_depth: report.loops.max_depth(),
    }
}

fn op_name(ops: &[OpStats], op: u32) -> String {
    ops.iter()
        .find(|s| s.op == op)
        .map(|s| format!("{}#{op}", s.name))
        .unwrap_or_else(|| format!("op#{op}"))
}

impl Profile {
    /// Renders the profile as a text report: the per-iteration table,
    /// warmup-vs-steady split, per-machine straggler summary, and the
    /// critical path with its top contributors. `ops` supplies operator
    /// names (pass the run's op stats; unknown ids render as `op#N`).
    pub fn render(&self, ops: &[OpStats]) -> String {
        let mut out = String::new();
        let pct = |part: u64| -> f64 {
            if self.makespan_ns == 0 {
                0.0
            } else {
                100.0 * part as f64 / self.makespan_ns as f64
            }
        };
        let _ = writeln!(
            out,
            "makespan {}  critical path {} ({:.0}%)  loop depth {}",
            fmt_ns(self.makespan_ns),
            fmt_ns(self.critical.length_ns),
            pct(self.critical.length_ns),
            self.max_depth,
        );
        if self.rows.is_empty() {
            let _ = writeln!(
                out,
                "(no traced bag computations — run with tracing enabled)"
            );
            return out;
        }

        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>10} {:>9} {:>5} {:>9} {:>10} {:>10} {:>5}  hot operator",
            "iteration", "bags", "busy", "emitted", "dec", "wait", "span", "critical", "skew",
        );
        for row in &self.rows {
            let hot = row
                .hot_op()
                .map(|(op, ns)| format!("{} {}", op_name(ops, op), fmt_ns(ns)))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:<12} {:>5} {:>10} {:>9} {:>5} {:>9} {:>10} {:>10} {:>5.2}  {}",
                row.label(),
                row.bags,
                fmt_ns(row.busy_ns),
                row.emitted,
                row.decisions,
                fmt_ns(row.send_wait_ns),
                fmt_ns(row.span_ns()),
                fmt_ns(row.critical_ns),
                row.skew(),
                hot,
            );
        }

        let _ = writeln!(out);
        for (name, phase) in [("warmup", &self.warmup), ("steady", &self.steady)] {
            let _ = writeln!(
                out,
                "{name}: {} iterations, busy {}, emitted {}, critical {}",
                phase.rows,
                fmt_ns(phase.busy_ns),
                phase.emitted,
                fmt_ns(phase.critical_ns),
            );
        }

        if !self.machines.is_empty() {
            let total: u64 = self.machines.iter().map(|m| m.busy_ns).sum();
            let mean = total as f64 / self.machines.len() as f64;
            let _ = writeln!(out);
            let _ = writeln!(out, "machines:");
            for m in &self.machines {
                let _ = writeln!(
                    out,
                    "  m{:<4} busy {:>10}  bags {:>5}  emitted {:>9}",
                    m.machine,
                    fmt_ns(m.busy_ns),
                    m.bags,
                    m.emitted,
                );
            }
            if let Some(straggler) = self
                .machines
                .iter()
                .max_by(|a, b| a.busy_ns.cmp(&b.busy_ns).then(b.machine.cmp(&a.machine)))
            {
                if total > 0 {
                    let _ = writeln!(
                        out,
                        "straggler: m{} at {:.2}x mean machine busy time",
                        straggler.machine,
                        straggler.busy_ns as f64 / mean,
                    );
                }
            }
        }

        if !self.critical.steps.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "critical path (top operators):");
            for &(op, ns) in self.critical.op_contrib.iter().take(5) {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>10} ({:.0}%)",
                    op_name(ops, op),
                    fmt_ns(ns),
                    pct(ns),
                );
            }
            if !self.critical.edge_contrib.is_empty() {
                let _ = writeln!(out, "critical path (top edges):");
                for &(edge, ns) in self.critical.edge_contrib.iter().take(5) {
                    let _ = writeln!(
                        out,
                        "  edge {edge:<21} {:>10} ({:.0}%)",
                        fmt_ns(ns),
                        pct(ns)
                    );
                }
            }
            let _ = writeln!(out, "critical path steps:");
            for s in &self.critical.steps {
                let via = s
                    .via_edge
                    .map(|e| format!(" via edge {e}"))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  m{} {:<24} bag len {:<5} +{}{}",
                    s.node.machine,
                    op_name(ops, s.node.op),
                    s.node.bag_len,
                    fmt_ns(s.contribution_ns),
                    via,
                );
            }
        }
        out
    }

    /// Serializes the profile as deterministic JSON (machine-readable
    /// counterpart of [`Profile::render`]; hand-rolled, no external
    /// dependencies). `ops` supplies operator names.
    pub fn to_json(&self, ops: &[OpStats]) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(
            out,
            "\"makespan_ns\":{},\"max_depth\":{},",
            self.makespan_ns, self.max_depth
        );
        out.push_str("\"iterations\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let coords: Vec<String> = row.coords.iter().map(u32::to_string).collect();
            let _ = write!(
                out,
                "{{\"coords\":[{}],\"label\":{},\"bags\":{},\"busy_ns\":{},\
                 \"emitted\":{},\"decisions\":{},\"send_wait_ns\":{},\
                 \"start_ns\":{},\"end_ns\":{},\"critical_ns\":{},\"skew\":{:.4},",
                coords.join(","),
                json_str(&row.label()),
                row.bags,
                row.busy_ns,
                row.emitted,
                row.decisions,
                row.send_wait_ns,
                row.start_ns,
                row.end_ns,
                row.critical_ns,
                row.skew(),
            );
            push_map(&mut out, "machines", row.machine_busy.iter());
            out.push(',');
            push_map(&mut out, "operators", row.op_busy.iter());
            out.push('}');
        }
        out.push_str("],");
        for (name, phase) in [("warmup", &self.warmup), ("steady", &self.steady)] {
            let _ = write!(
                out,
                "\"{name}\":{{\"rows\":{},\"busy_ns\":{},\"emitted\":{},\
                 \"critical_ns\":{}}},",
                phase.rows, phase.busy_ns, phase.emitted, phase.critical_ns
            );
        }
        out.push_str("\"machines\":[");
        for (i, m) in self.machines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"machine\":{},\"busy_ns\":{},\"bags\":{},\"emitted\":{}}}",
                m.machine, m.busy_ns, m.bags, m.emitted
            );
        }
        out.push_str("],\"critical\":{");
        let _ = write!(out, "\"length_ns\":{},", self.critical.length_ns);
        out.push_str("\"steps\":[");
        for (i, s) in self.critical.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let via = s
                .via_edge
                .map(|e| e.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "{{\"machine\":{},\"op\":{},\"name\":{},\"bag_len\":{},\
                 \"start_ns\":{},\"end_ns\":{},\"slack_ns\":{},\
                 \"contribution_ns\":{},\"via_edge\":{via}}}",
                s.node.machine,
                s.node.op,
                json_str(&op_name(ops, s.node.op)),
                s.node.bag_len,
                s.node.start_ns,
                s.node.end_ns,
                s.node.slack_ns,
                s.contribution_ns,
            );
        }
        out.push_str("],");
        for (name, contrib) in [
            ("op_contrib", &self.critical.op_contrib),
            ("edge_contrib", &self.critical.edge_contrib),
        ] {
            let _ = write!(out, "\"{name}\":[");
            for (i, &(id, ns)) in contrib.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{id},{ns}]");
            }
            out.push_str("],");
        }
        out.push_str("\"nodes\":[");
        for (i, n) in self.critical.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"machine\":{},\"op\":{},\"bag_len\":{},\"start_ns\":{},\
                 \"end_ns\":{},\"slack_ns\":{}}}",
                n.machine, n.op, n.bag_len, n.start_ns, n.end_ns, n.slack_ns
            );
        }
        out.push_str("]}}");
        out
    }
}

fn push_map<'a, K: std::fmt::Display + 'a>(
    out: &mut String,
    name: &str,
    entries: impl Iterator<Item = (&'a K, &'a u64)>,
) {
    let _ = write!(out, "\"{name}\":{{");
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    }
    out.push('}');
}
