//! Always-on per-worker flight recorder: a fixed-size lock-free ring of
//! the last few protocol messages each worker handled, captured even at
//! [`crate::obs::ObsLevel::Off`].
//!
//! Design constraints (and how they are met):
//! - **Fixed memory**: one lane of [`FLIGHT_SLOTS`] slots per machine,
//!   allocated once at engine start — `machines × 64 × 16` bytes, never
//!   grown.
//! - **Zero virtual time**: recording never touches [`crate::rt::Net`],
//!   so the simulator's clock is unaffected *by construction* — sim
//!   results stay bit-identical whether the recorder is on or off.
//! - **Lock-free**: each lane has a single writer (its worker), so a
//!   relaxed `fetch_add` cursor plus relaxed slot stores suffice; the
//!   dumper may observe a torn `(t_ns, word)` pair for the slot being
//!   overwritten at that instant, which is acceptable for a post-mortem
//!   aid and documented in the dump header.
//!
//! Dumps are attached to [`crate::obs::watchdog::StallReport`] and the
//! fault post-mortems, so a stalled or crashed run always shows the last
//! few messages every worker saw — regardless of the obs level.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::obs::fmt_ns;
use crate::rt::Msg;

/// Ring capacity per worker lane. 64 events × 16 bytes = 1 KiB per
/// worker, enough to cover several protocol steps of history.
pub const FLIGHT_SLOTS: usize = 64;

/// Message codes packed into the high byte of a slot word.
const CODE_DECISION: u64 = 1;
const CODE_DATA: u64 = 2;
const CODE_BAG_DONE: u64 = 3;
const CODE_BAG_COMPUTED: u64 = 4;
const CODE_RELEASE: u64 = 5;
const CODE_IO_DONE: u64 = 6;
const CODE_RELIABLE: u64 = 7;
const CODE_ACK: u64 = 8;
const CODE_RETRY_TICK: u64 = 9;
const CODE_START: u64 = 10;

/// One ring slot: timestamp + packed `code << 56 | detail` word.
#[derive(Debug)]
struct Slot {
    t_ns: AtomicU64,
    word: AtomicU64,
}

/// One worker's ring: a monotone cursor plus [`FLIGHT_SLOTS`] slots.
#[derive(Debug)]
struct Lane {
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

/// The engine-wide flight recorder: one lane per machine, shared
/// through [`crate::rt::EngineShared`].
#[derive(Debug)]
pub struct FlightRecorder {
    lanes: Vec<Lane>,
    enabled: bool,
}

fn flight_off() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| std::env::var_os("MITOS_FLIGHT_OFF").is_some())
}

impl FlightRecorder {
    /// Allocates one lane per machine. Honors the `MITOS_FLIGHT_OFF`
    /// environment variable (read once per process) for A/B overhead
    /// measurements; when set, [`record`](Self::record) is a single
    /// branch and [`dump_lines`](Self::dump_lines) reports the recorder
    /// as disabled.
    pub fn new(machines: u16) -> FlightRecorder {
        let enabled = !flight_off();
        let lanes = (0..machines)
            .map(|_| Lane {
                cursor: AtomicU64::new(0),
                slots: (0..FLIGHT_SLOTS)
                    .map(|_| Slot {
                        t_ns: AtomicU64::new(0),
                        word: AtomicU64::new(0),
                    })
                    .collect(),
            })
            .collect();
        FlightRecorder { lanes, enabled }
    }

    /// Records one handled message into `machine`'s lane. Never reads the
    /// clock itself — `now_ns` is the caller's already-read timestamp —
    /// and never touches the [`crate::rt::Net`], so recording charges
    /// zero virtual time. Single branch + two relaxed stores.
    #[inline]
    pub fn record(&self, machine: u16, now_ns: u64, msg: &Msg) {
        if !self.enabled {
            return;
        }
        let Some(lane) = self.lanes.get(machine as usize) else {
            return;
        };
        let (code, detail) = encode(msg);
        let i = lane.cursor.fetch_add(1, Ordering::Relaxed) as usize % FLIGHT_SLOTS;
        lane.slots[i].t_ns.store(now_ns, Ordering::Relaxed);
        lane.slots[i]
            .word
            .store((code << 56) | (detail & ((1 << 56) - 1)), Ordering::Relaxed);
    }

    /// Decodes every lane's ring, oldest event first, one line per
    /// machine: `m3: decision(2)@1.20ms | data(5)@1.21ms | ...`.
    /// Reads are relaxed, so a slot being overwritten concurrently may
    /// render torn — acceptable for a post-mortem aid.
    pub fn dump_lines(&self) -> Vec<String> {
        if !self.enabled {
            return vec!["flight recorder disabled (MITOS_FLIGHT_OFF)".into()];
        }
        self.lanes
            .iter()
            .enumerate()
            .map(|(m, lane)| {
                let written = lane.cursor.load(Ordering::Relaxed);
                let n = (written as usize).min(FLIGHT_SLOTS);
                let start = written as usize - n;
                let entries: Vec<String> = (start..written as usize)
                    .map(|j| {
                        let slot = &lane.slots[j % FLIGHT_SLOTS];
                        let t = slot.t_ns.load(Ordering::Relaxed);
                        let word = slot.word.load(Ordering::Relaxed);
                        let detail = word & ((1 << 56) - 1);
                        format!("{}({detail})@{}", code_name(word >> 56), fmt_ns(t))
                    })
                    .collect();
                if entries.is_empty() {
                    format!("m{m}: (no events)")
                } else {
                    format!("m{m}: {}", entries.join(" | "))
                }
            })
            .collect()
    }
}

/// Packs a message into `(code, detail)`: the detail operand is the
/// field most useful in a post-mortem (step index, bag length, seq, …).
fn encode(msg: &Msg) -> (u64, u64) {
    match msg {
        Msg::Start => (CODE_START, 0),
        Msg::Decision { index, .. } => (CODE_DECISION, *index as u64),
        Msg::Data { bag_len, .. } => (CODE_DATA, *bag_len as u64),
        Msg::BagDone { bag_len, .. } => (CODE_BAG_DONE, *bag_len as u64),
        Msg::BagComputed { pos, .. } => (CODE_BAG_COMPUTED, *pos as u64),
        Msg::Release { pos } => (CODE_RELEASE, *pos as u64),
        Msg::IoDone { op, .. } => (CODE_IO_DONE, *op as u64),
        Msg::Reliable { seq, .. } => (CODE_RELIABLE, *seq),
        Msg::Ack { seq, .. } => (CODE_ACK, *seq),
        Msg::RetryTick { peer } => (CODE_RETRY_TICK, *peer as u64),
    }
}

fn code_name(code: u64) -> &'static str {
    match code {
        CODE_DECISION => "decision",
        CODE_DATA => "data",
        CODE_BAG_DONE => "bag_done",
        CODE_BAG_COMPUTED => "bag_computed",
        CODE_RELEASE => "release",
        CODE_IO_DONE => "io_done",
        CODE_RELIABLE => "reliable",
        CODE_ACK => "ack",
        CODE_RETRY_TICK => "retry_tick",
        CODE_START => "start",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_dumps_in_order() {
        let rec = FlightRecorder::new(2);
        if !rec.enabled {
            return; // MITOS_FLIGHT_OFF set in the environment
        }
        rec.record(0, 100, &Msg::Release { pos: 7 });
        rec.record(0, 200, &Msg::RetryTick { peer: 0 });
        rec.record(1, 150, &Msg::Release { pos: 3 });
        let lines = rec.dump_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("release(7)@100ns | retry_tick(0)@200ns"));
        assert!(lines[1].contains("release(3)@150ns"));
    }

    #[test]
    fn ring_keeps_only_last_slots() {
        let rec = FlightRecorder::new(1);
        if !rec.enabled {
            return;
        }
        for i in 0..(FLIGHT_SLOTS as u32 + 10) {
            rec.record(0, i as u64, &Msg::Release { pos: i });
        }
        let lines = rec.dump_lines();
        // The first 10 entries were overwritten.
        assert!(!lines[0].contains("release(0)@"));
        assert!(lines[0].contains(&format!("release({})", FLIGHT_SLOTS as u32 + 9)));
        assert_eq!(lines[0].matches("release(").count(), FLIGHT_SLOTS);
    }

    #[test]
    fn out_of_range_machine_is_ignored() {
        let rec = FlightRecorder::new(1);
        rec.record(9, 1, &Msg::RetryTick { peer: 0 });
        let lines = rec.dump_lines();
        assert_eq!(lines.len(), 1);
    }
}
