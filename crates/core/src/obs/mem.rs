//! Memory/state telemetry: per-machine, per-retention-class residency
//! accounting with retention attribution, always on like the
//! [`crate::obs::flow::FlowRegistry`].
//!
//! Every bag buffer the runtime retains is charged to exactly one
//! [`MemClass`] when it grows and credited when Release-based GC (or the
//! relay's ack/compaction machinery) frees it:
//!
//! * [`MemClass::AwaitingInputs`] — buffered input bags in
//!   `Host::inputs` (charged in `on_data`/`on_done`, credited by the
//!   `start_bag` retain-GC and the end-of-run sweep);
//! * [`MemClass::AwaitingBarrier`] — elements parked on undecided
//!   conditional output edges (charged in `emit_all`, credited when
//!   `advance_watchers` resolves the edge to Send or Drop);
//! * [`MemClass::HoistCache`] — the deliberate loop-invariant cache
//!   (`Host::kept` build tables), the one class allowed to stay resident
//!   after a clean run;
//! * [`MemClass::RelayBuf`] — unacked envelopes in the relay's
//!   retransmit buffer (charged in `Relay::send_via`, credited on ack);
//! * [`MemClass::DedupTable`] — `(src, seq)` dedup entries above the
//!   relay's compaction watermark.
//!
//! Design constraints, matching the flow registry and flight recorder:
//! - **Zero virtual time**: no charge/credit touches [`crate::rt::Net`],
//!   so simulated results are bit-identical with accounting on or off.
//! - **Sharded single writers**: each `(machine, class)` shard is written
//!   only by that machine's worker thread, so relaxed atomics suffice.
//! - **Kill switch**: `MITOS_MEM_OFF` (read once per process) turns every
//!   charge into a single branch, for A/B overhead measurements —
//!   mirroring `MITOS_FLOW_OFF` on the flow registry.
//!
//! High-water marks are maintained inline on every charge (default runs
//! never tick) and refreshed from the gauges on the drivers' existing
//! sampling ticks via [`MemRegistry::sample`]. A [`MemReport`] snapshot
//! is attached to [`crate::engine::EngineResult::mem`], rendered by
//! `mitos mem`, the residency rows in `explain`, the DOT residency heat
//! overlay, the `mitos_mem_*` Prometheus series and the `--watch`
//! peak-resident line; retained-state attribution lines land in
//! [`crate::obs::watchdog::StallReport::retained`]. The headline
//! correctness payoff is the **leak detector**:
//! [`MemReport::non_cache_resident`] must be zero after a fault-free run,
//! and the relay classes must drain to their compaction watermark at
//! quiescence under faults.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::graph::LogicalGraph;
use crate::obs::event::OP_NONE;
use crate::obs::flow::fmt_bytes;

/// All counter traffic is single-writer-per-shard (or commutative adds),
/// so relaxed ordering is sufficient everywhere.
const RELAXED: Ordering = Ordering::Relaxed;

/// Approximate bytes of one `(src, seq)` dedup-table entry.
pub const DEDUP_ENTRY_BYTES: u64 = 8;

/// Per-envelope overhead of a relay [`crate::rt::Msg::Reliable`] wrapper,
/// matching the wire-byte surcharge the relay itself pays.
pub const ENVELOPE_BYTES: u64 = 24;

fn mem_off() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| std::env::var_os("MITOS_MEM_OFF").is_some())
}

/// Why a resident bag (or bag-shaped buffer) is still in memory — the
/// retention attribution axis of the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemClass {
    /// Buffered input bags a host keeps for assembly and possible
    /// re-selection (loop-invariant inputs select an old occurrence).
    AwaitingInputs = 0,
    /// Elements parked on a conditional output edge whose send/drop
    /// decision has not arrived yet.
    AwaitingBarrier = 1,
    /// The deliberate loop-invariant cache: a Join build table or Cross
    /// side kept across bag instances by hoisting.
    HoistCache = 2,
    /// Unacknowledged envelopes in the relay's retransmit buffer.
    RelayBuf = 3,
    /// `(src, seq)` entries above the relay dedup watermark.
    DedupTable = 4,
}

/// Number of [`MemClass`] variants (shard array size).
pub const MEM_CLASSES: usize = 5;

impl MemClass {
    /// Every class, in shard order.
    pub const ALL: [MemClass; MEM_CLASSES] = [
        MemClass::AwaitingInputs,
        MemClass::AwaitingBarrier,
        MemClass::HoistCache,
        MemClass::RelayBuf,
        MemClass::DedupTable,
    ];

    /// Stable human-readable label (also the Prometheus `class` label).
    pub fn label(self) -> &'static str {
        match self {
            MemClass::AwaitingInputs => "awaiting-inputs",
            MemClass::AwaitingBarrier => "awaiting-barrier",
            MemClass::HoistCache => "hoist-cache",
            MemClass::RelayBuf => "relay-buf",
            MemClass::DedupTable => "dedup-table",
        }
    }

    /// Whether residency in this class after a clean run is deliberate
    /// (excluded from the leak detector).
    pub fn is_cache(self) -> bool {
        matches!(self, MemClass::HoistCache)
    }
}

/// Gauges for one `(machine, class)` shard. Single writer: that machine's
/// worker thread.
#[derive(Debug, Default)]
struct ClassShard {
    live: AtomicU64,
    elems: AtomicU64,
    bytes: AtomicU64,
    bytes_hwm: AtomicU64,
}

/// One machine's shards plus its all-class resident total.
#[derive(Debug, Default)]
struct MachineShard {
    classes: [ClassShard; MEM_CLASSES],
    resident: AtomicU64,
    resident_hwm: AtomicU64,
}

/// Saturating decrement: a credit without a matching charge (never
/// expected) must not wrap the gauge.
fn sat_sub(gauge: &AtomicU64, v: u64) {
    let _ = gauge.fetch_update(RELAXED, RELAXED, |x| Some(x.saturating_sub(v)));
}

fn raise_hwm(hwm: &AtomicU64, now: u64) {
    if now > hwm.load(RELAXED) {
        hwm.store(now, RELAXED);
    }
}

/// The engine-wide memory-accounting registry, shared through
/// [`crate::rt::EngineShared`] next to the flow registry.
#[derive(Debug)]
pub struct MemRegistry {
    machines: Vec<MachineShard>,
    /// Per-`(machine, op)` resident bytes, machine-major — operator
    /// attribution for the DOT residency heat overlay.
    op_bytes: Vec<AtomicU64>,
    op_bytes_hwm: Vec<AtomicU64>,
    ops: usize,
    enabled: bool,
}

impl MemRegistry {
    /// Allocates per-`(machine, class)` and per-`(machine, op)` shards for
    /// a graph with `ops` operators on `machines` machines. Honors
    /// `MITOS_MEM_OFF` (read once per process): when set, every charge is
    /// a single branch and the snapshot reports the registry as disabled.
    pub fn new(machines: u16, ops: usize) -> MemRegistry {
        let n = machines as usize;
        MemRegistry {
            machines: (0..n).map(|_| MachineShard::default()).collect(),
            op_bytes: (0..n * ops).map(|_| AtomicU64::new(0)).collect(),
            op_bytes_hwm: (0..n * ops).map(|_| AtomicU64::new(0)).collect(),
            ops,
            enabled: !mem_off(),
        }
    }

    /// Whether accounting is active (i.e. `MITOS_MEM_OFF` is unset).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Charges `bags` live bags, `elems` elements and `bytes` approximate
    /// bytes of residency to `(machine, class)`, attributing the bytes to
    /// operator `op` for the heat overlay ([`OP_NONE`] for machine-level
    /// state like the relay's buffers). High-water marks update inline so
    /// peaks are captured even on runs without sampling ticks.
    #[inline]
    pub fn charge(
        &self,
        class: MemClass,
        machine: u16,
        op: u32,
        bags: u64,
        elems: u64,
        bytes: u64,
    ) {
        if !self.enabled {
            return;
        }
        let Some(shard) = self.machines.get(machine as usize) else {
            return;
        };
        let c = &shard.classes[class as usize];
        c.live.fetch_add(bags, RELAXED);
        c.elems.fetch_add(elems, RELAXED);
        raise_hwm(&c.bytes_hwm, c.bytes.fetch_add(bytes, RELAXED) + bytes);
        raise_hwm(
            &shard.resident_hwm,
            shard.resident.fetch_add(bytes, RELAXED) + bytes,
        );
        if op != OP_NONE {
            let idx = machine as usize * self.ops + op as usize;
            if let (Some(g), Some(h)) = (self.op_bytes.get(idx), self.op_bytes_hwm.get(idx)) {
                raise_hwm(h, g.fetch_add(bytes, RELAXED) + bytes);
            }
        }
    }

    /// Credits residency back on Release/GC — the inverse of
    /// [`MemRegistry::charge`], with the same `(class, machine, op)` key.
    #[inline]
    pub fn credit(
        &self,
        class: MemClass,
        machine: u16,
        op: u32,
        bags: u64,
        elems: u64,
        bytes: u64,
    ) {
        if !self.enabled {
            return;
        }
        let Some(shard) = self.machines.get(machine as usize) else {
            return;
        };
        let c = &shard.classes[class as usize];
        sat_sub(&c.live, bags);
        sat_sub(&c.elems, elems);
        sat_sub(&c.bytes, bytes);
        sat_sub(&shard.resident, bytes);
        if op != OP_NONE {
            if let Some(g) = self.op_bytes.get(machine as usize * self.ops + op as usize) {
                sat_sub(g, bytes);
            }
        }
    }

    /// One sample from a driver's existing sampling loop: refreshes every
    /// high-water mark from its gauge. Never touches the
    /// [`crate::rt::Net`], so sampling stays free of virtual time.
    pub fn sample(&self) {
        if !self.enabled {
            return;
        }
        for shard in &self.machines {
            for c in &shard.classes {
                raise_hwm(&c.bytes_hwm, c.bytes.load(RELAXED));
            }
            raise_hwm(&shard.resident_hwm, shard.resident.load(RELAXED));
        }
        for (g, h) in self.op_bytes.iter().zip(&self.op_bytes_hwm) {
            raise_hwm(h, g.load(RELAXED));
        }
    }

    /// The `--watch` peak-resident cell: `(current resident bytes, peak)`
    /// across all machines and classes. `None` until any state was
    /// resident (or when disabled), keeping quiet watch tables
    /// byte-stable.
    pub fn watch_cell(&self) -> Option<(u64, u64)> {
        if !self.enabled {
            return None;
        }
        let cur: u64 = self.machines.iter().map(|s| s.resident.load(RELAXED)).sum();
        let peak: u64 = self
            .machines
            .iter()
            .map(|s| s.resident_hwm.load(RELAXED))
            .sum();
        (peak > 0).then_some((cur, peak))
    }

    /// An immutable snapshot of every gauge and watermark. Relaxed reads
    /// over single-writer shards: taken after the drivers join (or at a
    /// stall), when the writers have quiesced.
    pub fn snapshot(&self) -> MemReport {
        let machines = self
            .machines
            .iter()
            .map(|s| MachineMem {
                classes: s
                    .classes
                    .iter()
                    .map(|c| ClassMem {
                        live: c.live.load(RELAXED),
                        elems: c.elems.load(RELAXED),
                        bytes: c.bytes.load(RELAXED),
                        bytes_hwm: c.bytes_hwm.load(RELAXED),
                    })
                    .collect(),
                resident: s.resident.load(RELAXED),
                resident_hwm: s.resident_hwm.load(RELAXED),
            })
            .collect();
        let mut op_bytes = vec![0u64; self.ops];
        let mut op_bytes_hwm = vec![0u64; self.ops];
        for m in 0..self.machines.len() {
            for op in 0..self.ops {
                op_bytes[op] += self.op_bytes[m * self.ops + op].load(RELAXED);
                op_bytes_hwm[op] += self.op_bytes_hwm[m * self.ops + op].load(RELAXED);
            }
        }
        MemReport {
            enabled: self.enabled,
            machines,
            op_bytes,
            op_bytes_hwm,
        }
    }
}

/// Residency totals of one `(machine, class)` shard (or an aggregation of
/// several).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassMem {
    /// Live bags (or bag-shaped buffers: relay envelopes, dedup entries).
    pub live: u64,
    /// Resident elements.
    pub elems: u64,
    /// Approximate resident bytes.
    pub bytes: u64,
    /// High-water mark of `bytes`.
    pub bytes_hwm: u64,
}

impl ClassMem {
    fn add(&mut self, other: &ClassMem) {
        self.live += other.live;
        self.elems += other.elems;
        self.bytes += other.bytes;
        self.bytes_hwm += other.bytes_hwm;
    }
}

/// One machine's complete residency totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MachineMem {
    /// Per-class shards, indexed by [`MemClass`] discriminant.
    pub classes: Vec<ClassMem>,
    /// Current resident bytes across all classes.
    pub resident: u64,
    /// High-water mark of `resident`.
    pub resident_hwm: u64,
}

/// An immutable snapshot of the whole registry — the value behind
/// [`crate::engine::EngineResult::mem`] and `Outcome::mem()`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemReport {
    /// False when `MITOS_MEM_OFF` suppressed accounting (all zeros then).
    pub enabled: bool,
    /// Per-machine totals, indexed by machine.
    pub machines: Vec<MachineMem>,
    /// Current resident bytes per operator (summed over machines).
    pub op_bytes: Vec<u64>,
    /// Peak resident bytes per operator (summed over machines).
    pub op_bytes_hwm: Vec<u64>,
}

impl MemReport {
    /// Current resident bytes across all machines and classes.
    pub fn resident_total(&self) -> u64 {
        self.machines.iter().map(|m| m.resident).sum()
    }

    /// Peak resident bytes (sum of per-machine high-water marks).
    pub fn peak_resident(&self) -> u64 {
        self.machines.iter().map(|m| m.resident_hwm).sum()
    }

    /// Aggregated totals of one class across machines (`bytes_hwm` is the
    /// sum of per-machine peaks).
    pub fn class_total(&self, class: MemClass) -> ClassMem {
        let mut total = ClassMem::default();
        for m in &self.machines {
            if let Some(c) = m.classes.get(class as usize) {
                total.add(c);
            }
        }
        total
    }

    /// The leak detector: everything currently resident outside the
    /// deliberate caches ([`MemClass::is_cache`]). A fault-free run must
    /// end with this at zero — buffered inputs swept at exit, barrier
    /// buffers resolved, relay buffers acked, dedup tables compacted.
    pub fn non_cache_resident(&self) -> ClassMem {
        let mut total = ClassMem::default();
        for class in MemClass::ALL {
            if !class.is_cache() {
                let c = self.class_total(class);
                total.live += c.live;
                total.elems += c.elems;
                total.bytes += c.bytes;
            }
        }
        total
    }

    /// Whether the run ended leak-free: zero live bags and bytes outside
    /// the deliberate caches.
    pub fn leak_free(&self) -> bool {
        let r = self.non_cache_resident();
        r.live == 0 && r.bytes == 0
    }

    /// Retained-state attribution lines for
    /// [`crate::obs::watchdog::StallReport`]: one per `(machine, class)`
    /// with live residency, machines in order. Empty when nothing is
    /// resident (or when disabled), keeping healthy reports byte-stable.
    pub fn retained_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (m, shard) in self.machines.iter().enumerate() {
            for class in MemClass::ALL {
                let Some(c) = shard.classes.get(class as usize) else {
                    continue;
                };
                if c.live == 0 && c.bytes == 0 {
                    continue;
                }
                lines.push(format!(
                    "m{m} {}: {} bag(s), {} elem(s), {}{}",
                    class.label(),
                    c.live,
                    c.elems,
                    fmt_bytes(c.bytes),
                    if class.is_cache() {
                        " (deliberate)"
                    } else {
                        ""
                    },
                ));
            }
        }
        lines
    }

    /// Operators ordered by peak resident bytes (hottest first, ties
    /// toward the lowest id), omitting operators that never held state.
    pub fn ops_by_peak(&self) -> Vec<(u32, u64, u64)> {
        let mut ops: Vec<(u32, u64, u64)> = self
            .op_bytes_hwm
            .iter()
            .enumerate()
            .filter(|&(_, &peak)| peak > 0)
            .map(|(op, &peak)| (op as u32, peak, self.op_bytes[op]))
            .collect();
        ops.sort_by_key(|&(op, peak, _)| (std::cmp::Reverse(peak), op));
        ops
    }

    /// The `mitos mem` text report: residency by class, the leak-detector
    /// verdict, per-machine totals, and the top operators by peak
    /// resident bytes.
    pub fn render(&self, graph: &LogicalGraph) -> String {
        let mut out = String::new();
        if !self.enabled {
            out.push_str("memory accounting disabled (MITOS_MEM_OFF)\n");
            return out;
        }
        out.push_str("state residency by class:\n");
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>10} {:>10} {:>10}",
            "class", "live bags", "elements", "bytes", "peak"
        );
        for class in MemClass::ALL {
            let c = self.class_total(class);
            let _ = writeln!(
                out,
                "{:<18} {:>10} {:>10} {:>10} {:>10}",
                class.label(),
                c.live,
                c.elems,
                fmt_bytes(c.bytes),
                fmt_bytes(c.bytes_hwm),
            );
        }
        let _ = writeln!(
            out,
            "total resident: {} (peak {})",
            fmt_bytes(self.resident_total()),
            fmt_bytes(self.peak_resident()),
        );
        let nc = self.non_cache_resident();
        if self.leak_free() {
            out.push_str("non-cache resident: 0 bags, 0B (leak-free)\n");
        } else {
            let _ = writeln!(
                out,
                "non-cache resident: {} bag(s), {} — retained state outside deliberate caches",
                nc.live,
                fmt_bytes(nc.bytes),
            );
        }
        out.push_str("\nper-machine:\n");
        let _ = writeln!(out, "{:>8} {:>12} {:>12}", "machine", "resident", "peak");
        for (m, shard) in self.machines.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>8} {:>12} {:>12}",
                format!("m{m}"),
                fmt_bytes(shard.resident),
                fmt_bytes(shard.resident_hwm),
            );
        }
        let ops = self.ops_by_peak();
        if !ops.is_empty() {
            out.push_str("\ntop operators by peak resident bytes:\n");
            for (op, peak, now) in ops {
                let name = graph.nodes.get(op as usize).map_or("?", |n| &*n.name);
                let _ = writeln!(
                    out,
                    "{:<28} {:>10} (now {})",
                    name,
                    fmt_bytes(peak),
                    fmt_bytes(now),
                );
            }
        }
        out
    }

    /// Per-class residency rows for the `explain` report. Empty output
    /// when no state was ever resident (or when disabled), keeping
    /// existing explain output byte-stable.
    pub fn explain_rows(&self) -> String {
        if !self.enabled || self.peak_resident() == 0 {
            return String::new();
        }
        let mut out = String::new();
        out.push_str("\nstate residency (memory):\n");
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>10} {:>10}",
            "class", "live bags", "bytes", "peak"
        );
        for class in MemClass::ALL {
            let c = self.class_total(class);
            if c.bytes_hwm == 0 && c.live == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<18} {:>10} {:>10} {:>10}",
                class.label(),
                c.live,
                fmt_bytes(c.bytes),
                fmt_bytes(c.bytes_hwm),
            );
        }
        let _ = writeln!(
            out,
            "peak resident {} across {} machine(s); {}",
            fmt_bytes(self.peak_resident()),
            self.machines.len(),
            if self.leak_free() {
                "leak-free".to_string()
            } else {
                let nc = self.non_cache_resident();
                format!("{} non-cache bag(s) retained", nc.live)
            },
        );
        out
    }

    /// `mitos_mem_*` Prometheus series in text exposition format,
    /// appended to the phase histograms and flow series under
    /// `--metrics-out`.
    pub fn prometheus(&self, graph: &LogicalGraph) -> String {
        let mut out = String::new();
        out.push_str("# HELP mitos_mem_resident_bytes Resident state bytes per machine and retention class.\n");
        out.push_str("# TYPE mitos_mem_resident_bytes gauge\n");
        for (m, shard) in self.machines.iter().enumerate() {
            for class in MemClass::ALL {
                let c = &shard.classes[class as usize];
                let _ = writeln!(
                    out,
                    "mitos_mem_resident_bytes{{machine=\"{m}\",class=\"{}\"}} {}",
                    class.label(),
                    c.bytes
                );
            }
        }
        out.push_str("# HELP mitos_mem_resident_bytes_peak High-water mark of resident bytes per machine and class.\n");
        out.push_str("# TYPE mitos_mem_resident_bytes_peak gauge\n");
        for (m, shard) in self.machines.iter().enumerate() {
            for class in MemClass::ALL {
                let c = &shard.classes[class as usize];
                let _ = writeln!(
                    out,
                    "mitos_mem_resident_bytes_peak{{machine=\"{m}\",class=\"{}\"}} {}",
                    class.label(),
                    c.bytes_hwm
                );
            }
        }
        out.push_str(
            "# HELP mitos_mem_resident_bags Live resident bags per machine and retention class.\n",
        );
        out.push_str("# TYPE mitos_mem_resident_bags gauge\n");
        for (m, shard) in self.machines.iter().enumerate() {
            for class in MemClass::ALL {
                let c = &shard.classes[class as usize];
                let _ = writeln!(
                    out,
                    "mitos_mem_resident_bags{{machine=\"{m}\",class=\"{}\"}} {}",
                    class.label(),
                    c.live
                );
            }
        }
        out.push_str("# HELP mitos_mem_machine_resident_bytes Resident state bytes per machine, all classes.\n");
        out.push_str("# TYPE mitos_mem_machine_resident_bytes gauge\n");
        for (m, shard) in self.machines.iter().enumerate() {
            let _ = writeln!(
                out,
                "mitos_mem_machine_resident_bytes{{machine=\"{m}\"}} {}",
                shard.resident
            );
        }
        out.push_str("# HELP mitos_mem_op_resident_bytes_peak Peak resident bytes per operator.\n");
        out.push_str("# TYPE mitos_mem_op_resident_bytes_peak gauge\n");
        for (op, peak, _) in self.ops_by_peak() {
            let name = graph.nodes.get(op as usize).map_or("?", |n| &*n.name);
            let _ = writeln!(
                out,
                "mitos_mem_op_resident_bytes_peak{{op=\"{op}\",name=\"{name}\"}} {peak}"
            );
        }
        out
    }

    /// Serializes the report as deterministic JSON (hand-rolled, no
    /// external dependencies) — the machine-readable counterpart of
    /// [`MemReport::render`], embedded in `mitos explain --json`.
    pub fn to_json(&self, graph: &LogicalGraph) -> String {
        let nc = self.non_cache_resident();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"enabled\":{},\"resident_bytes\":{},\"peak_resident_bytes\":{},\
             \"leak_free\":{},\"non_cache_bags\":{},\"non_cache_bytes\":{},\"classes\":[",
            self.enabled,
            self.resident_total(),
            self.peak_resident(),
            self.leak_free(),
            nc.live,
            nc.bytes,
        );
        for (i, class) in MemClass::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let c = self.class_total(class);
            let _ = write!(
                out,
                "{{\"class\":{},\"live\":{},\"elems\":{},\"bytes\":{},\"peak_bytes\":{}}}",
                super::json_str(class.label()),
                c.live,
                c.elems,
                c.bytes,
                c.bytes_hwm,
            );
        }
        out.push_str("],\"machines\":[");
        for (m, shard) in self.machines.iter().enumerate() {
            if m > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"machine\":{m},\"resident_bytes\":{},\"peak_bytes\":{}}}",
                shard.resident, shard.resident_hwm,
            );
        }
        out.push_str("],\"ops\":[");
        for (i, (op, peak, now)) in self.ops_by_peak().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = graph.nodes.get(op as usize).map_or("?", |n| &*n.name);
            let _ = write!(
                out,
                "{{\"op\":{op},\"name\":{},\"peak_bytes\":{peak},\"bytes\":{now}}}",
                super::json_str(name),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Approximate heap bytes of a slice of values — the same estimator the
/// cost model uses for wire bytes, without the per-batch envelope.
pub fn elems_bytes(elems: &[mitos_lang::Value]) -> u64 {
    elems.iter().map(mitos_lang::Value::estimated_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph() -> LogicalGraph {
        let func = mitos_ir::compile_str(
            r#"
            b = readFile("f").map(x => (x % 2, 1)).reduceByKey((a, b) => a + b);
            output(b.count(), "n");
            "#,
        )
        .unwrap();
        LogicalGraph::build(&func).unwrap()
    }

    #[test]
    fn charges_credit_and_track_peaks() {
        let reg = MemRegistry::new(2, 4);
        if !reg.enabled() {
            return; // MITOS_MEM_OFF set in the environment
        }
        reg.charge(MemClass::AwaitingInputs, 0, 1, 2, 10, 100);
        reg.charge(MemClass::AwaitingInputs, 0, 1, 1, 5, 50);
        reg.charge(MemClass::HoistCache, 1, 2, 1, 3, 30);
        reg.credit(MemClass::AwaitingInputs, 0, 1, 1, 5, 50);
        let r = reg.snapshot();
        let ai = r.class_total(MemClass::AwaitingInputs);
        assert_eq!((ai.live, ai.elems, ai.bytes), (2, 10, 100));
        assert_eq!(ai.bytes_hwm, 150, "peak captured inline, before credit");
        assert_eq!(r.resident_total(), 130);
        assert_eq!(r.peak_resident(), 180);
        assert_eq!(r.op_bytes[1], 100);
        assert_eq!(r.op_bytes_hwm[1], 150);
        assert_eq!(r.machines[1].resident, 30);
        assert!(!r.leak_free(), "awaiting-inputs still resident");
        reg.credit(MemClass::AwaitingInputs, 0, 1, 2, 10, 100);
        let r = reg.snapshot();
        assert!(r.leak_free(), "only the hoist cache remains");
        assert_eq!(r.resident_total(), 30);
    }

    #[test]
    fn credits_saturate_instead_of_wrapping() {
        let reg = MemRegistry::new(1, 1);
        if !reg.enabled() {
            return;
        }
        reg.charge(MemClass::RelayBuf, 0, OP_NONE, 1, 0, 40);
        reg.credit(MemClass::RelayBuf, 0, OP_NONE, 2, 5, 100);
        let r = reg.snapshot();
        let c = r.class_total(MemClass::RelayBuf);
        assert_eq!((c.live, c.elems, c.bytes), (0, 0, 0));
        assert_eq!(r.resident_total(), 0);
    }

    #[test]
    fn sample_refreshes_watermarks_and_watch_cell() {
        let reg = MemRegistry::new(1, 2);
        if !reg.enabled() {
            return;
        }
        assert_eq!(reg.watch_cell(), None, "nothing resident yet");
        reg.charge(MemClass::AwaitingBarrier, 0, 0, 1, 4, 64);
        reg.sample();
        assert_eq!(reg.watch_cell(), Some((64, 64)));
        reg.credit(MemClass::AwaitingBarrier, 0, 0, 1, 4, 64);
        assert_eq!(reg.watch_cell(), Some((0, 64)), "peak survives the credit");
    }

    #[test]
    fn retained_lines_stay_empty_when_drained() {
        let reg = MemRegistry::new(2, 1);
        if !reg.enabled() {
            return;
        }
        assert!(reg.snapshot().retained_lines().is_empty());
        reg.charge(MemClass::DedupTable, 1, OP_NONE, 3, 0, 24);
        reg.charge(MemClass::HoistCache, 0, 0, 1, 2, 20);
        let lines = reg.snapshot().retained_lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("hoist-cache") && lines[0].contains("(deliberate)"));
        assert!(lines[1].contains("m1 dedup-table: 3 bag(s)"), "{lines:?}");
        reg.credit(MemClass::DedupTable, 1, OP_NONE, 3, 0, 24);
        let lines = reg.snapshot().retained_lines();
        assert_eq!(lines.len(), 1, "dedup drained to watermark: {lines:?}");
    }

    #[test]
    fn render_prometheus_and_json_cover_classes_and_ops() {
        let graph = toy_graph();
        let reg = MemRegistry::new(2, graph.nodes.len());
        if !reg.enabled() {
            return;
        }
        reg.charge(MemClass::AwaitingInputs, 0, 0, 1, 40, 400);
        let r = reg.snapshot();
        let text = r.render(&graph);
        assert!(text.contains("state residency by class"), "{text}");
        assert!(text.contains("awaiting-inputs"), "{text}");
        assert!(text.contains("400B"), "{text}");
        assert!(
            text.contains("top operators by peak resident bytes"),
            "{text}"
        );
        let prom = r.prometheus(&graph);
        assert!(
            prom.contains("# TYPE mitos_mem_resident_bytes gauge"),
            "{prom}"
        );
        assert!(
            prom.contains("mitos_mem_resident_bytes{machine=\"0\",class=\"awaiting-inputs\"} 400"),
            "{prom}"
        );
        assert!(
            prom.contains("mitos_mem_op_resident_bytes_peak{op=\"0\""),
            "{prom}"
        );
        let json = r.to_json(&graph);
        assert!(json.starts_with("{\"enabled\":true"), "{json}");
        assert!(json.contains("\"class\":\"awaiting-inputs\""), "{json}");
        assert!(json.contains("\"leak_free\":false"), "{json}");
        let rows = r.explain_rows();
        assert!(rows.contains("state residency (memory)"), "{rows}");
        // A quiet report contributes nothing to explain.
        assert_eq!(
            MemRegistry::new(2, graph.nodes.len())
                .snapshot()
                .explain_rows(),
            ""
        );
        reg.credit(MemClass::AwaitingInputs, 0, 0, 1, 40, 400);
        let text = reg.snapshot().render(&graph);
        assert!(text.contains("leak-free"), "{text}");
    }
}
