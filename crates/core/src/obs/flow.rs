//! Data-plane flow accounting: per-edge byte/element/message counters,
//! relay inflight-window watermarks and queue-depth/backpressure
//! sampling, always on like the [`crate::obs::live::TelemetryHub`].
//!
//! Every data-plane send ([`crate::rt::Msg::Data`] /
//! [`crate::rt::Msg::BagDone`]) bumps a per-`(edge, source machine)`
//! shard on the way out (in `Host::send_batches` and the punctuation
//! emitter) and a per-`(edge, destination machine)` shard on the way in
//! (in `Worker::ingest`, **after** the relay's duplicate filter — so the
//! receive-side totals reconcile exactly with
//! [`crate::engine::EngineResult::data_messages`], retransmissions and
//! duplicates included). Retransmitted wire bytes are accounted
//! separately by the relay.
//!
//! Design constraints, matching the telemetry hub and flight recorder:
//! - **Zero virtual time**: no counter update touches [`crate::rt::Net`],
//!   so simulated results are bit-identical with accounting on or off.
//! - **Sharded single writers**: each `(edge, machine)` shard is written
//!   only by that machine's worker thread, so relaxed atomics suffice and
//!   per-shard reads can never observe a counter moving backwards.
//! - **Kill switch**: `MITOS_FLOW_OFF` (read once per process) turns every
//!   bump into a single branch, for A/B overhead measurements — mirroring
//!   `MITOS_FLIGHT_OFF` on the flight recorder.
//!
//! The drivers sample queue depths into the registry from their existing
//! sampling loops (`Sim::run_sampled` between events at exact virtual-time
//! multiples; the thread driver's monitor on every wake-up): per-machine
//! inbox-occupancy high-watermarks, and per-edge backpressure time — the
//! accumulated sampling interval during which an edge had at least
//! [`BACKPRESSURE_WINDOW`] unacknowledged messages in its relay window.
//! A [`FlowReport`] snapshot is attached to
//! [`crate::engine::EngineResult::flow`], rendered by `mitos flow`, the
//! per-edge `explain` rows, the DOT heat overlay, the Prometheus exporter
//! and the `--watch` hottest-edge line; backpressure attribution lines
//! land in [`crate::obs::watchdog::StallReport::backpressure`].

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::graph::{EdgeId, LogicalGraph};
use crate::obs::fmt_ns;

/// All counter traffic is single-writer-per-shard (or commutative adds),
/// so relaxed ordering is sufficient everywhere.
const RELAXED: Ordering = Ordering::Relaxed;

/// Unacked relay-window size at or above which an edge counts as
/// backpressured for the duration of one sampling interval.
pub const BACKPRESSURE_WINDOW: u64 = 4;

fn flow_off() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| std::env::var_os("MITOS_FLOW_OFF").is_some())
}

/// Send-side counters for one `(edge, source machine)` shard. Single
/// writer: the source machine's worker thread.
#[derive(Debug, Default)]
struct OutShard {
    msgs: AtomicU64,
    elems: AtomicU64,
    bytes: AtomicU64,
    remote_bytes: AtomicU64,
    retrans_msgs: AtomicU64,
    retrans_bytes: AtomicU64,
    inflight: AtomicU64,
    inflight_hwm: AtomicU64,
}

/// Receive-side counters for one `(edge, destination machine)` shard.
/// Single writer: the destination machine's worker thread, post-dedup.
#[derive(Debug, Default)]
struct InShard {
    msgs: AtomicU64,
    elems: AtomicU64,
}

/// One edge's shards plus its sampler-owned backpressure accumulator.
#[derive(Debug)]
struct EdgeLane {
    out: Vec<OutShard>,
    inn: Vec<InShard>,
    backpressure_ns: AtomicU64,
}

/// The engine-wide flow-accounting registry, shared through
/// [`crate::rt::EngineShared`] next to the telemetry hub.
#[derive(Debug)]
pub struct FlowRegistry {
    lanes: Vec<EdgeLane>,
    inbox_hwm: Vec<AtomicU64>,
    enabled: bool,
}

impl FlowRegistry {
    /// Allocates per-`(edge, machine)` shards for a graph with `edges`
    /// edges on `machines` machines. Honors `MITOS_FLOW_OFF` (read once
    /// per process): when set, every bump is a single branch and the
    /// snapshot reports the registry as disabled.
    pub fn new(machines: u16, edges: usize) -> FlowRegistry {
        let enabled = !flow_off();
        let lanes = (0..edges)
            .map(|_| EdgeLane {
                out: (0..machines).map(|_| OutShard::default()).collect(),
                inn: (0..machines).map(|_| InShard::default()).collect(),
                backpressure_ns: AtomicU64::new(0),
            })
            .collect();
        FlowRegistry {
            lanes,
            inbox_hwm: (0..machines).map(|_| AtomicU64::new(0)).collect(),
            enabled,
        }
    }

    /// Whether accounting is active (i.e. `MITOS_FLOW_OFF` is unset).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one logical data-plane send on `edge` from machine `src`
    /// to machine `dst`: `elems` elements, `bytes` serialized wire bytes
    /// (counted toward the remote total only when the edge actually
    /// crosses machines).
    #[inline]
    pub fn msg_out(&self, edge: EdgeId, src: u16, dst: u16, elems: u64, bytes: u64) {
        if !self.enabled {
            return;
        }
        let Some(shard) = self
            .lanes
            .get(edge as usize)
            .and_then(|l| l.out.get(src as usize))
        else {
            return;
        };
        shard.msgs.fetch_add(1, RELAXED);
        shard.elems.fetch_add(elems, RELAXED);
        shard.bytes.fetch_add(bytes, RELAXED);
        if src != dst {
            shard.remote_bytes.fetch_add(bytes, RELAXED);
        }
    }

    /// Records one delivered (post-dedup) data-plane message on `edge` at
    /// destination machine `dst` carrying `elems` elements. Called from
    /// `Worker::ingest` on the same messages that bump `data_messages`,
    /// so `sum(messages_in) == data_messages` holds exactly.
    #[inline]
    pub fn msg_in(&self, edge: EdgeId, dst: u16, elems: u64) {
        if !self.enabled {
            return;
        }
        let Some(shard) = self
            .lanes
            .get(edge as usize)
            .and_then(|l| l.inn.get(dst as usize))
        else {
            return;
        };
        shard.msgs.fetch_add(1, RELAXED);
        shard.elems.fetch_add(elems, RELAXED);
    }

    /// Records one retransmission of `bytes` wire bytes on `edge` from
    /// machine `src` (the relay's `on_tick` resend loop).
    #[inline]
    pub fn retransmit(&self, edge: EdgeId, src: u16, bytes: u64) {
        if !self.enabled {
            return;
        }
        let Some(shard) = self
            .lanes
            .get(edge as usize)
            .and_then(|l| l.out.get(src as usize))
        else {
            return;
        };
        shard.retrans_msgs.fetch_add(1, RELAXED);
        shard.retrans_bytes.fetch_add(bytes, RELAXED);
    }

    /// Notes one more unacknowledged message in `edge`'s relay window at
    /// sender `src`, updating the high-watermark.
    #[inline]
    pub fn inflight_inc(&self, edge: EdgeId, src: u16) {
        if !self.enabled {
            return;
        }
        let Some(shard) = self
            .lanes
            .get(edge as usize)
            .and_then(|l| l.out.get(src as usize))
        else {
            return;
        };
        let now = shard.inflight.fetch_add(1, RELAXED) + 1;
        if now > shard.inflight_hwm.load(RELAXED) {
            shard.inflight_hwm.store(now, RELAXED);
        }
    }

    /// Notes one acknowledged (or abandoned) message leaving `edge`'s
    /// relay window at sender `src`.
    #[inline]
    pub fn inflight_dec(&self, edge: EdgeId, src: u16) {
        if !self.enabled {
            return;
        }
        let Some(shard) = self
            .lanes
            .get(edge as usize)
            .and_then(|l| l.out.get(src as usize))
        else {
            return;
        };
        // Saturating: a dec without a matching inc (never expected) must
        // not wrap the gauge.
        let _ = shard
            .inflight
            .fetch_update(RELAXED, RELAXED, |v| Some(v.saturating_sub(1)));
    }

    /// One queue-depth sample from a driver's sampling loop: `depths` is
    /// the current inbox occupancy per machine, `interval_ns` the time
    /// covered by this sample (virtual on the simulator, wall on the
    /// thread driver's monitor). Updates per-machine inbox high-watermarks
    /// and charges the interval to every edge whose relay window currently
    /// holds at least [`BACKPRESSURE_WINDOW`] unacked messages. Never
    /// touches the [`crate::rt::Net`], so sampling stays free of virtual
    /// time.
    pub fn sample_queues(&self, depths: &[usize], interval_ns: u64) {
        if !self.enabled {
            return;
        }
        for (hwm, &d) in self.inbox_hwm.iter().zip(depths) {
            if d as u64 > hwm.load(RELAXED) {
                hwm.store(d as u64, RELAXED);
            }
        }
        if interval_ns == 0 {
            return;
        }
        for lane in &self.lanes {
            let window: u64 = lane.out.iter().map(|s| s.inflight.load(RELAXED)).sum();
            if window >= BACKPRESSURE_WINDOW {
                lane.backpressure_ns.fetch_add(interval_ns, RELAXED);
            }
        }
    }

    /// The edge currently carrying the most serialized bytes, as
    /// `(edge, bytes, elements)` — the `--watch` hottest-edge line. `None`
    /// until any data-plane bytes moved (or when disabled). Ties break
    /// toward the lowest edge id, keeping simulator runs deterministic.
    pub fn hottest(&self) -> Option<(EdgeId, u64, u64)> {
        if !self.enabled {
            return None;
        }
        self.lanes
            .iter()
            .enumerate()
            .map(|(e, lane)| {
                let bytes: u64 = lane.out.iter().map(|s| s.bytes.load(RELAXED)).sum();
                let elems: u64 = lane.out.iter().map(|s| s.elems.load(RELAXED)).sum();
                (e as EdgeId, bytes, elems)
            })
            .filter(|&(_, bytes, _)| bytes > 0)
            .max_by_key(|&(e, bytes, _)| (bytes, std::cmp::Reverse(e)))
    }

    /// An immutable snapshot of every counter. Relaxed reads over
    /// single-writer shards: taken after the drivers join (or at a stall),
    /// when the writers have quiesced.
    pub fn snapshot(&self) -> FlowReport {
        let edges = self
            .lanes
            .iter()
            .enumerate()
            .map(|(e, lane)| EdgeFlow {
                edge: e as EdgeId,
                out: lane
                    .out
                    .iter()
                    .map(|s| MachineOut {
                        msgs: s.msgs.load(RELAXED),
                        elems: s.elems.load(RELAXED),
                        bytes: s.bytes.load(RELAXED),
                        remote_bytes: s.remote_bytes.load(RELAXED),
                        retrans_msgs: s.retrans_msgs.load(RELAXED),
                        retrans_bytes: s.retrans_bytes.load(RELAXED),
                        inflight_hwm: s.inflight_hwm.load(RELAXED),
                    })
                    .collect(),
                inn: lane
                    .inn
                    .iter()
                    .map(|s| MachineIn {
                        msgs: s.msgs.load(RELAXED),
                        elems: s.elems.load(RELAXED),
                    })
                    .collect(),
                backpressure_ns: lane.backpressure_ns.load(RELAXED),
            })
            .collect();
        FlowReport {
            enabled: self.enabled,
            edges,
            inbox_hwm: self.inbox_hwm.iter().map(|h| h.load(RELAXED)).collect(),
        }
    }
}

/// Send-side totals of one `(edge, source machine)` shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MachineOut {
    /// Logical data-plane messages sent (first transmissions only).
    pub msgs: u64,
    /// Elements sent.
    pub elems: u64,
    /// Serialized wire bytes of first transmissions.
    pub bytes: u64,
    /// The subset of `bytes` that crossed machines.
    pub remote_bytes: u64,
    /// Retransmitted messages (relay resends).
    pub retrans_msgs: u64,
    /// Retransmitted wire bytes.
    pub retrans_bytes: u64,
    /// High-watermark of the relay's unacked window on this edge.
    pub inflight_hwm: u64,
}

/// Receive-side totals of one `(edge, destination machine)` shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MachineIn {
    /// Data-plane messages delivered post-dedup.
    pub msgs: u64,
    /// Elements delivered.
    pub elems: u64,
}

/// One edge's complete flow totals, sharded by machine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeFlow {
    /// The logical edge id.
    pub edge: EdgeId,
    /// Send-side shards, indexed by source machine.
    pub out: Vec<MachineOut>,
    /// Receive-side shards, indexed by destination machine.
    pub inn: Vec<MachineIn>,
    /// Accumulated sampling time during which this edge's relay window
    /// held at least [`BACKPRESSURE_WINDOW`] unacked messages.
    pub backpressure_ns: u64,
}

impl EdgeFlow {
    /// Total logical messages sent.
    pub fn msgs_out(&self) -> u64 {
        self.out.iter().map(|s| s.msgs).sum()
    }
    /// Total elements sent.
    pub fn elems_out(&self) -> u64 {
        self.out.iter().map(|s| s.elems).sum()
    }
    /// Total serialized bytes of first transmissions.
    pub fn bytes(&self) -> u64 {
        self.out.iter().map(|s| s.bytes).sum()
    }
    /// Total bytes that crossed machines (first transmissions).
    pub fn remote_bytes(&self) -> u64 {
        self.out.iter().map(|s| s.remote_bytes).sum()
    }
    /// Total retransmitted bytes.
    pub fn retrans_bytes(&self) -> u64 {
        self.out.iter().map(|s| s.retrans_bytes).sum()
    }
    /// Total retransmitted messages.
    pub fn retrans_msgs(&self) -> u64 {
        self.out.iter().map(|s| s.retrans_msgs).sum()
    }
    /// Total messages delivered post-dedup.
    pub fn msgs_in(&self) -> u64 {
        self.inn.iter().map(|s| s.msgs).sum()
    }
    /// Total elements delivered post-dedup.
    pub fn elems_in(&self) -> u64 {
        self.inn.iter().map(|s| s.elems).sum()
    }
    /// The largest relay unacked-window watermark across senders.
    pub fn inflight_hwm(&self) -> u64 {
        self.out.iter().map(|s| s.inflight_hwm).max().unwrap_or(0)
    }
    /// Receiver skew: the max over destination machines of delivered
    /// elements divided by the mean (1.0 = perfectly balanced; counts only
    /// machines that received anything as candidates for the max).
    pub fn recv_skew(&self) -> f64 {
        let total = self.elems_in();
        let n = self.inn.len().max(1) as f64;
        if total == 0 {
            return 1.0;
        }
        let max = self.inn.iter().map(|s| s.elems).max().unwrap_or(0) as f64;
        max / (total as f64 / n)
    }
}

/// An immutable snapshot of the whole registry — the value behind
/// [`crate::engine::EngineResult::flow`] and `Outcome::flow()`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowReport {
    /// False when `MITOS_FLOW_OFF` suppressed accounting (all zeros then).
    pub enabled: bool,
    /// Per-edge totals, indexed by edge id.
    pub edges: Vec<EdgeFlow>,
    /// Per-machine inbox-occupancy high-watermarks from queue sampling.
    pub inbox_hwm: Vec<u64>,
}

impl FlowReport {
    /// Total data-plane messages delivered post-dedup, across all edges.
    /// Reconciles exactly with
    /// [`crate::engine::EngineResult::data_messages`].
    pub fn messages_in_total(&self) -> u64 {
        self.edges.iter().map(EdgeFlow::msgs_in).sum()
    }

    /// Total elements delivered post-dedup.
    pub fn elements_in_total(&self) -> u64 {
        self.edges.iter().map(EdgeFlow::elems_in).sum()
    }

    /// Total serialized bytes of first transmissions (local + remote).
    pub fn bytes_total(&self) -> u64 {
        self.edges.iter().map(EdgeFlow::bytes).sum()
    }

    /// Data-plane bytes that actually crossed machines — the figure the
    /// fig6 bench report records as `bytes_on_wire` (first transmissions;
    /// retransmitted bytes are reported separately).
    pub fn bytes_on_wire(&self) -> u64 {
        self.edges.iter().map(EdgeFlow::remote_bytes).sum()
    }

    /// Total retransmitted wire bytes.
    pub fn retrans_bytes_total(&self) -> u64 {
        self.edges.iter().map(EdgeFlow::retrans_bytes).sum()
    }

    /// `src→dst` operator names for an edge.
    pub fn edge_label(graph: &LogicalGraph, edge: EdgeId) -> String {
        let e = &graph.edges[edge as usize];
        format!(
            "{}→{}",
            graph.nodes[e.src as usize].name, graph.nodes[e.dst as usize].name
        )
    }

    /// Observed per-operator selectivity: for every operator with both
    /// delivered input elements and sent output elements, `(op, elems in,
    /// elems out, out/in)`.
    pub fn selectivities(&self, graph: &LogicalGraph) -> Vec<(u32, u64, u64, f64)> {
        let mut per_op: Vec<(u64, u64)> = vec![(0, 0); graph.nodes.len()];
        for ef in &self.edges {
            let e = &graph.edges[ef.edge as usize];
            per_op[e.dst as usize].0 += ef.elems_in();
            per_op[e.src as usize].1 += ef.elems_out();
        }
        per_op
            .into_iter()
            .enumerate()
            .filter(|&(_, (inn, out))| inn > 0 && out > 0)
            .map(|(op, (inn, out))| (op as u32, inn, out, out as f64 / inn as f64))
            .collect()
    }

    /// Edges ordered hottest-first (by bytes, then elements, then id).
    pub fn edges_by_bytes(&self) -> Vec<&EdgeFlow> {
        let mut edges: Vec<&EdgeFlow> = self.edges.iter().filter(|e| e.msgs_out() > 0).collect();
        edges.sort_by_key(|e| {
            (
                std::cmp::Reverse(e.bytes()),
                std::cmp::Reverse(e.elems_out()),
                e.edge,
            )
        });
        edges
    }

    /// Stall-attribution lines for [`crate::obs::watchdog::StallReport`]:
    /// one per edge that was observed backpressured (or whose relay window
    /// watermark reached [`BACKPRESSURE_WINDOW`]), hottest first. Empty on
    /// healthy runs, keeping fault-free reports byte-stable.
    pub fn backpressure_lines(&self, graph: &LogicalGraph) -> Vec<String> {
        let mut flagged: Vec<&EdgeFlow> = self
            .edges
            .iter()
            .filter(|e| e.backpressure_ns > 0 || e.inflight_hwm() >= BACKPRESSURE_WINDOW)
            .collect();
        flagged.sort_by_key(|e| (std::cmp::Reverse(e.backpressure_ns), e.edge));
        flagged
            .iter()
            .map(|e| {
                format!(
                    "edge {} ({}) backpressured {} (inflight hwm {}, {} retransmitted)",
                    e.edge,
                    Self::edge_label(graph, e.edge),
                    fmt_ns(e.backpressure_ns),
                    e.inflight_hwm(),
                    fmt_bytes(e.retrans_bytes()),
                )
            })
            .collect()
    }

    /// The `mitos flow` text report: top edges by bytes/elements, wire
    /// totals, per-machine skew, and observed per-operator selectivity.
    pub fn render(&self, graph: &LogicalGraph) -> String {
        let mut out = String::new();
        if !self.enabled {
            out.push_str("flow accounting disabled (MITOS_FLOW_OFF)\n");
            return out;
        }
        out.push_str("top edges by bytes:\n");
        let _ = writeln!(
            out,
            "{:>4}  {:<34} {:>10} {:>10} {:>10} {:>10} {:>6}",
            "edge", "src→dst", "msgs", "elements", "bytes", "on-wire", "skew"
        );
        for ef in self.edges_by_bytes() {
            let _ = writeln!(
                out,
                "{:>4}  {:<34} {:>10} {:>10} {:>10} {:>10} {:>6.2}",
                ef.edge,
                Self::edge_label(graph, ef.edge),
                ef.msgs_out(),
                ef.elems_out(),
                fmt_bytes(ef.bytes()),
                fmt_bytes(ef.remote_bytes()),
                ef.recv_skew(),
            );
        }
        let _ = writeln!(
            out,
            "total: {} data messages, {} elements, {} serialized ({} on wire, {} retransmitted)",
            self.messages_in_total(),
            self.elements_in_total(),
            fmt_bytes(self.bytes_total()),
            fmt_bytes(self.bytes_on_wire()),
            fmt_bytes(self.retrans_bytes_total()),
        );
        out.push_str("\nper-machine:\n");
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12} {:>12} {:>10}",
            "machine", "elems in", "elems out", "bytes out", "inbox hwm"
        );
        let machines = self.inbox_hwm.len();
        for m in 0..machines {
            let elems_in: u64 = self
                .edges
                .iter()
                .filter_map(|e| e.inn.get(m))
                .map(|s| s.elems)
                .sum();
            let elems_out: u64 = self
                .edges
                .iter()
                .filter_map(|e| e.out.get(m))
                .map(|s| s.elems)
                .sum();
            let bytes_out: u64 = self
                .edges
                .iter()
                .filter_map(|e| e.out.get(m))
                .map(|s| s.bytes)
                .sum();
            let _ = writeln!(
                out,
                "{:>8} {:>12} {:>12} {:>12} {:>10}",
                format!("m{m}"),
                elems_in,
                elems_out,
                fmt_bytes(bytes_out),
                self.inbox_hwm[m],
            );
        }
        let sel = self.selectivities(graph);
        if !sel.is_empty() {
            out.push_str("\nobserved selectivity (elements out / in):\n");
            for (op, inn, outn, s) in sel {
                let _ = writeln!(
                    out,
                    "{:<28} {:>10} → {:>10}  ({s:.3})",
                    graph.nodes[op as usize].name, inn, outn
                );
            }
        }
        let bp = self.backpressure_lines(graph);
        if !bp.is_empty() {
            out.push_str("\nbackpressure:\n");
            for line in bp {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }

    /// Per-edge rows for the `explain` report: hottest first, only edges
    /// that carried traffic. Empty output when nothing flowed (or when
    /// disabled), keeping existing explain output byte-stable.
    pub fn explain_rows(&self, graph: &LogicalGraph) -> String {
        let edges = self.edges_by_bytes();
        if edges.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str("\nedges (data plane):\n");
        let _ = writeln!(
            out,
            "{:>4}  {:<34} {:>10} {:>10} {:>10}",
            "edge", "src→dst", "msgs", "elements", "bytes"
        );
        for ef in edges {
            let _ = writeln!(
                out,
                "{:>4}  {:<34} {:>10} {:>10} {:>10}",
                ef.edge,
                Self::edge_label(graph, ef.edge),
                ef.msgs_out(),
                ef.elems_out(),
                fmt_bytes(ef.bytes()),
            );
        }
        out
    }

    /// Per-edge Prometheus series in text exposition format, appended to
    /// the phase-latency histograms under `--metrics-out`.
    pub fn prometheus(&self, graph: &LogicalGraph) -> String {
        let mut out = String::new();
        let label = |e: EdgeId| {
            let edge = &graph.edges[e as usize];
            format!(
                "edge=\"{e}\",src=\"{}\",dst=\"{}\"",
                graph.nodes[edge.src as usize].name, graph.nodes[edge.dst as usize].name
            )
        };
        out.push_str("# HELP mitos_edge_bytes_total Serialized data-plane bytes per edge.\n");
        out.push_str("# TYPE mitos_edge_bytes_total counter\n");
        for e in &self.edges {
            let _ = writeln!(
                out,
                "mitos_edge_bytes_total{{{}}} {}",
                label(e.edge),
                e.bytes()
            );
        }
        out.push_str(
            "# HELP mitos_edge_remote_bytes_total Data-plane bytes that crossed machines.\n",
        );
        out.push_str("# TYPE mitos_edge_remote_bytes_total counter\n");
        for e in &self.edges {
            let _ = writeln!(
                out,
                "mitos_edge_remote_bytes_total{{{}}} {}",
                label(e.edge),
                e.remote_bytes()
            );
        }
        out.push_str(
            "# HELP mitos_edge_retransmit_bytes_total Retransmitted wire bytes per edge.\n",
        );
        out.push_str("# TYPE mitos_edge_retransmit_bytes_total counter\n");
        for e in &self.edges {
            let _ = writeln!(
                out,
                "mitos_edge_retransmit_bytes_total{{{}}} {}",
                label(e.edge),
                e.retrans_bytes()
            );
        }
        out.push_str("# HELP mitos_edge_elements_total Elements per edge by direction.\n");
        out.push_str("# TYPE mitos_edge_elements_total counter\n");
        for e in &self.edges {
            let _ = writeln!(
                out,
                "mitos_edge_elements_total{{{},dir=\"out\"}} {}",
                label(e.edge),
                e.elems_out()
            );
            let _ = writeln!(
                out,
                "mitos_edge_elements_total{{{},dir=\"in\"}} {}",
                label(e.edge),
                e.elems_in()
            );
        }
        out.push_str(
            "# HELP mitos_edge_messages_total Logical data-plane messages per edge by direction.\n",
        );
        out.push_str("# TYPE mitos_edge_messages_total counter\n");
        for e in &self.edges {
            let _ = writeln!(
                out,
                "mitos_edge_messages_total{{{},dir=\"out\"}} {}",
                label(e.edge),
                e.msgs_out()
            );
            let _ = writeln!(
                out,
                "mitos_edge_messages_total{{{},dir=\"in\"}} {}",
                label(e.edge),
                e.msgs_in()
            );
        }
        out.push_str(
            "# HELP mitos_edge_inflight_hwm Relay unacked-window high-watermark per edge.\n",
        );
        out.push_str("# TYPE mitos_edge_inflight_hwm gauge\n");
        for e in &self.edges {
            let _ = writeln!(
                out,
                "mitos_edge_inflight_hwm{{{}}} {}",
                label(e.edge),
                e.inflight_hwm()
            );
        }
        out.push_str(
            "# HELP mitos_edge_backpressure_ns_total Sampled time an edge spent backpressured.\n",
        );
        out.push_str("# TYPE mitos_edge_backpressure_ns_total counter\n");
        for e in &self.edges {
            let _ = writeln!(
                out,
                "mitos_edge_backpressure_ns_total{{{}}} {}",
                label(e.edge),
                e.backpressure_ns
            );
        }
        out.push_str(
            "# HELP mitos_inbox_depth_hwm Sampled inbox-occupancy high-watermark per machine.\n",
        );
        out.push_str("# TYPE mitos_inbox_depth_hwm gauge\n");
        for (m, hwm) in self.inbox_hwm.iter().enumerate() {
            let _ = writeln!(out, "mitos_inbox_depth_hwm{{machine=\"{m}\"}} {hwm}");
        }
        out
    }

    /// Serializes the report as deterministic JSON (hand-rolled, no
    /// external dependencies) — the machine-readable counterpart of
    /// [`FlowReport::render`], embedded in `mitos explain --json`. Edges
    /// are ordered hottest-first; edges that carried no traffic are
    /// omitted.
    pub fn to_json(&self, graph: &LogicalGraph) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"enabled\":{},\"messages\":{},\"elements\":{},\"bytes\":{},\
             \"bytes_on_wire\":{},\"retransmitted_bytes\":{},\"edges\":[",
            self.enabled,
            self.messages_in_total(),
            self.elements_in_total(),
            self.bytes_total(),
            self.bytes_on_wire(),
            self.retrans_bytes_total(),
        );
        for (i, ef) in self.edges_by_bytes().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let e = &graph.edges[ef.edge as usize];
            let _ = write!(
                out,
                "{{\"edge\":{},\"src\":{},\"dst\":{},\"label\":{},\
                 \"msgs_out\":{},\"msgs_in\":{},\"elems_out\":{},\"elems_in\":{},\
                 \"bytes\":{},\"remote_bytes\":{},\"retransmitted_bytes\":{},\
                 \"inflight_hwm\":{},\"backpressure_ns\":{}}}",
                ef.edge,
                e.src,
                e.dst,
                super::json_str(&Self::edge_label(graph, ef.edge)),
                ef.msgs_out(),
                ef.msgs_in(),
                ef.elems_out(),
                ef.elems_in(),
                ef.bytes(),
                ef.remote_bytes(),
                ef.retrans_bytes(),
                ef.inflight_hwm(),
                ef.backpressure_ns,
            );
        }
        out.push_str("],\"inbox_hwm\":[");
        for (m, hwm) in self.inbox_hwm.iter().enumerate() {
            if m > 0 {
                out.push(',');
            }
            let _ = write!(out, "{hwm}");
        }
        out.push_str("]}");
        out
    }
}

/// Compact byte formatting (`1.2MB` / `34.5KB` / `678B`).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 10_000_000 {
        format!("{:.1}MB", b as f64 / 1e6)
    } else if b >= 10_000 {
        format!("{:.1}KB", b as f64 / 1e3)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph() -> LogicalGraph {
        let func = mitos_ir::compile_str(
            r#"
            b = readFile("f").map(x => (x % 2, 1)).reduceByKey((a, b) => a + b);
            output(b.count(), "n");
            "#,
        )
        .unwrap();
        LogicalGraph::build(&func).unwrap()
    }

    #[test]
    fn counters_accumulate_per_shard() {
        let reg = FlowRegistry::new(2, 3);
        if !reg.enabled() {
            return; // MITOS_FLOW_OFF set in the environment
        }
        reg.msg_out(1, 0, 1, 10, 100);
        reg.msg_out(1, 0, 0, 5, 50);
        reg.msg_out(1, 1, 0, 2, 20);
        reg.msg_in(1, 1, 10);
        reg.msg_in(1, 0, 7);
        reg.retransmit(1, 0, 124);
        let r = reg.snapshot();
        let e = &r.edges[1];
        assert_eq!(e.msgs_out(), 3);
        assert_eq!(e.elems_out(), 17);
        assert_eq!(e.bytes(), 170);
        assert_eq!(e.remote_bytes(), 120, "the self-send is not on the wire");
        assert_eq!(e.msgs_in(), 2);
        assert_eq!(e.elems_in(), 17);
        assert_eq!(e.retrans_bytes(), 124);
        assert_eq!(e.out[0].msgs, 2);
        assert_eq!(e.out[1].msgs, 1);
        assert_eq!(r.bytes_on_wire(), 120);
        assert_eq!(r.messages_in_total(), 2);
    }

    #[test]
    fn inflight_watermark_tracks_peak() {
        let reg = FlowRegistry::new(2, 2);
        if !reg.enabled() {
            return;
        }
        for _ in 0..5 {
            reg.inflight_inc(0, 0);
        }
        reg.inflight_dec(0, 0);
        reg.inflight_dec(0, 0);
        reg.inflight_inc(0, 0);
        let r = reg.snapshot();
        assert_eq!(r.edges[0].inflight_hwm(), 5);
        // Backpressure sampling charges the interval while the window is
        // at or above the threshold (current window: 4).
        reg.sample_queues(&[3, 0], 1_000);
        reg.sample_queues(&[7, 1], 1_000);
        let r = reg.snapshot();
        assert_eq!(r.edges[0].backpressure_ns, 2_000);
        assert_eq!(r.inbox_hwm, vec![7, 1]);
        reg.inflight_dec(0, 0);
        reg.sample_queues(&[0, 0], 1_000);
        assert_eq!(
            reg.snapshot().edges[0].backpressure_ns,
            2_000,
            "below the window threshold no time is charged"
        );
    }

    #[test]
    fn hottest_edge_prefers_bytes_then_lowest_id() {
        let reg = FlowRegistry::new(1, 3);
        if !reg.enabled() {
            return;
        }
        assert_eq!(reg.hottest(), None, "no traffic, no hottest edge");
        reg.msg_out(0, 0, 0, 1, 50);
        reg.msg_out(2, 0, 0, 9, 50);
        reg.msg_out(1, 0, 0, 4, 200);
        assert_eq!(reg.hottest(), Some((1, 200, 4)));
        // Equal bytes: the lower edge id wins deterministically.
        reg.msg_out(0, 0, 0, 1, 150);
        assert_eq!(reg.hottest(), Some((0, 200, 2)));
    }

    #[test]
    fn render_and_prometheus_cover_edges_and_selectivity() {
        let graph = toy_graph();
        let reg = FlowRegistry::new(2, graph.edges.len());
        if !reg.enabled() {
            return;
        }
        // Pretend edge 0 (readFile+map.. → reduce-ish) carried traffic.
        reg.msg_out(0, 0, 1, 40, 400);
        reg.msg_in(0, 1, 40);
        let r = reg.snapshot();
        let text = r.render(&graph);
        assert!(text.contains("top edges by bytes"), "{text}");
        assert!(text.contains("400B"), "{text}");
        assert!(text.contains("per-machine"), "{text}");
        let prom = r.prometheus(&graph);
        assert!(
            prom.contains("# TYPE mitos_edge_bytes_total counter"),
            "{prom}"
        );
        assert!(prom.contains("mitos_edge_bytes_total{edge=\"0\""), "{prom}");
        assert!(
            prom.contains("dir=\"in\"}") && prom.contains("dir=\"out\"}"),
            "{prom}"
        );
        assert!(
            prom.contains("mitos_inbox_depth_hwm{machine=\"0\"}"),
            "{prom}"
        );
        let rows = r.explain_rows(&graph);
        assert!(rows.contains("edges (data plane)"), "{rows}");
        // A quiet report contributes nothing to explain.
        assert_eq!(
            FlowRegistry::new(2, graph.edges.len())
                .snapshot()
                .explain_rows(&graph),
            ""
        );
    }

    #[test]
    fn backpressure_lines_stay_empty_on_healthy_runs() {
        let graph = toy_graph();
        let reg = FlowRegistry::new(2, graph.edges.len());
        reg.msg_out(0, 0, 1, 40, 400);
        let r = reg.snapshot();
        assert!(r.backpressure_lines(&graph).is_empty());
        if !reg.enabled() {
            return;
        }
        for _ in 0..BACKPRESSURE_WINDOW {
            reg.inflight_inc(0, 0);
        }
        reg.sample_queues(&[0, 0], 5_000_000);
        let lines = reg.snapshot().backpressure_lines(&graph);
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("backpressured 5.00ms"), "{}", lines[0]);
    }
}
