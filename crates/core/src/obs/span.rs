//! Causal span trees over the control-flow protocol.
//!
//! Every step decision carries a compact trace context ([`SpanCtx`]: step
//! id + parent span id) on the wire, letting this module reconstruct —
//! purely from the merged [`ObsReport`] event stream — one causal tree
//! per path position: decision broadcast → per-machine receipt → path
//! append → input-bag assembly → operator execute → conditional-send
//! resolution. Retransmitted deliveries of the same `(src, seq)` envelope
//! are deduped by the relay before any event is recorded, so duplicated
//! or reordered deliveries collapse into **one** logical receipt span,
//! annotated with the attempt count.
//!
//! Span ids are deterministic: [`span_id`] mixes `(step, machine, kind,
//! seq)` through two rounds of the splitmix64 finalizer — never a wall
//! clock, never a global counter — so the same program on the same
//! cluster yields bit-identical ids under the simulator, and ids agree
//! across machines without coordination (the receiver recomputes the
//! decider's id from the step index alone and verifies it against the
//! wire-carried parent).

use std::collections::HashMap;

use crate::obs::event::{Event, EventKind, OP_NONE};
use crate::obs::{fmt_ns, ObsReport};

/// Wire-carried trace context, attached to every broadcast
/// [`crate::rt::Msg::Decision`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanCtx {
    /// The path position (step) this decision resolves.
    pub step: u32,
    /// Span id of the decider's Decide span (0 = none).
    pub parent: u64,
}

/// What a span represents inside a step's causal tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// The control-flow manager resolved the step and broadcast it.
    Decide = 1,
    /// Synthetic root for an undecided (unconditional) step.
    Jump = 2,
    /// A remote manager received the broadcast decision.
    Recv = 3,
    /// A machine appended the block occurrence to its local path replica.
    Append = 4,
    /// An operator instance executed its bag for this occurrence.
    Exec = 5,
    /// One logical input selected its input bag (5.2.3).
    Input = 6,
    /// A conditional edge resolved its send decision (5.2.4).
    Send = 7,
    /// Loop-invariant build state was reused (5.3).
    Hoist = 8,
}

impl SpanKind {
    /// Short stable label used in rendering and [`StepTree::shape`].
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Decide => "decide",
            SpanKind::Jump => "jump",
            SpanKind::Recv => "recv",
            SpanKind::Append => "append",
            SpanKind::Exec => "exec",
            SpanKind::Input => "input",
            SpanKind::Send => "send",
            SpanKind::Hoist => "hoist",
        }
    }
}

/// splitmix64 finalizer: the standard 3-round xor-multiply mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic span id for `(step, machine, kind, seq)`. Derived purely
/// from protocol coordinates — never a clock — so simulator runs are
/// bit-identical and every machine can recompute any other machine's ids.
/// 0 is reserved as "no parent", hence the `.max(1)`.
pub fn span_id(step: u32, machine: u16, kind: SpanKind, seq: u32) -> u64 {
    mix(mix(((step as u64) << 32) | seq as u64) ^ (((machine as u64) << 8) | kind as u64)).max(1)
}

/// One node of a step's causal tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Deterministic id ([`span_id`]).
    pub id: u64,
    /// Parent span id (0 for the root).
    pub parent: u64,
    /// What this span represents.
    pub kind: SpanKind,
    /// Machine the span ran on.
    pub machine: u16,
    /// Operator id, or [`OP_NONE`] for control-plane spans.
    pub op: u32,
    /// Start timestamp (virtual or wall ns, per the driver).
    pub start_ns: u64,
    /// End timestamp; equals `start_ns` for instantaneous spans.
    pub end_ns: u64,
    /// Delivery attempts that fed this span (receipt spans only; 1 =
    /// no retransmission).
    pub attempts: u32,
    /// Canonical structural label — part of [`StepTree::shape`], so it
    /// must be identical between fault-free and faulted runs.
    pub label: String,
    /// Render-only annotation (buffered counts, latencies) excluded from
    /// the canonical shape because faults may legally change it.
    pub detail: String,
}

/// The causal tree of one path position.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepTree {
    /// Path position (step index).
    pub step: u32,
    /// The block this occurrence executes.
    pub block: u32,
    /// Whether a real decision was broadcast (false = unconditional jump,
    /// synthetic [`SpanKind::Jump`] root).
    pub decided: bool,
    /// All spans, root first, children in deterministic order.
    pub spans: Vec<Span>,
    /// Spans whose parent could not be established — always empty on a
    /// healthy run; non-empty means the trace context broke somewhere.
    pub orphans: Vec<Span>,
}

impl StepTree {
    /// Root span id (0 if the tree is empty).
    pub fn root(&self) -> u64 {
        self.spans.first().map_or(0, |s| s.id)
    }

    /// Canonical structural form: the sorted multiset of root-to-node
    /// label paths. Two trees are isomorphic iff their shapes are equal.
    /// Excludes timestamps, attempt counts, and render-only details —
    /// exactly the parts retransmission and reordering may perturb.
    pub fn shape(&self) -> Vec<String> {
        let by_id: HashMap<u64, &Span> = self.spans.iter().map(|s| (s.id, s)).collect();
        let mut paths: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                let mut chain = vec![s.label.clone()];
                let mut p = s.parent;
                while p != 0 {
                    let Some(ps) = by_id.get(&p) else { break };
                    chain.push(ps.label.clone());
                    p = ps.parent;
                }
                chain.reverse();
                chain.join(" / ")
            })
            .collect();
        paths.sort();
        paths
    }
}

/// Builds one [`StepTree`] per path position from a Trace-level report.
///
/// Association rules (all derived from the per-machine stream order the
/// runtime guarantees):
/// - the root is the Decide span of the step's `DecisionBroadcast`, or a
///   synthetic Jump span at the earliest `PathAppended` when the step was
///   never decided (step 0 and unconditional jumps);
/// - each remote `DecisionReceived` becomes a Recv child; its wire parent
///   must equal the recomputed decider id, else it is an orphan;
/// - each machine's `PathAppended` becomes an Append span — parented on
///   that machine's Recv span remotely, on the root locally;
/// - `BagOpened .. BagFinalized` at `bag_len == pos + 1` becomes an Exec
///   span under the machine's Append;
/// - `InputSelected` / `SendResolved` / `HoistHit` attach to the open bag
///   of `(machine, op)` at record time (`BagOpened` always precedes them
///   in the per-machine stream).
pub fn build_step_trees(report: &ObsReport) -> Vec<StepTree> {
    let mut steps: HashMap<u32, StepTree> = HashMap::new();
    // Decide/Jump root id per step, filled on first sight.
    let mut roots: HashMap<u32, u64> = HashMap::new();
    // Recv span id per (step, machine).
    let mut recvs: HashMap<(u32, u16), u64> = HashMap::new();
    // Append span id per (step, machine).
    let mut appends: HashMap<(u32, u16), u64> = HashMap::new();
    // Open-bag position per (machine, op): BagOpened precedes the bag's
    // InputSelected/HoistHit/SendResolved/BagFinalized in stream order.
    let mut open_now: HashMap<(u16, u32), u32> = HashMap::new();
    // Exec span id + per-op child sequence counter per (machine, op, pos).
    let mut execs: HashMap<(u16, u32, u32), (u64, u32)> = HashMap::new();
    // Decision-payload retransmissions per (step, peer machine).
    let mut retries: HashMap<(u32, u16), u32> = HashMap::new();

    // Pass 1: roots and retransmission counts (events are globally sorted
    // by time, but a Recv may be recorded before this machine's own
    // PathAppended for an undecided step elsewhere — resolve roots first).
    for ev in &report.events {
        match &ev.kind {
            EventKind::DecisionBroadcast { pos, block } => {
                let id = span_id(*pos, ev.machine, SpanKind::Decide, 0);
                roots.entry(*pos).or_insert(id);
                let tree = steps.entry(*pos).or_default();
                tree.step = *pos;
                tree.block = *block;
                tree.decided = true;
                tree.spans.push(Span {
                    id,
                    parent: 0,
                    kind: SpanKind::Decide,
                    machine: ev.machine,
                    op: OP_NONE,
                    start_ns: ev.t_ns,
                    end_ns: ev.t_ns,
                    attempts: 1,
                    label: format!("decide step={pos} block={block} m{}", ev.machine),
                    detail: String::new(),
                });
            }
            EventKind::RetransmitSent { peer, step, .. } if *step != u32::MAX => {
                // Count resends of this decision to this peer. (The event's
                // own `attempt` field is the relay's per-peer round counter,
                // which need not start at 1 for this envelope.)
                *retries.entry((*step, *peer)).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    for ev in &report.events {
        if let EventKind::PathAppended { pos, block } = &ev.kind {
            if !roots.contains_key(pos) {
                // Undecided step: synthesize a Jump root at the earliest
                // append (events are time-sorted, so first wins). The id is
                // machine-neutral — *which* machine appends first is a race
                // on the thread driver and legally shifts under fault
                // schedules, and the tree shape must not depend on it.
                let id = span_id(*pos, u16::MAX, SpanKind::Jump, 0);
                roots.insert(*pos, id);
                let tree = steps.entry(*pos).or_default();
                tree.step = *pos;
                tree.block = *block;
                tree.decided = false;
                tree.spans.push(Span {
                    id,
                    parent: 0,
                    kind: SpanKind::Jump,
                    machine: ev.machine,
                    op: OP_NONE,
                    start_ns: ev.t_ns,
                    end_ns: ev.t_ns,
                    attempts: 1,
                    label: format!("jump step={pos} block={block}"),
                    detail: String::new(),
                });
            }
        }
    }

    // Pass 2: everything else, in global time order.
    for ev in &report.events {
        match &ev.kind {
            EventKind::DecisionReceived { pos, block, parent } => {
                let tree = steps.entry(*pos).or_default();
                tree.step = *pos;
                let attempts = 1 + retries.get(&(*pos, ev.machine)).copied().unwrap_or(0);
                let id = span_id(*pos, ev.machine, SpanKind::Recv, 0);
                let root = roots.get(pos).copied().unwrap_or(0);
                let mut span = Span {
                    id,
                    parent: *parent,
                    kind: SpanKind::Recv,
                    machine: ev.machine,
                    op: OP_NONE,
                    start_ns: ev.t_ns,
                    end_ns: ev.t_ns,
                    attempts,
                    label: format!("recv step={pos} block={block} m{}", ev.machine),
                    detail: if attempts > 1 {
                        format!("attempts={attempts}")
                    } else {
                        String::new()
                    },
                };
                if root != 0 && *parent == root {
                    recvs.insert((*pos, ev.machine), id);
                    tree.spans.push(span);
                } else {
                    // Wire parent disagrees with the recomputed decider id
                    // (or the decide event is missing): trace broke.
                    span.detail = format!("wire-parent={parent:#x} expected={root:#x}");
                    tree.orphans.push(span);
                }
            }
            EventKind::PathAppended { pos, block } => {
                let tree = steps.entry(*pos).or_default();
                let id = span_id(*pos, ev.machine, SpanKind::Append, 0);
                if appends.contains_key(&(*pos, ev.machine)) {
                    continue; // defensive: one append per (step, machine)
                }
                let root = roots.get(pos).copied().unwrap_or(0);
                // Remote appends on decided steps hang off the machine's
                // Recv span; the decider's own append (and every append of
                // an undecided step) hangs off the root.
                let parent = recvs.get(&(*pos, ev.machine)).copied().unwrap_or(root);
                let span = Span {
                    id,
                    parent,
                    kind: SpanKind::Append,
                    machine: ev.machine,
                    op: OP_NONE,
                    start_ns: ev.t_ns,
                    end_ns: ev.t_ns,
                    attempts: 1,
                    label: format!("append step={pos} block={block} m{}", ev.machine),
                    detail: String::new(),
                };
                if parent == 0 {
                    tree.orphans.push(span);
                } else {
                    if tree.decided
                        && parent == root
                        && !recvs.contains_key(&(*pos, ev.machine))
                        && tree.spans.first().map(|s| s.machine) != Some(ev.machine)
                    {
                        // Decided step, remote machine, but no receipt span:
                        // the append is causally unexplained.
                        tree.orphans.push(span);
                        continue;
                    }
                    appends.insert((*pos, ev.machine), id);
                    tree.spans.push(span);
                }
            }
            EventKind::BagOpened { pos, bag_len } => {
                open_now.insert((ev.machine, ev.op), *pos);
                let tree = steps.entry(*pos).or_default();
                let id = span_id(*pos, ev.machine, SpanKind::Exec, ev.op);
                let parent = appends.get(&(*pos, ev.machine)).copied().unwrap_or(0);
                let span = Span {
                    id,
                    parent,
                    kind: SpanKind::Exec,
                    machine: ev.machine,
                    op: ev.op,
                    start_ns: ev.t_ns,
                    end_ns: ev.t_ns, // patched by BagFinalized
                    attempts: 1,
                    label: format!("exec op={} len={bag_len} m{}", ev.op, ev.machine),
                    detail: String::new(),
                };
                if parent == 0 {
                    tree.orphans.push(span);
                } else {
                    execs.insert((ev.machine, ev.op, *pos), (id, 0));
                    tree.spans.push(span);
                }
            }
            EventKind::BagFinalized { pos, .. } => {
                open_now.remove(&(ev.machine, ev.op));
                if let Some(&(id, _)) = execs.get(&(ev.machine, ev.op, *pos)) {
                    let tree = steps.entry(*pos).or_default();
                    if let Some(s) = tree.spans.iter_mut().find(|s| s.id == id) {
                        s.end_ns = ev.t_ns;
                        s.label.push_str(" done");
                    }
                }
            }
            EventKind::InputSelected {
                edge,
                bag_len,
                rule,
            } => {
                // The consuming bag is whichever this (machine, op) has
                // open right now — BagOpened always precedes its
                // InputSelected records in the per-machine stream.
                let pos = open_now.get(&(ev.machine, ev.op)).copied();
                attach_child(
                    &mut steps,
                    &mut execs,
                    pos,
                    ev,
                    SpanKind::Input,
                    format!("input edge={edge} len={bag_len} rule={}", rule.label()),
                    String::new(),
                );
            }
            EventKind::SendResolved {
                edge,
                bag_len,
                sent,
                buffered,
                latency_ns,
            } => {
                // A conditional send can resolve long after the bag closed
                // (the path proof arrives later), so the step comes from
                // the event's own bag identifier: pos = bag_len - 1.
                attach_child(
                    &mut steps,
                    &mut execs,
                    Some(bag_len - 1),
                    ev,
                    SpanKind::Send,
                    format!("send edge={edge} sent={sent}"),
                    format!("buffered={buffered} latency={}", fmt_ns(*latency_ns)),
                );
            }
            EventKind::HoistHit { pos, bag_len } => {
                attach_child(
                    &mut steps,
                    &mut execs,
                    Some(*pos),
                    ev,
                    SpanKind::Hoist,
                    format!("hoist len={bag_len}"),
                    String::new(),
                );
            }
            _ => {}
        }
    }

    let mut out: Vec<StepTree> = steps.into_values().collect();
    out.sort_by_key(|t| t.step);
    for tree in &mut out {
        // Deterministic child order: (parent chain is already captured by
        // ids) sort by (kind, machine, op, id) after the root.
        if tree.spans.len() > 1 {
            let root = tree.spans.remove(0);
            tree.spans.sort_by_key(|s| (s.kind, s.machine, s.op, s.id));
            tree.spans.insert(0, root);
        }
        tree.orphans
            .sort_by_key(|s| (s.kind, s.machine, s.op, s.id));
    }
    out
}

/// Attaches an Input/Send/Hoist child to the Exec span of
/// `(machine, op, pos)`, or records it as an orphan of its step.
fn attach_child(
    steps: &mut HashMap<u32, StepTree>,
    execs: &mut HashMap<(u16, u32, u32), (u64, u32)>,
    pos: Option<u32>,
    ev: &Event,
    kind: SpanKind,
    label: String,
    detail: String,
) {
    let Some(pos) = pos else {
        // No position resolvable: unattachable. Park it on step 0 as an
        // orphan so it is visible rather than silently dropped.
        let tree = steps.entry(0).or_default();
        tree.orphans.push(Span {
            id: span_id(0, ev.machine, kind, ev.op),
            parent: 0,
            kind,
            machine: ev.machine,
            op: ev.op,
            start_ns: ev.t_ns,
            end_ns: ev.t_ns,
            attempts: 1,
            label,
            detail,
        });
        return;
    };
    let tree = steps.entry(pos).or_default();
    match execs.get_mut(&(ev.machine, ev.op, pos)) {
        Some((exec_id, child_seq)) => {
            *child_seq += 1;
            // Fold the child ordinal into the seq operand so sibling
            // children of one exec span get distinct deterministic ids.
            let id = span_id(pos, ev.machine, kind, (ev.op << 8) | (*child_seq & 0xFF));
            tree.spans.push(Span {
                id,
                parent: *exec_id,
                kind,
                machine: ev.machine,
                op: ev.op,
                start_ns: ev.t_ns,
                end_ns: ev.t_ns,
                attempts: 1,
                label,
                detail,
            });
        }
        None => {
            tree.orphans.push(Span {
                id: span_id(pos, ev.machine, kind, ev.op),
                parent: 0,
                kind,
                machine: ev.machine,
                op: ev.op,
                start_ns: ev.t_ns,
                end_ns: ev.t_ns,
                attempts: 1,
                label,
                detail,
            });
        }
    }
}

/// Renders one step tree as an indented text block. `ops` maps operator
/// ids to display names (see [`crate::engine::OpStats`] ordering — index
/// = op id); pass an empty slice to print raw ids.
pub fn render_tree(tree: &StepTree, op_names: &[String]) -> String {
    let mut children: HashMap<u64, Vec<&Span>> = HashMap::new();
    for s in tree.spans.iter().skip(1) {
        children.entry(s.parent).or_default().push(s);
    }
    let mut out = format!(
        "step {} (block {}{})\n",
        tree.step,
        tree.block,
        if tree.decided { "" } else { ", unconditional" }
    );
    if let Some(root) = tree.spans.first() {
        render_span(
            root,
            &children,
            op_names,
            1,
            tree.spans[0].start_ns,
            &mut out,
        );
    }
    for orphan in &tree.orphans {
        out.push_str(&format!("  ORPHAN {} {}\n", orphan.label, orphan.detail));
    }
    out
}

fn render_span(
    span: &Span,
    children: &HashMap<u64, Vec<&Span>>,
    op_names: &[String],
    depth: usize,
    t0: u64,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let dur = span.end_ns.saturating_sub(span.start_ns);
    let mut line = format!(
        "{indent}{} +{}",
        span.label,
        fmt_ns(span.start_ns.saturating_sub(t0)),
    );
    if dur > 0 {
        line.push_str(&format!(" ({})", fmt_ns(dur)));
    }
    if span.attempts > 1 {
        line.push_str(&format!(" [attempts={}]", span.attempts));
    }
    if span.op != OP_NONE {
        if let Some(name) = op_names.get(span.op as usize) {
            line.push_str(&format!(" `{name}`"));
        }
    }
    if !span.detail.is_empty() {
        line.push_str(&format!(" {}", span.detail));
    }
    line.push('\n');
    out.push_str(&line);
    if let Some(kids) = children.get(&span.id) {
        for kid in kids {
            render_span(kid, children, op_names, depth + 1, t0, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_deterministic_and_nonzero() {
        let a = span_id(0, 0, SpanKind::Decide, 0);
        let b = span_id(0, 0, SpanKind::Decide, 0);
        assert_eq!(a, b);
        assert_ne!(a, 0);
        // Distinct coordinates → distinct ids (spot check the axes).
        assert_ne!(span_id(1, 0, SpanKind::Decide, 0), a);
        assert_ne!(span_id(0, 1, SpanKind::Decide, 0), a);
        assert_ne!(span_id(0, 0, SpanKind::Recv, 0), a);
        assert_ne!(span_id(0, 0, SpanKind::Decide, 1), a);
    }

    #[test]
    fn shape_is_stable_under_span_reordering() {
        let mk = |label: &str, id, parent| Span {
            id,
            parent,
            kind: SpanKind::Exec,
            machine: 0,
            op: 0,
            start_ns: 0,
            end_ns: 0,
            attempts: 1,
            label: label.into(),
            detail: String::new(),
        };
        let t1 = StepTree {
            step: 0,
            block: 0,
            decided: true,
            spans: vec![mk("root", 1, 0), mk("a", 2, 1), mk("b", 3, 1)],
            orphans: vec![],
        };
        let mut t2 = t1.clone();
        t2.spans.swap(1, 2);
        assert_eq!(t1.shape(), t2.shape());
        // Attempts/details never affect the shape.
        let mut t3 = t1.clone();
        t3.spans[1].attempts = 5;
        t3.spans[1].detail = "attempts=5".into();
        assert_eq!(t1.shape(), t3.shape());
    }
}
