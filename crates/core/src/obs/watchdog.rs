//! Stall watchdog: turns a silent hang into a structured, actionable
//! [`StallReport`].
//!
//! The paper's coordination protocol (Sec. 5) has exactly two ways to
//! wedge: a control-flow manager waiting for a condition `Decision`
//! broadcast that never arrives, or a bag operator host waiting for input
//! elements / end-of-bag punctuation (or, downstream of those, a
//! conditional-send watcher that never resolves, Sec. 5.2.4). The drivers
//! detect *that* nothing is progressing via the
//! [`super::live::TelemetryHub`]'s last-progress timestamps — the thread
//! driver against a wall-clock deadline ([`crate::rt::EngineConfig::stall_deadline_ns`]),
//! the simulator on quiescence-without-exit — and then call [`diagnose`]
//! to introspect every worker and host for *why*: which operator is
//! blocked, in which basic block, which input bag or condition decision it
//! awaits, and which conditional-send watchers are still pending.
//!
//! The report is attached to the [`crate::rt::RuntimeError`] so callers
//! (and `mitos run --deadline`, which exits 2) can act on it.

use crate::graph::{EdgeId, OpId};
use mitos_ir::BlockId;
use std::fmt::Write as _;

/// What a blocked bag operator host is waiting for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Awaited {
    /// An input bag that is not yet complete (elements and/or end-of-bag
    /// punctuations still missing).
    InputBag {
        /// Logical input index on the blocked operator.
        input: u32,
        /// The logical edge feeding that input.
        edge: EdgeId,
        /// Bag identifier length of the awaited bag.
        bag_len: u32,
        /// Elements received so far.
        received: u64,
        /// Elements announced by the punctuations received so far.
        announced: u64,
        /// End-of-bag punctuations received.
        done_senders: u16,
        /// End-of-bag punctuations expected (one per sender instance).
        expected_senders: u16,
    },
    /// Non-pipelined mode: the superstep barrier has not yet released the
    /// occurrence at this path position.
    BarrierRelease {
        /// The path position awaiting release.
        pos: u32,
    },
    /// A simulated disk read is still in flight.
    DiskRead,
}

impl Awaited {
    fn render(&self) -> String {
        match self {
            Awaited::InputBag {
                input,
                edge,
                bag_len,
                received,
                announced,
                done_senders,
                expected_senders,
            } => format!(
                "awaiting input {input} (edge {edge}, bag len {bag_len}): \
                 {received}/{announced} elements, {done_senders}/{expected_senders} \
                 end-of-bag punctuations"
            ),
            Awaited::BarrierRelease { pos } => {
                format!("awaiting superstep barrier release of path position {pos}")
            }
            Awaited::DiskRead => "awaiting a disk read".to_string(),
        }
    }
}

/// One blocked (non-idle) bag operator host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpStall {
    /// The logical operator.
    pub op: OpId,
    /// Its SSA variable name.
    pub name: String,
    /// The basic block it computes in.
    pub block: BlockId,
    /// Bag identifier length of the active output bag, if one is open.
    pub bag_len: Option<u32>,
    /// What the host is waiting for ([`None`] if it only holds undecided
    /// conditional sends).
    pub awaited: Option<Awaited>,
    /// Conditional-send watchers still pending: `(edge, bag_len)` of each
    /// out-bag edge whose send/drop decision the path has not yet proven.
    pub pending_watchers: Vec<(EdgeId, u32)>,
}

/// One worker's control-flow state at stall time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStall {
    /// The machine.
    pub machine: u16,
    /// Whether its replicated execution path reached `Exit`.
    pub exited: bool,
    /// Execution-path depth (blocks appended so far).
    pub path_depth: u32,
    /// The last appended basic block.
    pub current_block: BlockId,
    /// `(path position, condition operator name)` when the control-flow
    /// manager is parked on a conditional jump whose `Decision` broadcast
    /// has not arrived.
    pub awaiting_decision: Option<(u32, String)>,
    /// Blocked hosts on this machine.
    pub ops: Vec<OpStall>,
}

impl WorkerStall {
    /// Whether this worker contributes anything to the stall.
    pub fn blocked(&self) -> bool {
        !self.exited || self.awaiting_decision.is_some() || !self.ops.is_empty()
    }
}

/// A structured diagnosis of a stalled run, produced by [`diagnose`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallReport {
    /// The configured no-progress deadline (0 when the stall was detected
    /// by simulator quiescence rather than a timer).
    pub deadline_ns: u64,
    /// How long the run had made no progress when the watchdog fired
    /// (0 under the simulator, where quiescence is instantaneous).
    pub idle_ns: u64,
    /// Per-worker state, one entry per machine.
    pub workers: Vec<WorkerStall>,
    /// When the run injected faults: the plan summary plus what the fault
    /// layer actually did (dropped / duplicated / reordered messages,
    /// retransmission rounds), so an unrecoverable stall names its cause.
    /// `None` on fault-free runs (see [`fault_note`]).
    pub fault: Option<String>,
    /// The always-on flight recorder's dump: one line per worker holding
    /// its last ring of handled messages (captured even at
    /// [`crate::obs::ObsLevel::Off`]). Empty when the driver did not
    /// attach a dump.
    pub flight: Vec<String>,
    /// Backpressure attribution from the flow registry: one line per edge
    /// observed with a saturated relay window ("edge X backpressured
    /// N ms"), hottest first. Empty on healthy runs (see
    /// [`crate::obs::flow::FlowReport::backpressure_lines`]).
    pub backpressure: Vec<String>,
    /// Retained-state attribution from the memory registry: one line per
    /// `(machine, retention class)` still holding live bags at stall time
    /// (see [`crate::obs::mem::MemReport::retained_lines`]). Empty when
    /// nothing is resident or `MITOS_MEM_OFF` is set.
    pub retained: Vec<String>,
}

impl StallReport {
    /// Renders the report as an indented human-readable text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.deadline_ns > 0 {
            let _ = writeln!(
                out,
                "stall watchdog: no progress for {} (deadline {})",
                super::fmt_ns(self.idle_ns),
                super::fmt_ns(self.deadline_ns),
            );
        } else {
            let _ = writeln!(out, "stall diagnosis (run quiesced without exiting):");
        }
        if let Some(fault) = &self.fault {
            let _ = writeln!(out, "  injected faults: {fault}");
        }
        let mut any = false;
        for w in &self.workers {
            if !w.blocked() {
                continue;
            }
            any = true;
            let _ = write!(
                out,
                "  worker {}: path depth {} (at block {}){}",
                w.machine,
                w.path_depth,
                w.current_block,
                if w.exited { ", exited" } else { "" },
            );
            match &w.awaiting_decision {
                Some((pos, cond)) => {
                    let _ = writeln!(
                        out,
                        ", awaiting decision for path position {pos} from condition `{cond}`"
                    );
                }
                None => {
                    let _ = writeln!(out);
                }
            }
            for s in &w.ops {
                let bag = match s.bag_len {
                    Some(l) => format!(", bag {l}"),
                    None => String::new(),
                };
                let what = match &s.awaited {
                    Some(a) => a.render(),
                    None => "no active wait (undecided conditional sends only)".to_string(),
                };
                let _ = writeln!(out, "    `{}` (block {}{bag}): {what}", s.name, s.block);
                if !s.pending_watchers.is_empty() {
                    let list: Vec<String> = s
                        .pending_watchers
                        .iter()
                        .map(|(e, l)| format!("edge {e} (bag {l})"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "      pending conditional-send watchers: {}",
                        list.join(", ")
                    );
                }
            }
        }
        if !any {
            let _ = writeln!(out, "  all workers exited and idle");
        }
        if !self.backpressure.is_empty() {
            let _ = writeln!(out, "  backpressured edges:");
            for line in &self.backpressure {
                let _ = writeln!(out, "    {line}");
            }
        }
        if !self.retained.is_empty() {
            let _ = writeln!(out, "  retained state:");
            for line in &self.retained {
                let _ = writeln!(out, "    {line}");
            }
        }
        if !self.flight.is_empty() {
            let _ = writeln!(out, "  flight recorder (most recent events per worker):");
            for line in &self.flight {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }
}

/// Introspects every worker (and its hosts) into a [`StallReport`].
///
/// `deadline_ns`/`idle_ns` describe how the stall was detected (zero under
/// the simulator, where quiescence itself is the signal).
pub fn diagnose(workers: &[crate::worker::Worker], deadline_ns: u64, idle_ns: u64) -> StallReport {
    StallReport {
        deadline_ns,
        idle_ns,
        workers: workers
            .iter()
            .map(crate::worker::Worker::stall_info)
            .collect(),
        fault: None,
        flight: Vec::new(),
        backpressure: Vec::new(),
        retained: Vec::new(),
    }
}

/// Renders the fault line of a [`StallReport`]: the injected plan plus the
/// observed fault-layer activity. The drivers attach it whenever the run's
/// [`crate::rt::FaultPlan`] is active.
pub fn fault_note(
    plan: &crate::rt::FaultPlan,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
    retransmits: u64,
) -> String {
    format!(
        "{} — {dropped} message(s) dropped, {duplicated} duplicated, \
         {reordered} reordered, {retransmits} retransmission(s)",
        plan.summary()
    )
}
