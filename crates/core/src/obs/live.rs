//! Live telemetry: always-on, relaxed-atomic progress counters that can be
//! read **while a job runs** — the one thing the post-mortem layer in
//! [`super`] cannot do.
//!
//! A [`TelemetryHub`] lives in [`crate::rt::EngineShared`], so every worker
//! and host of one job shares it. Hosts bump per-worker and per-operator
//! counters on the hot path with `Ordering::Relaxed` stores — no locks, no
//! clock reads beyond the one the worker already performs per message, no
//! virtual-time charges — cheap enough to stay on at every
//! [`super::ObsLevel`], including `Off`.
//!
//! The drivers periodically turn the hub into immutable [`Snapshot`]s: the
//! thread driver on a wall-clock interval from its monitor loop, the
//! simulator at exact virtual-time multiples via
//! [`mitos_sim::Sim::run_sampled`] (making snapshot tests deterministic and
//! charging zero virtual time). Snapshots surface as `mitos run --progress`
//! / `--watch` and `Outcome::snapshots()`.
//!
//! **Consistency caveat**: a snapshot reads each counter independently with
//! relaxed loads while workers keep running, so counters within one
//! snapshot are not a single consistent cut — `bags_finished` may briefly
//! exceed what `bags_started` implied a microsecond earlier. That is fine
//! for monitoring (each counter is individually monotone; per-atomic
//! coherence orders its values), and under the single-threaded simulator
//! snapshots *are* exact cuts. See `DESIGN.md` §6.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// All hub updates and snapshot reads use relaxed ordering: the counters
/// are independent monotone statistics, never used to synchronize memory.
const RELAXED: Ordering = Ordering::Relaxed;

/// Per-worker live counters (one block per machine, updated only by that
/// machine's worker; read concurrently by the sampler).
#[derive(Debug, Default)]
pub struct WorkerTelemetry {
    elements_in: AtomicU64,
    elements_out: AtomicU64,
    bags_started: AtomicU64,
    bags_finished: AtomicU64,
    current_block: AtomicU32,
    path_depth: AtomicU32,
    last_progress_ns: AtomicU64,
    msgs_handled: AtomicU64,
    retransmits: AtomicU64,
    dups_dropped: AtomicU64,
}

/// Per-operator live counters, summed across all instances/machines.
#[derive(Debug, Default)]
pub struct OpTelemetry {
    bags_started: AtomicU64,
    bags_finished: AtomicU64,
    elements_out: AtomicU64,
}

/// The shared live-telemetry hub of one job: per-worker and per-operator
/// relaxed-atomic counters. Created by the drivers alongside
/// [`crate::rt::EngineShared`]; see the module docs for the design.
#[derive(Debug)]
pub struct TelemetryHub {
    workers: Vec<WorkerTelemetry>,
    ops: Vec<OpTelemetry>,
    // Job-wide template-cache counters (all hosts, all machines): lookups
    // that replayed, lookups that recorded, replays abandoned mid-bag.
    template_hits: AtomicU64,
    template_misses: AtomicU64,
    template_invalidations: AtomicU64,
}

impl TelemetryHub {
    /// Creates a hub for `machines` workers over `n_ops` logical operators.
    pub fn new(machines: u16, n_ops: usize) -> TelemetryHub {
        TelemetryHub {
            workers: (0..machines).map(|_| WorkerTelemetry::default()).collect(),
            ops: (0..n_ops).map(|_| OpTelemetry::default()).collect(),
            template_hits: AtomicU64::new(0),
            template_misses: AtomicU64::new(0),
            template_invalidations: AtomicU64::new(0),
        }
    }

    /// Records a template-cache lookup outcome (job-wide; called by hosts
    /// on every bag start while templates are enabled).
    #[inline]
    pub fn template_lookup(&self, hit: bool) {
        if hit {
            self.template_hits.fetch_add(1, RELAXED);
        } else {
            self.template_misses.fetch_add(1, RELAXED);
        }
    }

    /// Records a template replay abandoned mid-bag (send-hint divergence
    /// or hoist disagreement).
    #[inline]
    pub fn template_invalidated(&self) {
        self.template_invalidations.fetch_add(1, RELAXED);
    }

    /// Records a message handled by `machine`'s worker at time `now_ns`
    /// (the last-progress timestamp the stall watchdog watches).
    #[inline]
    pub fn touch(&self, machine: u16, now_ns: u64) {
        let w = &self.workers[machine as usize];
        w.last_progress_ns.store(now_ns, RELAXED);
        w.msgs_handled.fetch_add(1, RELAXED);
    }

    /// Records the control-flow manager's position: the block just appended
    /// and the resulting execution-path depth.
    #[inline]
    pub fn position(&self, machine: u16, block: u32, depth: u32) {
        let w = &self.workers[machine as usize];
        w.current_block.store(block, RELAXED);
        w.path_depth.store(depth, RELAXED);
    }

    /// Records elements received by a host on `machine`.
    #[inline]
    pub fn elements_in(&self, machine: u16, n: u64) {
        self.workers[machine as usize]
            .elements_in
            .fetch_add(n, RELAXED);
    }

    /// Records elements emitted by an instance of `op` on `machine`.
    #[inline]
    pub fn elements_out(&self, machine: u16, op: u32, n: u64) {
        self.workers[machine as usize]
            .elements_out
            .fetch_add(n, RELAXED);
        self.ops[op as usize].elements_out.fetch_add(n, RELAXED);
    }

    /// Records an output bag opened by an instance of `op` on `machine`.
    #[inline]
    pub fn bag_started(&self, machine: u16, op: u32) {
        self.workers[machine as usize]
            .bags_started
            .fetch_add(1, RELAXED);
        self.ops[op as usize].bags_started.fetch_add(1, RELAXED);
    }

    /// Records an output bag finalized by an instance of `op` on `machine`.
    #[inline]
    pub fn bag_finished(&self, machine: u16, op: u32) {
        self.workers[machine as usize]
            .bags_finished
            .fetch_add(1, RELAXED);
        self.ops[op as usize].bags_finished.fetch_add(1, RELAXED);
    }

    /// Records a relay retransmission by `machine`'s worker
    /// (fault-injection runs only).
    #[inline]
    pub fn retransmit(&self, machine: u16) {
        self.workers[machine as usize]
            .retransmits
            .fetch_add(1, RELAXED);
    }

    /// Records a duplicate delivery discarded by `machine`'s worker
    /// (fault-injection runs only).
    #[inline]
    pub fn dup_dropped(&self, machine: u16) {
        self.workers[machine as usize]
            .dups_dropped
            .fetch_add(1, RELAXED);
    }

    /// One worker's last-progress timestamp — the quantity the stall
    /// watchdog compares against its deadline.
    pub fn worker_progress_ns(&self, machine: u16) -> u64 {
        self.workers[machine as usize]
            .last_progress_ns
            .load(RELAXED)
    }

    /// The most recent last-progress timestamp across all workers.
    pub fn latest_progress_ns(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.last_progress_ns.load(RELAXED))
            .max()
            .unwrap_or(0)
    }

    /// Captures an immutable [`Snapshot`] at time `t_ns`, computing deltas
    /// against `prev` (the previous snapshot, if any).
    pub fn snapshot(&self, t_ns: u64, prev: Option<&Snapshot>) -> Snapshot {
        let workers: Vec<WorkerSnapshot> = self
            .workers
            .iter()
            .enumerate()
            .map(|(m, w)| WorkerSnapshot {
                machine: m as u16,
                elements_in: w.elements_in.load(RELAXED),
                elements_out: w.elements_out.load(RELAXED),
                bags_started: w.bags_started.load(RELAXED),
                bags_finished: w.bags_finished.load(RELAXED),
                current_block: w.current_block.load(RELAXED),
                path_depth: w.path_depth.load(RELAXED),
                last_progress_ns: w.last_progress_ns.load(RELAXED),
                msgs_handled: w.msgs_handled.load(RELAXED),
                retransmits: w.retransmits.load(RELAXED),
                dups_dropped: w.dups_dropped.load(RELAXED),
            })
            .collect();
        let ops: Vec<OpSnapshot> = self
            .ops
            .iter()
            .enumerate()
            .map(|(op, o)| OpSnapshot {
                op: op as u32,
                bags_started: o.bags_started.load(RELAXED),
                bags_finished: o.bags_finished.load(RELAXED),
                elements_out: o.elements_out.load(RELAXED),
            })
            .collect();
        let total_out: u64 = workers.iter().map(|w| w.elements_out).sum();
        let (delta_ns, delta_elements_out) = match prev {
            Some(p) => (
                t_ns.saturating_sub(p.t_ns),
                total_out.saturating_sub(p.total_elements_out()),
            ),
            None => (t_ns, total_out),
        };
        Snapshot {
            t_ns,
            delta_ns,
            delta_elements_out,
            workers,
            ops,
            hot_edge: None,
            mem: None,
            templates: (
                self.template_hits.load(RELAXED),
                self.template_misses.load(RELAXED),
                self.template_invalidations.load(RELAXED),
            ),
        }
    }
}

/// One worker's counters as read at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// The machine this worker runs on.
    pub machine: u16,
    /// Elements received by this worker's hosts.
    pub elements_in: u64,
    /// Elements emitted by this worker's hosts.
    pub elements_out: u64,
    /// Output bags opened on this worker.
    pub bags_started: u64,
    /// Output bags finalized on this worker.
    pub bags_finished: u64,
    /// The basic block most recently appended to the local execution path.
    pub current_block: u32,
    /// The local execution path's depth (blocks appended so far).
    pub path_depth: u32,
    /// Timestamp of the last message this worker handled (virtual ns under
    /// the simulator, wall-clock ns since engine start under threads).
    pub last_progress_ns: u64,
    /// Messages handled by this worker.
    pub msgs_handled: u64,
    /// Relay envelopes retransmitted by this worker (zero unless fault
    /// injection is active).
    pub retransmits: u64,
    /// Duplicate deliveries discarded by this worker (zero unless fault
    /// injection is active).
    pub dups_dropped: u64,
}

/// One operator's counters as read at snapshot time (summed over
/// instances).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpSnapshot {
    /// The logical operator.
    pub op: u32,
    /// Output bags opened.
    pub bags_started: u64,
    /// Output bags finalized.
    pub bags_finished: u64,
    /// Elements emitted.
    pub elements_out: u64,
}

impl OpSnapshot {
    /// Bags opened but not yet finalized at snapshot time.
    pub fn inflight_bags(&self) -> u64 {
        self.bags_started.saturating_sub(self.bags_finished)
    }
}

/// A periodic, immutable reading of a job's [`TelemetryHub`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// When the snapshot was taken: virtual ns under the simulator (an
    /// exact multiple of the sample interval), wall-clock ns since engine
    /// start under the thread driver.
    pub t_ns: u64,
    /// Time since the previous snapshot (or since start, for the first).
    pub delta_ns: u64,
    /// Elements emitted since the previous snapshot (throughput delta).
    pub delta_elements_out: u64,
    /// Per-worker progress.
    pub workers: Vec<WorkerSnapshot>,
    /// Per-operator totals.
    pub ops: Vec<OpSnapshot>,
    /// The edge that has carried the most bytes so far, as
    /// `(edge, bytes, elements)` — filled in by the drivers from the flow
    /// registry ([`crate::obs::flow::FlowRegistry::hottest`]); [`None`]
    /// before any data-plane traffic.
    pub hot_edge: Option<(u32, u64, u64)>,
    /// Resident state as `(current bytes, peak bytes)` across all machines
    /// — filled in by the drivers from the memory registry
    /// ([`crate::obs::mem::MemRegistry::watch_cell`]); [`None`] before any
    /// residency (or when `MITOS_MEM_OFF` is set).
    pub mem: Option<(u64, u64)>,
    /// Template-cache counters so far, as
    /// `(hits, misses, invalidations)` — all zero when templates are
    /// disabled or no bag has started yet.
    pub templates: (u64, u64, u64),
}

impl Snapshot {
    /// Total elements emitted across all workers so far.
    pub fn total_elements_out(&self) -> u64 {
        self.workers.iter().map(|w| w.elements_out).sum()
    }

    /// Total output bags currently in flight (opened, not yet finalized).
    pub fn inflight_bags(&self) -> u64 {
        self.ops.iter().map(OpSnapshot::inflight_bags).sum()
    }

    /// The deepest execution path across workers (the fastest control-flow
    /// manager; stragglers lag behind it).
    pub fn max_path_depth(&self) -> u32 {
        self.workers.iter().map(|w| w.path_depth).max().unwrap_or(0)
    }

    /// Emitted-elements throughput over the last interval, in elements per
    /// (virtual or wall-clock) second.
    pub fn throughput_eps(&self) -> f64 {
        if self.delta_ns == 0 {
            0.0
        } else {
            self.delta_elements_out as f64 * 1e9 / self.delta_ns as f64
        }
    }
}

/// Renders a snapshot as the single `--progress` status line.
pub fn progress_line(s: &Snapshot) -> String {
    let depths: Vec<String> = s.workers.iter().map(|w| w.path_depth.to_string()).collect();
    format!(
        "[progress {:>9}] path {}@{} | bags {}/{} ({} in flight) | elems {} (+{}, {:.0}/s) | workers {}",
        super::fmt_ns(s.t_ns),
        s.max_path_depth(),
        s.workers.first().map_or(0, |w| w.current_block),
        s.ops.iter().map(|o| o.bags_started).sum::<u64>(),
        s.ops.iter().map(|o| o.bags_finished).sum::<u64>(),
        s.inflight_bags(),
        s.total_elements_out(),
        s.delta_elements_out,
        s.throughput_eps(),
        depths.join("/"),
    )
}

/// Renders a snapshot as the live `--watch` per-operator table, reusing
/// the explain renderer's column style ([`super::explain`]): operator name
/// and kind from the logical graph, bag lifecycle counts, in-flight bags,
/// and emitted elements, ordered by emitted elements (largest first) like
/// a metrics-level explain table.
pub fn watch_table(s: &Snapshot, graph: &crate::graph::LogicalGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "live telemetry @ {:>9}  ({} bags in flight, {:.0} elems/s)",
        super::fmt_ns(s.t_ns),
        s.inflight_bags(),
        s.throughput_eps(),
    );
    let _ = writeln!(
        out,
        "{:<24} {:<10} {:>7} {:>7} {:>9} {:>12}",
        "operator", "kind", "opened", "closed", "in-flight", "emitted"
    );
    let mut order: Vec<&OpSnapshot> = s.ops.iter().collect();
    order.sort_by(|a, b| b.elements_out.cmp(&a.elements_out).then(a.op.cmp(&b.op)));
    for o in order {
        let node = &graph.nodes[o.op as usize];
        let _ = writeln!(
            out,
            "{:<24} {:<10} {:>7} {:>7} {:>9} {:>12}",
            node.name,
            node.kind.label(),
            o.bags_started,
            o.bags_finished,
            o.inflight_bags(),
            o.elements_out,
        );
    }
    // The hottest edge only appears once data-plane traffic exists, so
    // quiet tables render exactly as before.
    if let Some((edge, bytes, elems)) = s.hot_edge {
        let _ = writeln!(
            out,
            "hottest edge: {} ({}, {} elems)",
            super::flow::FlowReport::edge_label(graph, edge),
            super::flow::fmt_bytes(bytes),
            elems,
        );
    }
    // Like the hottest edge, the residency line only appears once state
    // has been resident, so quiet tables render exactly as before.
    if let Some((cur, peak)) = s.mem {
        let _ = writeln!(
            out,
            "resident state: {} (peak {})",
            super::flow::fmt_bytes(cur),
            super::flow::fmt_bytes(peak),
        );
    }
    // Template-cache counters only appear once the cache saw traffic, so
    // templates-off tables render exactly as before.
    let (t_hits, t_misses, t_inval) = s.templates;
    if t_hits + t_misses + t_inval > 0 {
        let _ = writeln!(
            out,
            "templates: {t_hits} hit(s), {t_misses} miss(es), {t_inval} invalidation(s)",
        );
    }
    let per_worker: Vec<String> = s
        .workers
        .iter()
        .map(|w| {
            // Recovery-protocol counters only appear under fault
            // injection, keeping the fault-free table unchanged.
            let faults = if w.retransmits > 0 || w.dups_dropped > 0 {
                format!(" rtx {} dup {}", w.retransmits, w.dups_dropped)
            } else {
                String::new()
            };
            format!(
                "m{}: path {}@{} bags {}/{} last {}{}",
                w.machine,
                w.path_depth,
                w.current_block,
                w.bags_started,
                w.bags_finished,
                super::fmt_ns(w.last_progress_ns),
                faults,
            )
        })
        .collect();
    let _ = writeln!(out, "{}", per_worker.join("  |  "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate_between_snapshots() {
        let hub = TelemetryHub::new(2, 3);
        hub.elements_out(0, 1, 10);
        hub.bag_started(0, 1);
        let s1 = hub.snapshot(100, None);
        assert_eq!(s1.total_elements_out(), 10);
        assert_eq!(s1.delta_elements_out, 10);
        assert_eq!(s1.inflight_bags(), 1);
        hub.elements_out(1, 2, 5);
        hub.bag_finished(0, 1);
        let s2 = hub.snapshot(300, Some(&s1));
        assert_eq!(s2.delta_ns, 200);
        assert_eq!(s2.delta_elements_out, 5);
        assert_eq!(s2.inflight_bags(), 0);
        assert_eq!(s2.total_elements_out(), 15);
    }

    #[test]
    fn touch_and_position_feed_worker_rows() {
        let hub = TelemetryHub::new(2, 1);
        hub.touch(1, 42);
        hub.position(1, 7, 3);
        hub.elements_in(1, 4);
        let s = hub.snapshot(50, None);
        assert_eq!(s.workers[1].last_progress_ns, 42);
        assert_eq!(s.workers[1].current_block, 7);
        assert_eq!(s.workers[1].path_depth, 3);
        assert_eq!(s.workers[1].elements_in, 4);
        assert_eq!(s.max_path_depth(), 3);
        assert_eq!(hub.latest_progress_ns(), 42);
    }
}
