//! Structured runtime events: one record per observable step of the bag
//! lifecycle and the control-flow protocol.
//!
//! Events are cheap POD values; the recording buffer ([`super::ObsBuf`])
//! only materializes them at [`super::ObsLevel::Trace`]. Timestamps come
//! from [`crate::rt::Net::now_ns`] — virtual time under the simulator,
//! monotonic wall-clock under the threaded driver — so the same event
//! stream renders meaningfully from either driver.

use mitos_ir::BlockId;

/// Sentinel operator id for worker-level events (control-flow manager,
/// barrier) that are not attributable to a single operator.
pub const OP_NONE: u32 = u32::MAX;

/// One recorded runtime event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in nanoseconds: virtual time (simulator) or monotonic
    /// wall-clock since engine start (threads).
    pub t_ns: u64,
    /// Machine the event happened on.
    pub machine: u16,
    /// Logical operator id, or [`OP_NONE`] for worker-level events.
    pub op: u32,
    /// What happened.
    pub kind: EventKind,
}

/// Which input-selection rule (Sec. 5.2.3) chose the input bag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputRule {
    /// Producer in the same block occurrence, earlier statement.
    SameBlock,
    /// Latest occurrence of the producing block before this one.
    LatestOccurrence,
    /// Φ node: the alternative whose producing block occurred latest.
    PhiLatest,
}

impl InputRule {
    /// Short stable label (used in trace args and the explain report).
    pub fn label(self) -> &'static str {
        match self {
            InputRule::SameBlock => "same-block",
            InputRule::LatestOccurrence => "latest-occurrence",
            InputRule::PhiLatest => "phi-latest",
        }
    }
}

/// The event vocabulary: bag lifecycle (Sec. 5.2.2–5.2.4), hoisting
/// (Sec. 5.3), and the control-flow protocol (Sec. 5.2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An output bag was scheduled and its inputs selected (5.2.2). The bag
    /// identifier is `(op, bag_len)`; `pos = bag_len - 1` is the path
    /// position of the block occurrence it belongs to.
    BagOpened {
        /// Path position of the occurrence.
        pos: u32,
        /// Bag identifier prefix length (`pos + 1`).
        bag_len: u32,
    },
    /// One logical input chose its input bag (5.2.3).
    InputSelected {
        /// The logical edge the input arrives on.
        edge: u32,
        /// Prefix length of the chosen input bag.
        bag_len: u32,
        /// Which prefix rule fired.
        rule: InputRule,
    },
    /// Loop-invariant build state was reused instead of recomputed (5.3).
    HoistHit {
        /// Path position of the occurrence that reused the state.
        pos: u32,
        /// Prefix length of the unchanged hoisted input bag.
        bag_len: u32,
    },
    /// The operator produced elements into its output bag.
    Emitted {
        /// Producing bag's prefix length.
        bag_len: u32,
        /// Elements produced in this batch.
        count: u64,
    },
    /// A conditional (non-immediate) edge resolved its send decision
    /// (5.2.4): the path proved the consumer will run (`sent`) or can
    /// never select this bag (dropped).
    SendResolved {
        /// The outgoing logical edge.
        edge: u32,
        /// The bag whose fate was decided.
        bag_len: u32,
        /// `true` = ship (buffered elements flushed), `false` = discard.
        sent: bool,
        /// Elements that were buffered while undecided.
        buffered: u64,
        /// Nanoseconds from bag open to decision.
        latency_ns: u64,
    },
    /// The operator finished computing the bag (all inputs consumed).
    BagFinalized {
        /// Path position of the occurrence.
        pos: u32,
        /// Bag identifier prefix length.
        bag_len: u32,
    },
    /// End-of-bag punctuation went out on a decided edge (the close /
    /// watermark protocol message).
    PunctuationSent {
        /// The outgoing logical edge.
        edge: u32,
        /// The closed bag's prefix length.
        bag_len: u32,
        /// Total elements announced across destinations.
        count: u64,
    },
    /// An output sink appended elements to its `out://` collection.
    SinkWrote {
        /// The sink's active bag (ties the write to a loop iteration).
        bag_len: u32,
        /// Elements appended.
        count: u64,
    },
    /// A control-flow decision was broadcast to the other control-flow
    /// managers (5.2.1).
    DecisionBroadcast {
        /// Path position the decision resolves.
        pos: u32,
        /// The chosen successor block.
        block: BlockId,
    },
    /// A remote control-flow manager received a broadcast decision. The
    /// wire-carried trace context ties the receipt back to the decider's
    /// span (see [`crate::obs::span`]).
    DecisionReceived {
        /// Path position the decision resolves.
        pos: u32,
        /// The chosen successor block.
        block: BlockId,
        /// Parent span id carried on the wire (the decider's Decide span).
        parent: u64,
    },
    /// The local execution path gained a block occurrence.
    PathAppended {
        /// New path position.
        pos: u32,
        /// The appended block.
        block: BlockId,
    },
    /// A simulated/asynchronous file read started.
    IoStarted {
        /// The reading operator's active bag (ties the read to a loop
        /// iteration).
        bag_len: u32,
        /// Modeled disk delay until the data arrives.
        delay_ns: u64,
    },
    /// A pending file read delivered its elements.
    IoFinished {
        /// The reading operator's active bag.
        bag_len: u32,
        /// Elements read.
        count: u64,
    },
    /// The superstep barrier released a path position (non-pipelined mode).
    StepReleased {
        /// Released position.
        pos: u32,
    },
    /// The at-least-once relay retransmitted an unacknowledged envelope
    /// (fault-injection runs only; see [`crate::relay`]).
    RetransmitSent {
        /// Destination machine of the retransmitted envelope.
        peer: u16,
        /// Per-link sequence number of the envelope.
        seq: u64,
        /// Retransmission round (1 = first retry).
        attempt: u32,
        /// Step index when the retransmitted payload is a
        /// [`crate::rt::Msg::Decision`]; `u32::MAX` for every other
        /// payload. Lets the span layer annotate receipt spans with
        /// attempt counts without conflating data retransmissions.
        step: u32,
    },
    /// Receiver-side dedup discarded a duplicate reliable delivery
    /// (fault-injection runs only).
    DuplicateDropped {
        /// The machine whose envelope arrived twice.
        peer: u16,
        /// The duplicated sequence number.
        seq: u64,
    },
}

impl EventKind {
    /// Stable short name (Chrome-trace event names, test assertions).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::BagOpened { .. } => "bag_opened",
            EventKind::InputSelected { .. } => "input_selected",
            EventKind::HoistHit { .. } => "hoist_hit",
            EventKind::Emitted { .. } => "emitted",
            EventKind::SendResolved { .. } => "send_resolved",
            EventKind::BagFinalized { .. } => "bag_finalized",
            EventKind::PunctuationSent { .. } => "punctuation_sent",
            EventKind::SinkWrote { .. } => "sink_wrote",
            EventKind::DecisionBroadcast { .. } => "decision_broadcast",
            EventKind::DecisionReceived { .. } => "decision_received",
            EventKind::PathAppended { .. } => "path_appended",
            EventKind::IoStarted { .. } => "io_started",
            EventKind::IoFinished { .. } => "io_finished",
            EventKind::StepReleased { .. } => "step_released",
            EventKind::RetransmitSent { .. } => "retransmit_sent",
            EventKind::DuplicateDropped { .. } => "duplicate_dropped",
        }
    }
}
