//! Execution paths and the path-based coordination rules of Sec. 5.2.
//!
//! A **bag identifier** is `(operator, path-prefix length)`: since every
//! bag's path is a prefix of the single global execution path, storing the
//! length is enough — a large representational win over shipping block
//! sequences around, and every control-flow manager replicates the path
//! anyway.
//!
//! This module implements, as pure functions over the path:
//!
//! * output-bag scheduling (5.2.2): an operator computes a bag for every
//!   occurrence of its block on the path;
//! * input-bag choice (5.2.3): the longest prefix ending with the
//!   producer's block — extended with a statement-order tie-break for
//!   producers in the *same* block as the consumer (needed when a loop
//!   body is a single basic block);
//! * conditional-output decisions (5.2.4): send a produced bag when the
//!   path reaches the consumer's block before the producer's block recurs;
//!   drop it as soon as the path enters a block from which the consumer's
//!   block is unreachable without passing the producer's block again (the
//!   paper's static early-discard rule).

use crate::graph::{EdgeId, LogicalGraph, OpId};
use mitos_ir::nir::FuncIr;
use mitos_ir::{BlockId, Dominators};

/// A bag identifier: the producing operator and the length of the
/// execution-path prefix at creation (Sec. 5.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BagId {
    /// Producing logical operator.
    pub op: OpId,
    /// Length of the path prefix; `path[len - 1]` is the producing block
    /// occurrence.
    pub len: u32,
}

/// The (replicated) global execution path: the sequence of basic blocks the
/// program's control flow has reached.
#[derive(Clone, Debug, Default)]
pub struct ExecutionPath {
    blocks: Vec<BlockId>,
    exited: bool,
}

impl ExecutionPath {
    /// An empty path.
    pub fn new() -> ExecutionPath {
        ExecutionPath::default()
    }

    /// Appends a block occurrence; returns its position.
    pub fn append(&mut self, block: BlockId) -> u32 {
        self.blocks.push(block);
        (self.blocks.len() - 1) as u32
    }

    /// Marks that the program has exited (no more blocks will be appended).
    pub fn mark_exited(&mut self) {
        self.exited = true;
    }

    /// Whether the program has exited.
    pub fn exited(&self) -> bool {
        self.exited
    }

    /// Current length.
    pub fn len(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block at a position.
    pub fn get(&self, pos: u32) -> BlockId {
        self.blocks[pos as usize]
    }

    /// The whole path so far (for test assertions against the reference
    /// interpreter's recorded path).
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// The largest position `i < limit` with `path[i] == block`.
    pub fn last_occurrence_before(&self, block: BlockId, limit: u32) -> Option<u32> {
        let limit = (limit as usize).min(self.blocks.len());
        self.blocks[..limit]
            .iter()
            .rposition(|&b| b == block)
            .map(|i| i as u32)
    }
}

/// One natural loop of the control-flow graph, identified by its header
/// block (the target of at least one back edge `u → h` with `h`
/// dominating `u`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopInfo {
    /// The loop header block.
    pub header: BlockId,
    /// Index (into [`LoopNest::loops`]) of the innermost enclosing loop,
    /// or `None` for a top-level loop.
    pub parent: Option<usize>,
    /// Nesting depth: 1 for top-level loops, 2 for loops inside them, …
    pub depth: u32,
}

/// The loop-nesting structure of a compiled program, used to decode an
/// execution path (and therefore every path-prefix bag identifier) back
/// into **loop-iteration coordinates**.
///
/// A bag identifier stores only `(operator, prefix length)`; the prefix
/// ends at the block occurrence the bag belongs to. Replaying the path
/// while counting header occurrences per nesting level assigns every
/// position a coordinate vector — e.g. `[2, 0]` = third outer iteration,
/// first inner iteration — which is how the profiler attributes events to
/// iterations without any extra runtime tagging.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopNest {
    /// All natural loops, ordered by header block id (deterministic).
    pub loops: Vec<LoopInfo>,
    /// `loop_of_block[b]` = innermost loop whose body contains block `b`.
    pub loop_of_block: Vec<Option<usize>>,
}

impl LoopNest {
    /// Detects the natural loops of `func` from its back edges (an edge
    /// `u → h` where `h` dominates `u`) and computes their nesting.
    pub fn build(func: &FuncIr) -> LoopNest {
        let n = func.block_count();
        if n == 0 {
            return LoopNest::default();
        }
        let dom = Dominators::compute(func);
        let preds = func.predecessors();
        let succs = func.successors();

        // Collect back edges grouped by header, headers in ascending order.
        let mut latches: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for u in 0..n as BlockId {
            for &h in &succs[u as usize] {
                if dom.dominates(h, u) {
                    match latches.binary_search_by_key(&h, |&(hh, _)| hh) {
                        Ok(i) => latches[i].1.push(u),
                        Err(i) => latches.insert(i, (h, vec![u])),
                    }
                }
            }
        }

        // Natural loop body of header h: h plus everything that reaches a
        // latch backwards without passing through h.
        let mut bodies: Vec<Vec<bool>> = Vec::with_capacity(latches.len());
        for (h, ls) in &latches {
            let mut body = vec![false; n];
            body[*h as usize] = true;
            let mut stack: Vec<BlockId> = ls.clone();
            while let Some(b) = stack.pop() {
                if body[b as usize] {
                    continue;
                }
                body[b as usize] = true;
                stack.extend(preds[b as usize].iter().copied());
            }
            bodies.push(body);
        }

        // Parent = the smallest strictly-containing loop body.
        let body_size = |i: usize| -> usize { bodies[i].iter().filter(|&&x| x).count() };
        let mut loops: Vec<LoopInfo> = latches
            .iter()
            .map(|&(header, _)| LoopInfo {
                header,
                parent: None,
                depth: 1,
            })
            .collect();
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for (j, body) in bodies.iter().enumerate().take(loops.len()) {
                if i != j
                    && body[loops[i].header as usize]
                    && (best.is_none() || body_size(j) < body_size(best.unwrap()))
                {
                    best = Some(j);
                }
            }
            loops[i].parent = best;
        }
        for i in 0..loops.len() {
            let mut d = 1;
            let mut p = loops[i].parent;
            while let Some(j) = p {
                d += 1;
                p = loops[j].parent;
            }
            loops[i].depth = d;
        }

        // Innermost loop per block = the containing loop of maximal depth
        // (ties broken toward the smaller body, which cannot happen for
        // distinct-header natural loops at equal depth containing the same
        // block unless they share the body anyway).
        let mut loop_of_block = vec![None; n];
        for (b, slot) in loop_of_block.iter_mut().enumerate() {
            let mut best: Option<usize> = None;
            for (i, body) in bodies.iter().enumerate() {
                if body[b] && (best.is_none() || loops[i].depth > loops[best.unwrap()].depth) {
                    best = Some(i);
                }
            }
            *slot = best;
        }
        LoopNest {
            loops,
            loop_of_block,
        }
    }

    /// The chain of loops containing `block`, outermost first.
    pub fn chain_of_block(&self, block: BlockId) -> Vec<usize> {
        let mut chain = Vec::new();
        let mut cur = self.loop_of_block.get(block as usize).copied().flatten();
        while let Some(i) = cur {
            chain.push(i);
            cur = self.loops[i].parent;
        }
        chain.reverse();
        chain
    }

    /// Maximum nesting depth (0 for loop-free programs).
    pub fn max_depth(&self) -> u32 {
        self.loops.iter().map(|l| l.depth).max().unwrap_or(0)
    }

    /// Decodes an execution path into per-position **iteration
    /// coordinates**: for every path position, the vector of 0-based
    /// iteration counters of the loops enclosing that block occurrence,
    /// outermost first (empty for blocks outside all loops).
    ///
    /// A new occurrence of a loop's header while that loop is active
    /// starts its next iteration; entering a loop (its header appearing
    /// when the loop is not active) starts iteration 0; leaving a loop's
    /// body pops its counter. Re-entering a loop therefore restarts at 0 —
    /// coordinates are relative to the current activation, matching how
    /// input selection treats recurring blocks (Sec. 5.2.3).
    pub fn coords(&self, path: &[BlockId]) -> Vec<Vec<u32>> {
        let mut stack: Vec<(usize, u32)> = Vec::new();
        let mut out = Vec::with_capacity(path.len());
        for &b in path {
            let chain = self.chain_of_block(b);
            let mut common = 0;
            while common < stack.len() && common < chain.len() && stack[common].0 == chain[common] {
                common += 1;
            }
            stack.truncate(common);
            for &l in &chain[common..] {
                stack.push((l, 0));
            }
            if let Some(&innermost) = chain.last() {
                if self.loops[innermost].header == b && common == chain.len() {
                    // The loop was already active: a fresh header
                    // occurrence begins its next iteration.
                    stack.last_mut().expect("active loop").1 += 1;
                }
            }
            out.push(stack.iter().map(|&(_, it)| it).collect());
        }
        out
    }
}

/// Static per-edge data for the coordination rules.
#[derive(Clone, Debug)]
pub struct EdgeRules {
    /// Producer's block and statement index.
    pub src_block: BlockId,
    /// Producer's statement index within its block.
    pub src_stmt: usize,
    /// Consumer's block.
    pub dst_block: BlockId,
    /// Consumer's statement index within its block.
    pub dst_stmt: usize,
    /// True when producer and consumer share a block with the producer
    /// first: elements stream immediately, no conditional-send watcher.
    pub immediate: bool,
    /// `drop_mask[b]`: entering block `b` proves the consumer's block can
    /// no longer be reached without the producer's block recurring — the
    /// producer may discard the pending bag.
    pub drop_mask: Vec<bool>,
    /// True when the producer's block lies in no loop: such a block occurs
    /// at most once in any execution path, so its occurrence position is a
    /// run constant (the path is append-only). The template cache uses
    /// this to record loop-invariant selections absolutely
    /// ([`crate::template::SelSlot::Absolute`]).
    pub once: bool,
}

/// All static rule data derived from a logical graph.
#[derive(Clone, Debug)]
pub struct PathRules {
    /// Per logical edge.
    pub edges: Vec<EdgeRules>,
}

impl PathRules {
    /// Precomputes rule data for every edge of the graph.
    pub fn build(graph: &LogicalGraph) -> PathRules {
        let succs = graph.func.successors();
        let n_blocks = graph.func.block_count();
        let nest = LoopNest::build(&graph.func);
        let edges = graph
            .edges
            .iter()
            .map(|e| {
                let src = &graph.nodes[e.src as usize];
                let dst = &graph.nodes[e.dst as usize];
                let immediate = src.block == dst.block && src.stmt_idx < dst.stmt_idx;
                let drop_mask = if immediate {
                    Vec::new()
                } else {
                    (0..n_blocks as BlockId)
                        .map(|b| !can_reach_avoiding(&succs, b, dst.block, src.block))
                        .collect()
                };
                EdgeRules {
                    src_block: src.block,
                    src_stmt: src.stmt_idx,
                    dst_block: dst.block,
                    dst_stmt: dst.stmt_idx,
                    immediate,
                    drop_mask,
                    once: nest
                        .loop_of_block
                        .get(src.block as usize)
                        .copied()
                        .flatten()
                        .is_none(),
                }
            })
            .collect();
        PathRules { edges }
    }

    /// Input-bag choice (5.2.3): the path-prefix length of the input bag a
    /// consumer occurrence at `out_pos` must use from this edge, or `None`
    /// if the producer has not yet occurred (only legal for Φ candidates).
    pub fn select_input_len(
        &self,
        edge: EdgeId,
        path: &ExecutionPath,
        out_pos: u32,
    ) -> Option<u32> {
        let r = &self.edges[edge as usize];
        // Same-block producers earlier in the block belong to the *current*
        // occurrence; everything else must come from a strictly earlier
        // position ("the latest bag written before this point").
        let limit = if r.src_block == r.dst_block && r.src_stmt < r.dst_stmt {
            out_pos + 1
        } else {
            out_pos
        };
        path.last_occurrence_before(r.src_block, limit)
            .map(|i| i + 1)
    }

    /// Conditional-output decision (5.2.4) for a bag produced over `edge`
    /// with identifier length `bag_len`, scanning path positions from
    /// `cursor`. Returns the decision and the next cursor.
    pub fn decide_send(
        &self,
        edge: EdgeId,
        path: &ExecutionPath,
        bag_len: u32,
        cursor: u32,
    ) -> (SendDecision, u32) {
        let r = &self.edges[edge as usize];
        debug_assert!(!r.immediate, "immediate edges never consult the watcher");
        let mut pos = cursor.max(bag_len);
        while pos < path.len() {
            let b = path.get(pos);
            if b == r.dst_block {
                return (SendDecision::Send, pos + 1);
            }
            if r.drop_mask[b as usize] {
                return (SendDecision::Drop, pos + 1);
            }
            pos += 1;
        }
        if path.exited() {
            // No more appends will come; the consumer's block can never be
            // reached.
            return (SendDecision::Drop, pos);
        }
        (SendDecision::Undecided, pos)
    }
}

/// Outcome of the conditional-output watcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendDecision {
    /// Transmit the bag to the consumer.
    Send,
    /// Discard the bag; the consumer will never select it.
    Drop,
    /// Keep watching future path appends.
    Undecided,
}

/// BFS reachability from `from` to `target` that never visits `avoid`
/// (including as the start block).
fn can_reach_avoiding(
    succs: &[Vec<BlockId>],
    from: BlockId,
    target: BlockId,
    avoid: BlockId,
) -> bool {
    if from == avoid {
        return false;
    }
    if from == target {
        return true;
    }
    let mut visited = vec![false; succs.len()];
    visited[from as usize] = true;
    let mut queue = vec![from];
    while let Some(b) = queue.pop() {
        for &s in &succs[b as usize] {
            // Arriving AT the target always counts, even when the target
            // block is the avoided block itself (same-block loop-carried
            // edges): "avoid" only forbids passing *through*.
            if s == target {
                return true;
            }
            if s == avoid || visited[s as usize] {
                continue;
            }
            visited[s as usize] = true;
            queue.push(s);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LogicalGraph;
    use mitos_ir::compile_str;

    fn setup(src: &str) -> (LogicalGraph, PathRules) {
        let g = LogicalGraph::build(&compile_str(src).unwrap()).unwrap();
        let r = PathRules::build(&g);
        (g, r)
    }

    fn edge_into(g: &LogicalGraph, dst_name: &str, input: usize) -> EdgeId {
        let dst = g
            .nodes
            .iter()
            .position(|n| &*n.name == dst_name)
            .unwrap_or_else(|| panic!("no node {dst_name}")) as OpId;
        g.edges
            .iter()
            .position(|e| e.dst == dst && e.dst_input == input)
            .unwrap() as EdgeId
    }

    fn path_of(blocks: &[BlockId]) -> ExecutionPath {
        let mut p = ExecutionPath::new();
        for &b in blocks {
            p.append(b);
        }
        p
    }

    #[test]
    fn last_occurrence_respects_limit() {
        let p = path_of(&[0, 1, 2, 1, 3]);
        assert_eq!(p.last_occurrence_before(1, 5), Some(3));
        assert_eq!(p.last_occurrence_before(1, 3), Some(1));
        assert_eq!(p.last_occurrence_before(1, 1), None);
        assert_eq!(p.last_occurrence_before(9, 5), None);
    }

    #[test]
    fn same_block_earlier_stmt_selects_current_occurrence() {
        // b = a.map(..) in the same block: b's input comes from the same
        // occurrence.
        let (g, r) = setup("a = bag(1); b = a.map(x => x); output(b, \"b\");");
        let e = edge_into(&g, "b", 0);
        let p = path_of(&[0]);
        assert_eq!(r.select_input_len(e, &p, 0), Some(1));
    }

    #[test]
    fn loop_carried_phi_selects_previous_iteration() {
        // do-while with a single-block body: the phi's loop-carried operand
        // is defined in the same block *after* the phi, so the selection
        // must come from the previous occurrence.
        let (g, r) = setup("i = 0; do { i = i + 1; } while (i < 3); output(i, \"i\");");
        let phi = g
            .nodes
            .iter()
            .position(|n| matches!(n.kind, crate::graph::NodeKind::Phi))
            .unwrap() as OpId;
        let phi_node = &g.nodes[phi as usize];
        // Identify the edge from the loop-carried producer (same block,
        // later stmt) and from the init producer (entry block).
        let mut init_edge = None;
        let mut carried_edge = None;
        for (i, e) in g.edges.iter().enumerate() {
            if e.dst == phi {
                let src = &g.nodes[e.src as usize];
                if src.block == phi_node.block {
                    carried_edge = Some(i as EdgeId);
                } else {
                    init_edge = Some(i as EdgeId);
                }
            }
        }
        let (init_edge, carried_edge) = (init_edge.unwrap(), carried_edge.unwrap());
        // Path: entry(0), body(1), body(1), ... Phi occurrence at pos 1.
        let p = path_of(&[0, 1, 1]);
        // First iteration (pos 1): init candidate = prefix 1; carried = none.
        assert_eq!(r.select_input_len(init_edge, &p, 1), Some(1));
        assert_eq!(r.select_input_len(carried_edge, &p, 1), None);
        // Second iteration (pos 2): carried candidate = prefix 2 (previous
        // body occurrence), init still 1 — carried wins.
        assert_eq!(r.select_input_len(carried_edge, &p, 2), Some(2));
        assert_eq!(r.select_input_len(init_edge, &p, 2), Some(1));
    }

    #[test]
    fn figure_4a_outer_invariant_selected_across_inner_iterations() {
        // x defined in the outer loop, joined inside the inner loop: every
        // inner occurrence selects the bag of the latest outer occurrence
        // (the paper's ABBA example).
        let (g, r) = setup(
            r#"
            i = 0;
            while (i < 2) {
                x = bag((1, i));
                j = 0;
                while (j < 2) {
                    y = bag((1, j));
                    z = x join y;
                    j = j + 1;
                }
                i = i + 1;
            }
            output(i, "done");
            "#,
        );
        let build_edge = edge_into(&g, "z", 0);
        let z = g.nodes.iter().position(|n| &*n.name == "z").unwrap();
        let z_block = g.nodes[z].block;
        let x = g.nodes.iter().position(|n| &*n.name == "x").unwrap();
        let x_block = g.nodes[x].block;
        // Build a plausible path: entry, outerHeader, outerBody(x),
        // innerHeader, innerBody(z), innerHeader, innerBody(z), ...
        // We find real block ids from the graph.
        let outer_body = x_block;
        let inner_body = z_block;
        // Find the headers from the terminator structure: inner header is
        // the block that branches into inner_body.
        let mut p = ExecutionPath::new();
        // Synthetic but structurally consistent path: the selection rule
        // only inspects occurrences of x's block.
        let inner_header = {
            let preds = g.func.predecessors();
            *preds[inner_body as usize]
                .iter()
                .find(|&&b| b != inner_body)
                .unwrap()
        };
        for &b in &[
            0,
            1,
            outer_body,
            inner_header,
            inner_body,
            inner_header,
            inner_body,
        ] {
            p.append(b);
        }
        let first_inner_pos = 4;
        let second_inner_pos = 6;
        let sel1 = r.select_input_len(build_edge, &p, first_inner_pos).unwrap();
        let sel2 = r
            .select_input_len(build_edge, &p, second_inner_pos)
            .unwrap();
        assert_eq!(sel1, sel2, "same x bag reused across inner iterations");
        assert_eq!(p.get(sel1 - 1), x_block);
    }

    #[test]
    fn conditional_send_fires_on_consumer_block() {
        // yesterday = counts (block B); consumed by the join next iteration.
        let (g, r) = setup(
            r#"
            yesterday = empty;
            day = 1;
            do {
                counts = bag((day, 1));
                j = counts join yesterday;
                s = j.count();
                yesterday = counts;
                day = day + 1;
            } while (day <= 3);
            output(day, "d");
            "#,
        );
        // Edge: alias `yesterday.2`... find the edge into the phi from the
        // loop body (the loop-carried alias).
        let phi = g
            .nodes
            .iter()
            .position(|n| {
                matches!(n.kind, crate::graph::NodeKind::Phi) && n.name.starts_with("yesterday")
            })
            .unwrap() as OpId;
        let carried_edge = g
            .edges
            .iter()
            .position(|e| {
                e.dst == phi && g.nodes[e.src as usize].block == g.nodes[phi as usize].block
            })
            .unwrap() as EdgeId;
        let body = g.nodes[phi as usize].block;
        // Bag produced at first body occurrence (pos 1, len 2).
        let mut p = path_of(&[0, body]);
        let (d, cursor) = r.decide_send(carried_edge, &p, 2, 2);
        assert_eq!(d, SendDecision::Undecided);
        // Loop continues: body occurs again -> dst block reached -> send.
        p.append(body);
        let (d, _) = r.decide_send(carried_edge, &p, 2, cursor);
        assert_eq!(d, SendDecision::Send);
    }

    #[test]
    fn conditional_send_drops_on_exit() {
        let (g, r) = setup(
            r#"
            yesterday = empty;
            day = 1;
            do {
                counts = bag((day, 1));
                j = counts join yesterday;
                s = j.count();
                yesterday = counts;
                day = day + 1;
            } while (day <= 3);
            output(day, "d");
            "#,
        );
        let phi = g
            .nodes
            .iter()
            .position(|n| {
                matches!(n.kind, crate::graph::NodeKind::Phi) && n.name.starts_with("yesterday")
            })
            .unwrap() as OpId;
        let carried_edge = g
            .edges
            .iter()
            .position(|e| {
                e.dst == phi && g.nodes[e.src as usize].block == g.nodes[phi as usize].block
            })
            .unwrap() as EdgeId;
        let body = g.nodes[phi as usize].block;
        let exit = g.func.exit_block().unwrap();
        // Loop exits right after the bag is produced.
        let mut p = path_of(&[0, body, exit]);
        let (d, _) = r.decide_send(carried_edge, &p, 2, 2);
        assert_eq!(d, SendDecision::Drop, "exit block is in the drop set");
        // Even without appending the exit block, marking the path exited
        // drops pending bags.
        let mut p2 = path_of(&[0, body]);
        p2.mark_exited();
        let (d2, _) = r.decide_send(carried_edge, &p2, 2, 2);
        assert_eq!(d2, SendDecision::Drop);
        let _ = &mut p;
    }

    #[test]
    fn immediate_edges_have_no_watcher() {
        let (g, r) = setup("a = bag(1); b = a.map(x => x); output(b, \"b\");");
        let e = edge_into(&g, "b", 0);
        assert!(r.edges[e as usize].immediate);
    }

    #[test]
    fn loop_nest_detects_nesting_and_coords() {
        // Outer while + inner while: two loops, inner nested in outer.
        let func = mitos_ir::compile_str(
            r#"
            i = 0;
            while (i < 2) {
                j = 0;
                while (j < 3) { j = j + 1; }
                i = i + 1;
            }
            output(i, "i");
            "#,
        )
        .unwrap();
        let nest = LoopNest::build(&func);
        assert_eq!(nest.loops.len(), 2, "{nest:?}");
        assert_eq!(nest.max_depth(), 2);
        let inner = nest.loops.iter().position(|l| l.depth == 2).unwrap();
        let outer = nest.loops.iter().position(|l| l.depth == 1).unwrap();
        assert_eq!(nest.loops[inner].parent, Some(outer));
        assert_eq!(nest.loops[outer].parent, None);

        // Replay the real path from the reference interpreter and check
        // coordinate structure.
        let fs = mitos_fs::InMemoryFs::new();
        let run = mitos_ir::interpret(&func, &fs, mitos_ir::InterpConfig::default()).unwrap();
        let coords = nest.coords(&run.path);
        assert_eq!(coords.len(), run.path.len());
        // Entry block: outside all loops.
        assert!(coords[0].is_empty());
        // Depth-2 coordinates appear, and the innermost counter reaches 2
        // (three inner iterations) while the outer counter reaches 1.
        assert!(coords.iter().any(|c| c == &vec![0, 0]), "{coords:?}");
        assert!(coords.iter().any(|c| c == &vec![0, 2]), "{coords:?}");
        assert!(coords.iter().any(|c| c == &vec![1, 2]), "{coords:?}");
        assert!(!coords.iter().any(|c| c.len() > 2));
        // Inner counters restart at 0 on every outer iteration.
        assert!(coords.iter().any(|c| c == &vec![1, 0]), "{coords:?}");
        // Coordinates are monotone per nesting level along the path:
        // the outer counter never decreases.
        let mut last_outer = 0;
        for c in &coords {
            if let Some(&o) = c.first() {
                assert!(o >= last_outer, "{coords:?}");
                last_outer = o;
            }
        }
    }

    #[test]
    fn loop_nest_single_block_do_while() {
        // do-while with a single-block body: the header is its own latch.
        let func =
            mitos_ir::compile_str("i = 0; do { i = i + 1; } while (i < 3); output(i, \"i\");")
                .unwrap();
        let nest = LoopNest::build(&func);
        assert_eq!(nest.loops.len(), 1);
        let fs = mitos_fs::InMemoryFs::new();
        let run = mitos_ir::interpret(&func, &fs, mitos_ir::InterpConfig::default()).unwrap();
        let coords = nest.coords(&run.path);
        // Three body occurrences: iterations 0, 1, 2.
        let iters: Vec<u32> = coords
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| c[0])
            .collect();
        assert_eq!(iters, vec![0, 1, 2], "{coords:?}");
    }

    #[test]
    fn loop_free_program_has_empty_nest() {
        let func = mitos_ir::compile_str("a = bag(1, 2); output(a.sum(), \"s\");").unwrap();
        let nest = LoopNest::build(&func);
        assert!(nest.loops.is_empty());
        assert_eq!(nest.max_depth(), 0);
        let coords = nest.coords(&[0, 1]);
        assert!(coords.iter().all(Vec::is_empty));
    }

    #[test]
    fn if_branch_bag_dropped_when_branch_not_taken() {
        // x assigned before the if; consumed only in the then-branch.
        let (g, r) = setup(
            r#"
            i = 0;
            while (i < 3) {
                x = bag((i, 1));
                if (i == 1) {
                    s = x.count();
                    output(s, "s");
                }
                i = i + 1;
            }
            output(i, "i");
            "#,
        );
        // Edge from x into the count (reduce) inside the then-branch.
        let x = g.nodes.iter().position(|n| &*n.name == "x").unwrap() as OpId;
        let reduce_edge = g
            .edges
            .iter()
            .position(|e| {
                e.src == x
                    && matches!(
                        g.nodes[e.dst as usize].kind,
                        crate::graph::NodeKind::Reduce { .. }
                    )
            })
            .unwrap() as EdgeId;
        let rules = &r.edges[reduce_edge as usize];
        assert!(!rules.immediate);
        let body = g.nodes[x as usize].block;
        let then_blk = rules.dst_block;
        // The else path must be in the drop mask... find a block that is
        // neither then nor body: the join block after the if. We emulate:
        // path [.., body, elseOrJoin]: the bag should be dropped once the
        // path proves the then-branch was skipped.
        // Find the else block from the condition node in the body block.
        let cond = g
            .nodes
            .iter()
            .find(|n| n.block == body && n.condition.is_some())
            .unwrap();
        let ci = cond.condition.unwrap();
        let else_blk = if ci.then_blk == then_blk {
            ci.else_blk
        } else {
            ci.then_blk
        };
        assert!(
            rules.drop_mask[else_blk as usize],
            "skipping the branch must drop the pending bag"
        );
        assert!(!rules.drop_mask[then_blk as usize]);
    }
}
