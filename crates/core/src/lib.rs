//! # mitos-core
//!
//! The paper's primary contribution: building a **single cyclic dataflow
//! job** from a program with arbitrary imperative control flow (Sec. 4.3)
//! and coordinating its distributed execution with path-carrying bag
//! identifiers (Sec. 5), including the **loop pipelining** and
//! **loop-invariant hoisting** optimizations.
//!
//! Main entry points:
//!
//! * [`graph::LogicalGraph::build`] — SSA → dataflow job + physical plan.
//! * [`engine::run_sim`] / [`engine::run_source_sim`] — execute on the
//!   simulated cluster.
//!
//! A thread-based driver for the same worker state machines is added in
//! [`thread_driver`], and a structured tracing + metrics layer (Chrome
//! trace export, `EXPLAIN`-style reports) in [`obs`].

#![warn(missing_docs)]

pub mod cost;
pub mod dot;
pub mod engine;
pub mod fuse;
pub mod graph;
pub mod host;
pub mod obs;
pub mod path;
pub mod relay;
pub mod rt;
pub mod template;
pub mod thread_driver;
pub mod worker;

pub use cost::CostModel;
pub use dot::{to_dot, DotOverlay};
pub use engine::{extract_outputs, run_sim, run_sim_live, run_source_sim, EngineResult};
pub use fuse::{fuse_graph, planned_graph};
pub use graph::{LogicalGraph, NodeKind, OpId, Parallelism, Partitioning};
pub use obs::{
    build_profile, build_step_trees, critical_path, progress_line, render_tree, watch_table,
    BagNode, ClassMem, CriticalPath, EdgeFlow, Event, EventKind, FlightRecorder, FlowRegistry,
    FlowReport, Histogram, MachineMem, MemClass, MemRegistry, MemReport, ObsLevel, ObsReport,
    PhaseHistograms, Profile, Snapshot, SpanCtx, StallReport, StepTree, TelemetryHub,
};
pub use path::{BagId, ExecutionPath, LoopInfo, LoopNest, PathRules, SendDecision};
pub use relay::{Relay, ReliableNet};
pub use rt::{EngineConfig, FaultPlan, Msg, RuntimeError, NS_PER_MS};
pub use template::{Template, TemplateCache};
pub use thread_driver::{run_threads, run_threads_live};
pub use worker::Worker;
