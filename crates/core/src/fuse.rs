//! Operator chain fusion in the physical planner.
//!
//! The planner of [`crate::graph`] wraps *every* SSA assignment in its own
//! bag operator, so a `readFile → map → filter` chain pays per-edge
//! `Data`/`BagDone` messages, per-host input-bag selection, and
//! punctuation accounting at every hop. This pass collapses maximal linear
//! chains of narrow per-element operators into a single fused
//! [`NodeKind::Fused`] node whose host runs the composed kernel in one
//! pass (Flink's operator chaining, applied to the Mitos coordination
//! runtime).
//!
//! # Legality
//!
//! An edge `u → v` may be fused away iff **all** of:
//!
//! * `v` is a per-element operator: `map`, `flatMap`, `filter`, or a
//!   pass-through `alias`/Φ with exactly one input;
//! * the edge is one-to-one: [`Partitioning::Forward`], with both ends at
//!   [`Parallelism::Full`] (same instance count, same placement);
//! * producer and consumer share a basic block with the producer first —
//!   the *immediate* rule of [`crate::path::EdgeRules`], which also makes
//!   the edge non-conditional (no send/drop watcher ever runs on it);
//! * the intermediate bag has no other consumer (`u`'s only out-edge is
//!   this one), so no downstream operator — in particular no conditional
//!   consumer and no loop-invariant hoisting site (a join build input or
//!   cross collected input) — can select it;
//! * neither end is a condition node (conditions are scalar and therefore
//!   `Single`, so the parallelism check subsumes this).
//!
//! Conditional outputs (Sec. 5.2.4 of the paper) force chain breaks
//! because a cross-block consumer needs the conditional-send watcher and
//! its own bag identity; the same-block rule excludes them wholesale.
//!
//! The chain *head* may additionally be a `readFile` source: the fused
//! host performs the partitioned read and pushes the elements through the
//! per-element stages without materializing the raw bag.
//!
//! The fused node keeps the **tail**'s identity (variable, block,
//! statement index), so downstream input selection, conditional-send
//! rules, and Φ choices are unchanged; the head's external inputs and
//! every stage's captured scalars are re-wired onto the fused node, which
//! preserves their selection semantics because re-targeting an edge to a
//! later statement of the same block keeps the producer-before-consumer
//! predicate of [`crate::path::PathRules::select_input_len`] intact.

use crate::graph::{
    BuildError, EdgeId, FusedStage, LogicalEdge, LogicalGraph, LogicalNode, NodeKind, OpId,
    Parallelism, Partitioning,
};
use crate::rt::EngineConfig;
use mitos_ir::nir::FuncIr;

/// Builds the logical graph for `func` and applies chain fusion when the
/// configuration asks for it — the physical-planning entry point shared by
/// the simulator driver, the thread driver, and the CLI.
pub fn planned_graph(func: &FuncIr, config: &EngineConfig) -> Result<LogicalGraph, BuildError> {
    let mut graph = LogicalGraph::build(func)?;
    if config.fusion {
        fuse_graph(&mut graph);
    }
    Ok(graph)
}

/// Whether a node can be *absorbed* into a chain (become a non-head
/// stage).
fn absorbable(n: &LogicalNode) -> bool {
    if n.parallelism != Parallelism::Full || n.condition.is_some() {
        return false;
    }
    match n.kind {
        NodeKind::Map { .. } | NodeKind::FlatMap { .. } | NodeKind::Filter { .. } => true,
        // Pass-through: single-input aliases and Φs forward elements
        // unchanged. (Multi-input Φs select among producers at runtime and
        // cannot be fused.)
        NodeKind::Alias | NodeKind::Phi => n.inputs.len() == 1,
        _ => false,
    }
}

/// Whether a node can *lead* a chain. Φ is excluded: a Φ head would need
/// the latest-occurrence input choice, which the fused (non-Φ) node does
/// not perform.
fn head_eligible(n: &LogicalNode) -> bool {
    if n.parallelism != Parallelism::Full || n.condition.is_some() {
        return false;
    }
    matches!(
        n.kind,
        NodeKind::ReadFile
            | NodeKind::Map { .. }
            | NodeKind::FlatMap { .. }
            | NodeKind::Filter { .. }
            | NodeKind::Alias
    )
}

/// Collapses every maximal fusable chain of `graph` into a single
/// [`NodeKind::Fused`] node and rebuilds the edge tables. Returns the
/// number of chains fused.
pub fn fuse_graph(graph: &mut LogicalGraph) -> usize {
    let n = graph.nodes.len();
    // Candidate links: next[u] = v when the single edge u → v can fuse.
    let mut next: Vec<Option<usize>> = vec![None; n];
    let mut has_prev = vec![false; n];
    for (v, vn) in graph.nodes.iter().enumerate() {
        if !absorbable(vn) {
            continue;
        }
        let u = vn.inputs[0].src as usize;
        let un = &graph.nodes[u];
        if !(head_eligible(un) || absorbable(un)) {
            continue;
        }
        if vn.inputs[0].partitioning != Partitioning::Forward {
            continue;
        }
        if un.block != vn.block || un.stmt_idx >= vn.stmt_idx {
            continue; // cross-block or loop-carried: needs its own bag
        }
        if graph.out_edges[u].len() != 1 {
            continue; // the intermediate bag has another consumer
        }
        next[u] = Some(v);
        has_prev[v] = true;
    }

    let mut removed = vec![false; n];
    let mut fused_count = 0usize;
    for h in 0..n {
        if has_prev[h] || next[h].is_none() {
            continue;
        }
        let mut chain = vec![h];
        let mut cur = h;
        while let Some(nx) = next[cur] {
            chain.push(nx);
            cur = nx;
        }
        // A node that can only be an interior stage (a pass-through Φ)
        // must not lead: trim until the head is eligible.
        while chain.len() >= 2 && !head_eligible(&graph.nodes[chain[0]]) {
            chain.remove(0);
        }
        if chain.len() < 2 {
            continue;
        }
        // Compose the fused node: the head's inputs (data-or-name first),
        // then every later stage's captured scalars, in stage order.
        let mut stages = Vec::with_capacity(chain.len());
        let mut inputs = Vec::new();
        for (ci, &m) in chain.iter().enumerate() {
            let node = &graph.nodes[m];
            if ci == 0 {
                inputs.push(node.inputs[0]);
            }
            inputs.extend(node.inputs.iter().skip(1).copied());
            stages.push(FusedStage {
                kind: node.kind.clone(),
                name: node.name.clone(),
                captured: node.inputs.len() - 1,
            });
        }
        let tail = *chain.last().expect("non-empty chain");
        for &m in &chain[..chain.len() - 1] {
            removed[m] = true;
        }
        let t = &mut graph.nodes[tail];
        t.kind = NodeKind::Fused {
            stages: stages.into(),
        };
        t.inputs = inputs;
        fused_count += 1;
    }

    if fused_count == 0 {
        return 0;
    }

    // Compact the node table and rebuild the derived edge tables.
    let mut remap = vec![OpId::MAX; n];
    let old_nodes = std::mem::take(&mut graph.nodes);
    let mut nodes = Vec::with_capacity(old_nodes.len());
    for (i, node) in old_nodes.into_iter().enumerate() {
        if removed[i] {
            continue;
        }
        remap[i] = nodes.len() as OpId;
        nodes.push(node);
    }
    for node in &mut nodes {
        for input in &mut node.inputs {
            debug_assert_ne!(remap[input.src as usize], OpId::MAX, "dangling input");
            input.src = remap[input.src as usize];
        }
    }
    let mut edges = Vec::new();
    let mut out_edges = vec![Vec::new(); nodes.len()];
    for (dst, node) in nodes.iter().enumerate() {
        for (dst_input, input) in node.inputs.iter().enumerate() {
            let id = edges.len() as EdgeId;
            edges.push(LogicalEdge {
                src: input.src,
                dst: dst as OpId,
                dst_input,
                partitioning: input.partitioning,
            });
            out_edges[input.src as usize].push(id);
        }
    }
    graph.nodes = nodes;
    graph.edges = edges;
    graph.out_edges = out_edges;
    fused_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitos_ir::compile_str;

    fn fused(src: &str) -> (LogicalGraph, usize) {
        let mut g = LogicalGraph::build(&compile_str(src).unwrap()).unwrap();
        let chains = fuse_graph(&mut g);
        check_invariants(&g);
        (g, chains)
    }

    /// The derived edge tables must stay consistent with the node inputs.
    fn check_invariants(g: &LogicalGraph) {
        let mut count = 0;
        for (dst, node) in g.nodes.iter().enumerate() {
            for (dst_input, input) in node.inputs.iter().enumerate() {
                let e = g
                    .edges
                    .iter()
                    .position(|e| e.dst == dst as OpId && e.dst_input == dst_input)
                    .unwrap_or_else(|| panic!("no edge into {}/{}", node.name, dst_input));
                assert_eq!(g.edges[e].src, input.src);
                assert_eq!(g.edges[e].partitioning, input.partitioning);
                assert!(g.out_edges[input.src as usize].contains(&(e as EdgeId)));
                count += 1;
            }
        }
        assert_eq!(g.edges.len(), count);
        assert_eq!(g.out_edges.len(), g.nodes.len());
    }

    fn fused_node(g: &LogicalGraph) -> &LogicalNode {
        g.nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Fused { .. }))
            .expect("a fused node")
    }

    #[test]
    fn fuses_map_filter_flatmap_chain() {
        let (g, chains) = fused(
            "a = bag(1, 2, 3);
             b = a.map(x => x + 1).filter(x => x > 1).flatMap(x => [x, x]);
             output(b, \"b\");",
        );
        assert_eq!(chains, 1);
        let node = fused_node(&g);
        assert_eq!(node.kind.label(), "map+filter+flatMap");
        assert_eq!(&*node.name, "b");
        // a → fused → output: the two intermediate edges are gone.
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn readfile_heads_a_chain() {
        let (g, chains) = fused(
            "v = readFile(\"log\").map(x => (x, 1));
             output(v, \"v\");",
        );
        assert_eq!(chains, 1);
        let node = fused_node(&g);
        assert_eq!(node.kind.label(), "readFile+map");
        // Input 0 is the broadcast file name.
        assert_eq!(node.inputs[0].partitioning, Partitioning::Broadcast);
    }

    #[test]
    fn captured_scalars_rewire_onto_the_fused_node() {
        let (g, chains) = fused(
            "k = 3; m = 10;
             a = bag(1, 2, 3);
             b = a.map(x => x + k).filter(x => x < m);
             output(b, \"b\");",
        );
        assert_eq!(chains, 1);
        let node = fused_node(&g);
        assert_eq!(node.kind.label(), "map+filter");
        // data input + two captured scalars, laid out in stage order.
        assert_eq!(node.inputs.len(), 3);
        assert_eq!(node.inputs[1].partitioning, Partitioning::Broadcast);
        assert_eq!(node.inputs[2].partitioning, Partitioning::Broadcast);
        let NodeKind::Fused { stages } = &node.kind else {
            unreachable!()
        };
        assert_eq!(stages[0].captured, 1);
        assert_eq!(stages[1].captured, 1);
        // `a = bag(..)` feeds the chain but is *not* part of it: literal
        // bags are Single, so their data edge is Hash, not Forward.
        assert_eq!(node.inputs[0].partitioning, Partitioning::Hash);
        assert!(matches!(
            g.nodes[node.inputs[0].src as usize].kind,
            NodeKind::LiteralBag { .. }
        ));
    }

    #[test]
    fn multi_consumer_intermediate_blocks_fusion() {
        let (g, chains) = fused(
            "a = bag(1, 2);
             b = a.map(x => x + 1);
             c = b.filter(x => x > 1);
             d = b.map(x => x * 2);
             output(c, \"c\"); output(d, \"d\");",
        );
        // `b` feeds both `c` and `d`: no chain may swallow it.
        assert_eq!(chains, 0);
        assert!(g
            .nodes
            .iter()
            .all(|n| !matches!(n.kind, NodeKind::Fused { .. })));
    }

    #[test]
    fn cross_block_edge_blocks_fusion() {
        let (g, chains) = fused(
            "a = bag(1, 2, 3).map(x => x + 1);
             s = 0;
             for i = 1 to 2 {
                 s = s + a.filter(x => x > 1).count();
             }
             output(s, \"s\");",
        );
        // The map is defined before the loop; the filter runs inside the
        // loop body. Their edge crosses blocks, so the filter keeps its own
        // bag identity (it re-selects `a`'s bag on every iteration).
        for n in &g.nodes {
            if let NodeKind::Fused { stages } = &n.kind {
                assert!(
                    stages
                        .iter()
                        .all(|s| !matches!(s.kind, NodeKind::Filter { .. })),
                    "the cross-block filter must not be fused"
                );
            }
        }
        // The bag(..).map(..) prologue itself is Hash-fed (literal bags are
        // Single), so nothing fuses here at all.
        assert_eq!(chains, 0);
    }

    #[test]
    fn conditional_edge_blocks_fusion() {
        let (g, chains) = fused(
            "a = bag(1, 2, 3);
             b = a.map(x => x + 1);
             t = 0;
             if (1 < 2) {
                 t = b.filter(x => x > 1).count();
             }
             output(t, \"t\");",
        );
        // `b` is produced unconditionally but consumed inside a branch:
        // the edge is non-immediate (conditional), so the producer needs
        // its send/drop watcher and must not fuse with the consumer.
        assert_eq!(chains, 0);
        let _ = g;
    }

    #[test]
    fn hoisted_invariant_input_is_not_swallowed() {
        let (g, chains) = fused(
            "inv = readFile(\"types\").map(t => (t, 1));
             s = 0;
             for i = 1 to 3 {
                 v = readFile(\"log\" + i).map(x => (x, 1));
                 j = inv join v;
                 s = s + j.count();
             }
             output(s, \"s\");",
        );
        // Both readFile→map chains fuse, but the join keeps both inputs:
        // the hoisted build side still selects the fused `inv` bag.
        assert_eq!(chains, 2);
        let join = g
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Join))
            .expect("join survives");
        assert_eq!(join.inputs.len(), 2);
        for input in &join.inputs {
            assert!(matches!(
                g.nodes[input.src as usize].kind,
                NodeKind::Fused { .. }
            ));
            assert_eq!(input.partitioning, Partitioning::Hash);
        }
    }

    #[test]
    fn planned_graph_respects_the_switch() {
        let func = compile_str(
            "v = readFile(\"log\").map(x => (x, 1));
             output(v, \"v\");",
        )
        .unwrap();
        let on = planned_graph(&func, &EngineConfig::default()).unwrap();
        let off = planned_graph(&func, &EngineConfig::new().with_fusion(false)).unwrap();
        assert!(on.nodes.len() < off.nodes.len());
        assert!(off
            .nodes
            .iter()
            .all(|n| !matches!(n.kind, NodeKind::Fused { .. })));
    }

    #[test]
    fn condition_nodes_never_fuse() {
        let (g, _) = fused(
            "i = 0;
             while (i < 3) { i = i + 1; }
             output(i, \"i\");",
        );
        assert!(g.nodes.iter().any(|n| n.condition.is_some()));
        for n in &g.nodes {
            if n.condition.is_some() {
                assert!(!matches!(n.kind, NodeKind::Fused { .. }));
            }
        }
    }
}
