//! Real-thread execution of the Mitos runtime.
//!
//! The bag operator hosts and control-flow managers are message-driven
//! state machines (see [`crate::worker`]); this driver runs one worker per
//! OS thread with crossbeam channels as the transport — the same code that
//! the discrete-event simulator drives, now under genuine concurrency and
//! OS scheduling nondeterminism. Integration tests assert that results
//! equal the simulator's and the reference interpreter's.
//!
//! Termination uses in-flight message counting: every send increments a
//! shared counter before the message enters a channel and the receiver
//! decrements it only after fully processing the message (including any
//! sends that processing performed). Delayed deliveries (relay
//! retransmission timers, fault-injected duplicate/reorder copies) are
//! registered in a shared timer heap — counted as in flight at
//! registration time and serviced by the monitor loop — so a zero counter
//! means nothing is pending anywhere: no channel message, no timer. The
//! driver then checks that the program exited and all hosts are idle.
//!
//! Fault injection ([`crate::rt::FaultPlan`]) is applied send-side: every
//! remote send consults the same pure per-link verdict function the
//! simulator uses (seed × link × per-link send index), so a plan's
//! drop/duplicate/reorder schedule is deterministic here too — though the
//! *interleaving* under real threads is not. Partition windows are
//! evaluated against wall-clock nanoseconds since engine start. Machine
//! pause windows and slowdowns are simulator-only refinements (real
//! threads have no virtual clock to scale) and are ignored here.

use crate::engine::{extract_outputs, EngineResult};
use crate::obs::{self, ObsLevel};
use crate::rt::{EngineConfig, EngineShared, Msg, Net, RuntimeError, Verdict};
use crate::worker::Worker;
use crossbeam::channel::{unbounded, Receiver, Sender};
use mitos_fs::InMemoryFs;
use mitos_ir::nir::FuncIr;
use mitos_sim::SimReport;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

enum TMsg {
    M(Msg),
    Stop,
}

/// Pending delayed deliveries: `(due_ns, destination, message)`. Each
/// entry was counted in `inflight` when registered; the monitor loop
/// moves due entries into the destination channel without re-counting.
type TimerHeap = Mutex<Vec<(u64, u16, Msg)>>;

/// Shared fault-injection state for a threaded run (present only when the
/// plan has network faults). Counters mirror the simulator's
/// [`SimReport`] fault fields.
struct ThreadFaults {
    plan: crate::rt::FaultPlan,
    /// Per-link physical send counters, indexed `src * machines + dst`;
    /// feeds the pure verdict function so retransmits get fresh verdicts.
    link_seq: Vec<AtomicU64>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
}

struct ThreadNet<'a> {
    /// The sending machine (fault verdicts are per directed link).
    machine: u16,
    senders: &'a [Sender<TMsg>],
    inflight: &'a AtomicI64,
    timers: &'a TimerHeap,
    faults: Option<&'a ThreadFaults>,
    sent: u64,
    /// Engine start; trace timestamps are monotonic ns since this point.
    epoch: Instant,
}

impl ThreadNet<'_> {
    /// Delivers directly into the destination channel (past the fault
    /// layer).
    fn push_raw(&mut self, machine: u16, msg: Msg) {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        self.sent += 1;
        // A send can only fail after Stop, when delivery no longer matters.
        if self.senders[machine as usize].send(TMsg::M(msg)).is_err() {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl Net for ThreadNet<'_> {
    fn send(&mut self, machine: u16, msg: Msg, _bytes: u64) {
        if machine != self.machine {
            if let Some(f) = self.faults {
                let now = self.epoch.elapsed().as_nanos() as u64;
                let idx = self.machine as usize * self.senders.len() + machine as usize;
                let k = f.link_seq[idx].fetch_add(1, Ordering::Relaxed);
                if f.plan.partitioned(self.machine, machine, now) {
                    f.dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                match f.plan.verdict(self.machine, machine, k) {
                    Verdict::Deliver => {}
                    Verdict::Drop => {
                        f.dropped.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Verdict::Duplicate { extra_delay_ns } => {
                        f.duplicated.fetch_add(1, Ordering::Relaxed);
                        self.timer(extra_delay_ns, machine, msg.clone());
                    }
                    Verdict::Reorder { extra_delay_ns } => {
                        f.reordered.fetch_add(1, Ordering::Relaxed);
                        self.timer(extra_delay_ns, machine, msg);
                        return;
                    }
                }
            }
        }
        self.push_raw(machine, msg);
    }

    fn charge(&mut self, _ns: u64) {
        // Real time is real; virtual charging is a no-op here.
    }

    fn schedule(&mut self, _delay_ns: u64, machine: u16, msg: Msg) {
        // Disk delays are not simulated on real threads; deliver directly.
        self.send(machine, msg, 0);
    }

    fn timer(&mut self, delay_ns: u64, machine: u16, msg: Msg) {
        // Genuinely delayed (unlike `schedule`): relay retransmission
        // backoff and fault-injected duplicate/reorder copies rely on the
        // delay actually elapsing. Counted as in flight now so quiescence
        // detection waits for pending timers.
        self.inflight.fetch_add(1, Ordering::SeqCst);
        let due = self.epoch.elapsed().as_nanos() as u64 + delay_ns;
        self.timers.lock().push((due, machine, msg));
    }

    fn now_ns(&mut self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// Runs a compiled SSA program on real threads (one worker thread per
/// simulated machine). File effects land in `fs`; `output(..)` collections
/// are extracted into the result. The returned `sim` report carries the
/// measured **wall-clock** duration in `end_time` (nanoseconds, same unit
/// the simulator uses for virtual time — see [`crate::rt::NS_PER_MS`]);
/// the other simulator counters stay zero.
pub fn run_threads(
    func: &FuncIr,
    fs: &InMemoryFs,
    engine: EngineConfig,
    machines: u16,
) -> Result<EngineResult, RuntimeError> {
    run_threads_live(func, fs, engine, machines, &mut |_| {})
}

/// Like [`run_threads`], with live telemetry: the monitor loop samples the
/// shared [`crate::obs::live::TelemetryHub`] every
/// [`EngineConfig::sample_interval_ns`] wall-clock nanoseconds (invoking
/// `on_snapshot` per [`crate::obs::live::Snapshot`]) and, when
/// [`EngineConfig::stall_deadline_ns`] is non-zero, aborts the run if no
/// worker handles a message for that long — returning a
/// [`RuntimeError`] carrying a structured
/// [`crate::obs::watchdog::StallReport`] naming the blocked operators and
/// what each awaits.
pub fn run_threads_live(
    func: &FuncIr,
    fs: &InMemoryFs,
    engine: EngineConfig,
    machines: u16,
    on_snapshot: &mut dyn FnMut(&crate::obs::live::Snapshot),
) -> Result<EngineResult, RuntimeError> {
    assert!(machines > 0);
    let graph =
        crate::fuse::planned_graph(func, &engine).map_err(|e| RuntimeError::new(e.message))?;
    let rules = crate::path::PathRules::build(&graph);
    let telemetry = crate::obs::live::TelemetryHub::new(machines, graph.nodes.len());
    let flow = crate::obs::flow::FlowRegistry::new(machines, graph.edges.len());
    let mem = crate::obs::mem::MemRegistry::new(machines, graph.nodes.len());
    let shared = Arc::new(EngineShared {
        graph,
        rules,
        config: engine,
        fs: fs.clone(),
        machines,
        telemetry,
        flight: crate::obs::recorder::FlightRecorder::new(machines),
        flow,
        mem,
    });

    let epoch = Instant::now();
    let channels: Vec<(Sender<TMsg>, Receiver<TMsg>)> =
        (0..machines).map(|_| unbounded()).collect();
    let senders: Vec<Sender<TMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();
    let inflight = AtomicI64::new(0);
    let timers: TimerHeap = Mutex::new(Vec::new());
    let faults: Option<ThreadFaults> =
        shared
            .config
            .faults
            .net_faults_active()
            .then(|| ThreadFaults {
                plan: shared.config.faults.clone(),
                link_seq: (0..machines as usize * machines as usize)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                dropped: AtomicU64::new(0),
                duplicated: AtomicU64::new(0),
                reordered: AtomicU64::new(0),
            });
    let idle_flags: Vec<AtomicBool> = (0..machines).map(|_| AtomicBool::new(false)).collect();
    let exited_flags: Vec<AtomicBool> = (0..machines).map(|_| AtomicBool::new(false)).collect();
    let first_error: Mutex<Option<RuntimeError>> = Mutex::new(None);

    // Bootstrap.
    for s in &senders {
        inflight.fetch_add(1, Ordering::SeqCst);
        s.send(TMsg::M(Msg::Start)).expect("fresh channel");
    }

    let workers: Vec<Mutex<Option<Worker>>> = (0..machines)
        .map(|m| Mutex::new(Some(Worker::new(shared.clone(), m))))
        .collect();

    let interval = shared.config.sample_interval_ns;
    let deadline = shared.config.stall_deadline_ns;
    let mut snapshots: Vec<crate::obs::live::Snapshot> = Vec::new();
    let mut next_sample = interval;
    // Wall-clock position of the previous queue-depth sample, so each
    // monitor wake-up charges exactly the elapsed interval to the flow
    // registry's backpressure accounting.
    let mut last_flow_sample: u64 = 0;
    let mut depths: Vec<usize> = vec![0; machines as usize];
    // `(reason, idle_ns)` when the run must be diagnosed post-join (the
    // workers are inside the scope's threads until Stop).
    let mut stall: Option<(String, u64)> = None;

    std::thread::scope(|scope| {
        for (m, (_, receiver)) in channels.iter().enumerate() {
            let senders = &senders;
            let inflight = &inflight;
            let timers = &timers;
            let faults = faults.as_ref();
            let idle_flags = &idle_flags;
            let exited_flags = &exited_flags;
            let first_error = &first_error;
            let workers = &workers;
            let receiver = receiver.clone();
            scope.spawn(move || {
                let mut worker = workers[m].lock().take().expect("worker present");
                for tmsg in receiver.iter() {
                    let msg = match tmsg {
                        TMsg::Stop => break,
                        TMsg::M(msg) => msg,
                    };
                    let mut net = ThreadNet {
                        machine: m as u16,
                        senders,
                        inflight,
                        timers,
                        faults,
                        sent: 0,
                        epoch,
                    };
                    worker.handle(msg, &mut net);
                    if let Some(e) = &worker.error {
                        first_error.lock().get_or_insert_with(|| e.clone());
                    }
                    idle_flags[m].store(worker.idle(), Ordering::SeqCst);
                    exited_flags[m].store(worker.path().exited(), Ordering::SeqCst);
                    inflight.fetch_sub(1, Ordering::SeqCst);
                }
                *workers[m].lock() = Some(worker);
            });
        }

        // Quiescence detection loop (also the telemetry sampler and the
        // stall watchdog: it already wakes every 200µs anyway).
        loop {
            std::thread::sleep(std::time::Duration::from_micros(200));
            let now = epoch.elapsed().as_nanos() as u64;
            {
                // Service due timers: move them into their destination
                // channels. They were counted in `inflight` at
                // registration, so no re-count here.
                let mut heap = timers.lock();
                let mut i = 0;
                while i < heap.len() {
                    if heap[i].0 <= now {
                        let (_, machine, msg) = heap.swap_remove(i);
                        if senders[machine as usize].send(TMsg::M(msg)).is_err() {
                            inflight.fetch_sub(1, Ordering::SeqCst);
                        }
                    } else {
                        i += 1;
                    }
                }
            }
            // Queue-depth and backpressure sampling on every wake-up: the
            // monitor already runs anyway, and the registry never touches
            // worker state, so this observes without perturbing.
            for (d, (_, r)) in depths.iter_mut().zip(channels.iter()) {
                *d = r.len();
            }
            shared
                .flow
                .sample_queues(&depths, now.saturating_sub(last_flow_sample));
            last_flow_sample = now;
            if interval > 0 && now >= next_sample {
                shared.mem.sample();
                let mut s = shared.telemetry.snapshot(now, snapshots.last());
                s.hot_edge = shared.flow.hottest();
                s.mem = shared.mem.watch_cell();
                on_snapshot(&s);
                snapshots.push(s);
                while next_sample <= now {
                    next_sample += interval;
                }
            }
            if first_error.lock().is_some() {
                // Drain: errored workers discard messages; wait for
                // quiescence, then stop.
                if inflight.load(Ordering::SeqCst) == 0 {
                    break;
                }
                continue;
            }
            if deadline > 0 {
                // Per-worker: a worker that exited with all hosts idle is
                // done, not stalled; any other worker that hasn't handled
                // a message within the deadline trips the watchdog.
                let mut worst: u64 = 0;
                for m in 0..machines as usize {
                    if exited_flags[m].load(Ordering::SeqCst)
                        && idle_flags[m].load(Ordering::SeqCst)
                    {
                        continue;
                    }
                    let idle = now.saturating_sub(shared.telemetry.worker_progress_ns(m as u16));
                    worst = worst.max(idle);
                }
                if worst > deadline {
                    stall = Some(("stall watchdog fired".to_string(), worst));
                    break;
                }
            }
            let quiet = inflight.load(Ordering::SeqCst) == 0;
            if !quiet {
                continue;
            }
            let all_exited = exited_flags.iter().all(|f| f.load(Ordering::SeqCst));
            let all_idle = idle_flags.iter().all(|f| f.load(Ordering::SeqCst));
            if all_exited && all_idle {
                break;
            }
            // Nothing in flight anywhere — no channel message, no pending
            // timer — yet the program has not exited or hosts still hold
            // state: a genuine deadlock (e.g. a dropped decision broadcast
            // with recovery off). With a stall deadline armed, let the
            // watchdog wait it out (its timing is part of the contract);
            // otherwise break now rather than spinning forever, and
            // diagnose after the threads return their workers.
            if deadline == 0 {
                stall = Some((
                    "threaded run quiesced before the program exited (runtime deadlock)"
                        .to_string(),
                    0,
                ));
                break;
            }
        }
        for s in &senders {
            let _ = s.send(TMsg::Stop);
        }
    });

    let wall_ns = epoch.elapsed().as_nanos() as u64;
    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    let mut workers: Vec<Worker> = workers
        .into_iter()
        .map(|w| w.into_inner().expect("worker returned"))
        .collect();
    let fault_counts = faults
        .as_ref()
        .map(|f| {
            (
                f.dropped.load(Ordering::Relaxed),
                f.duplicated.load(Ordering::Relaxed),
                f.reordered.load(Ordering::Relaxed),
            )
        })
        .unwrap_or((0, 0, 0));
    if let Some((reason, idle_ns)) = stall {
        // The threads have returned their workers: introspect them for the
        // structured diagnosis (blocked operators, awaited inputs/decisions,
        // pending conditional-send watchers). A fault-injected run names
        // the injected faults alongside.
        let mut diag = crate::obs::diagnose(&workers, deadline, idle_ns);
        diag.flight = shared.flight.dump_lines();
        diag.backpressure = shared.flow.snapshot().backpressure_lines(&shared.graph);
        diag.retained = shared.mem.snapshot().retained_lines();
        if shared.config.faults.is_active() {
            let retransmits = workers.iter().map(Worker::retransmits).sum();
            diag.fault = Some(obs::fault_note(
                &shared.config.faults,
                fault_counts.0,
                fault_counts.1,
                fault_counts.2,
                retransmits,
            ));
        }
        return Err(RuntimeError::stalled(reason, diag));
    }
    if !workers[0].path().exited() {
        return Err(RuntimeError::new("threaded run ended before program exit"));
    }
    let outputs = extract_outputs(fs);
    let op_stats = crate::engine::collect_op_stats(&shared.graph, &workers, machines);
    let path = workers[0].path().blocks().to_vec();
    let hoist_hits = workers.iter().map(Worker::hoist_hits).sum();
    let template_hits = workers.iter().map(Worker::template_hits).sum();
    let template_misses = workers.iter().map(Worker::template_misses).sum();
    let template_invalidations = workers.iter().map(Worker::template_invalidations).sum();
    let decisions = workers.iter().map(|w| w.decisions_broadcast).sum();
    let data_messages = workers.iter().map(|w| w.data_messages).sum();
    let level = shared.config.obs;
    let obs_report = (level != ObsLevel::Off).then(|| {
        let mut report = obs::merge_bufs(level, workers.iter_mut().map(Worker::take_obs));
        obs::attach_topology(&mut report, &shared.graph);
        report
    });
    // One clock source end to end: the same epoch that timestamps trace
    // events also yields the reported duration, in nanoseconds like the
    // simulator's virtual end_time.
    let sim = SimReport {
        end_time: wall_ns,
        faults_dropped: fault_counts.0,
        faults_duplicated: fault_counts.1,
        faults_reordered: fault_counts.2,
        ..SimReport::default()
    };
    Ok(EngineResult {
        outputs,
        path,
        sim,
        hoist_hits,
        template_hits,
        template_misses,
        template_invalidations,
        decisions,
        data_messages,
        op_stats,
        obs: obs_report,
        snapshots,
        flow: shared.flow.snapshot(),
        mem: shared.mem.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitos_ir::{interpret, InterpConfig};
    use mitos_lang::Value;

    fn check_threads(src: &str, machines: u16, setup: impl Fn(&InMemoryFs)) {
        let func = mitos_ir::compile_str(src).unwrap();
        let ref_fs = InMemoryFs::new();
        setup(&ref_fs);
        let reference = interpret(&func, &ref_fs, InterpConfig::default()).unwrap();
        for round in 0..3 {
            let fs = InMemoryFs::new();
            setup(&fs);
            let r = run_threads(&func, &fs, EngineConfig::default(), machines)
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            assert_eq!(r.outputs, reference.canonical_outputs(), "round {round}");
            assert_eq!(r.path, reference.path, "round {round}");
            assert_eq!(fs.snapshot(), ref_fs.snapshot(), "round {round}");
        }
    }

    #[test]
    fn straight_line_on_threads() {
        check_threads(
            "b = bag(1, 2, 3).map(x => x * 2); output(b.sum(), \"s\");",
            3,
            |_| {},
        );
    }

    #[test]
    fn loops_with_branches_on_threads() {
        check_threads(
            r#"
            evens = 0;
            odds = 0;
            for i = 1 to 9 {
                if (i % 2 == 0) { evens = evens + i; } else { odds = odds + i; }
            }
            output(evens, "e");
            output(odds, "o");
            "#,
            4,
            |_| {},
        );
    }

    #[test]
    fn visit_count_on_threads() {
        check_threads(
            r#"
            yesterday = empty;
            day = 1;
            do {
                visits = readFile("log" + day);
                counts = visits.map(x => (x, 1)).reduceByKey((a, b) => a + b);
                if (day != 1) {
                    diffs = (counts join yesterday).map(t => abs(t[1] - t[2]));
                    writeFile(diffs.sum(), "diff" + day);
                }
                yesterday = counts;
                day = day + 1;
            } while (day <= 4);
            "#,
            3,
            |fs| {
                for d in 1..=4i64 {
                    fs.put(
                        format!("log{d}"),
                        (0..40).map(|i| Value::I64((i * d) % 7)).collect::<Vec<_>>(),
                    );
                }
            },
        );
    }

    #[test]
    fn nested_loops_on_threads() {
        check_threads(
            r#"
            total = 0;
            i = 0;
            while (i < 3) {
                x = bag((1, i), (2, i * 2));
                j = 0;
                while (j < 2) {
                    y = bag((1, j));
                    total = total + (x join y).count();
                    j = j + 1;
                }
                i = i + 1;
            }
            output(total, "t");
            "#,
            2,
            |_| {},
        );
    }

    #[test]
    fn runtime_errors_surface_from_threads() {
        let func = mitos_ir::compile_str("b = readFile(\"nope\"); output(b, \"b\");").unwrap();
        let fs = InMemoryFs::new();
        let err = run_threads(&func, &fs, EngineConfig::default(), 2).unwrap_err();
        assert!(err.message.contains("nope"), "{err}");
    }
}
