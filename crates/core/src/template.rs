//! Execution templates: record/replay of per-step control-plane decisions,
//! after Mashayekhi et al., "Execution Templates: Caching Control Plane
//! Decisions for Strong Scaling of Data Analytics" (USENIX ATC '17),
//! adapted to Mitos's path-based coordination.
//!
//! Every output bag a host starts triggers the same family of per-step
//! control-plane decisions: input-bag selection (Sec. 5.2.3) scans the
//! execution path backward once per input edge, the Φ choice compares every
//! candidate edge, and conditional-output watchers (Sec. 5.2.4) scan
//! forward. In a hot loop those decisions come out identical on every
//! iteration — and the backward scans for producers that occurred long ago
//! (Φ initializers, pre-loop invariants) walk an ever-growing path, so the
//! per-step control-plane cost *grows* with the iteration count.
//!
//! A [`TemplateCache`] (one per host) removes that re-derivation. The first
//! traversal of a basic-block path suffix records its outcomes as a
//! [`Template`]: input selections as *deltas* relative to the path end, the
//! Φ winner, the hoist verdict, and (as they resolve) the conditional-send
//! slices. A repeat traversal that presents the same suffix *replays* the
//! template in O([`WINDOW`]) instead of re-deciding in O(path), and falls
//! back to the slow path on any mismatch.
//!
//! Soundness rests on a window argument. A backward scan that resolved
//! within the last [`WINDOW`] blocks is a pure function of those blocks
//! plus the (static) per-edge rule, so an identical suffix of
//! `WINDOW + 1` blocks forces an identical outcome:
//!
//! * **Non-Φ selection**: `selected = len − delta` with `delta ≤ WINDOW`
//!   means the producer's last occurrence and every later position it was
//!   scanned past all lie inside the suffix. Same suffix ⟹ same scan
//!   result at the same relative offset. A producer whose block lies in
//!   *no* loop gets a stronger rule: such a block occurs at most once per
//!   run, and the execution path is append-only, so its occurrence
//!   position is a run constant — recorded absolutely
//!   ([`SelSlot::Absolute`]), it stays valid at any depth. This keeps
//!   loop-invariant inputs (pre-loop producers, constants) replayable even
//!   though their backward-scan delta grows without bound.
//! * **Φ choice**: only the winner `(input, delta)` is recorded — loser
//!   candidates never contribute values (their selections are `None` on
//!   the slow path too). Any candidate that beat the recorded winner at
//!   replay time would have to occur *after* the winner's occurrence,
//!   inside the shared suffix — contradicting suffix equality. Candidates
//!   whose producers last occurred before the window start strictly lose
//!   to an in-window winner. (Unlike non-Φ selections, a Φ winner is
//!   *never* recorded absolutely: the winner competes against the other
//!   candidates, and an out-of-window winner could be silently overtaken
//!   by another out-of-window candidate without the suffix changing.)
//! * **Conditional sends**: the recorded slice is exactly the path segment
//!   the forward scan consumed, ending with the resolving block. A replay
//!   applies the verdict at the append where the slice completes — the
//!   same append the slow path would have resolved on — and any
//!   divergence inside the slice falls back to [`decide_send`] from the
//!   matched (provably non-resolving) prefix.
//!
//! Decisions that reach further back than the window are only replayed
//! when the key covers the *entire* path ([`Template::full_path`]), where
//! whole-path equality is trivially sufficient.
//!
//! The virtual-time cost model makes the saving visible: the slow path
//! charges [`CostModel::scan_cost`] per path block a selection scan
//! examines, while a replay charges one flat [`CostModel::replay_cost`].
//! Results — outputs, execution paths, data-plane message counts,
//! decision counts, and causal span-tree *shapes* — are bit-identical on
//! and off; only timestamps, end-to-end virtual time, and the
//! hit/miss/invalidation counters differ. That split is exactly what the
//! template-equivalence test battery asserts.
//!
//! [`CostModel::scan_cost`]: crate::cost::CostModel::scan_cost
//! [`CostModel::replay_cost`]: crate::cost::CostModel::replay_cost
//!
//! [`decide_send`]: crate::path::PathRules::decide_send

use mitos_ir::BlockId;
use std::sync::{Arc, OnceLock};

/// Suffix-window size: decisions are replayed from a template only when
/// they resolved within the last `WINDOW` path blocks (or when the key is
/// the whole path). The key stores `WINDOW + 1` blocks — the decisions at
/// a bag start also depend on whether the position itself matches.
pub const WINDOW: usize = 16;

/// Per-host template capacity: a host sees at most a handful of distinct
/// hot suffixes (one per way control flow can arrive at its block), so a
/// small move-to-front list beats a map.
const CAPACITY: usize = 8;

/// `MITOS_TEMPLATES_OFF` kill switch (read once per process), mirroring
/// `MITOS_BATCH_OFF`: disables template record/replay without rebuilding,
/// for A/B overhead and equivalence gates.
pub fn templates_off() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| std::env::var_os("MITOS_TEMPLATES_OFF").is_some())
}

/// One recorded non-Φ input selection: how to reconstruct the selected
/// path-prefix length at replay time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SelSlot {
    /// The producer resolved within the window:
    /// `selected = bag_len − delta`. Replayable from a suffix key only
    /// when `delta ≤ WINDOW`.
    Delta(u32),
    /// The producer's block lies in no loop ([`EdgeRules::once`]), so it
    /// occurs at most once per run and its occurrence position is a run
    /// constant: `selected` is the absolute prefix length, valid for the
    /// rest of the run.
    ///
    /// [`EdgeRules::once`]: crate::path::EdgeRules::once
    Absolute(u32),
}

impl SelSlot {
    /// The selected prefix length for a bag of identifier length `len`.
    pub fn selected(self, len: u32) -> u32 {
        match self {
            SelSlot::Delta(d) => len - d,
            SelSlot::Absolute(l) => l,
        }
    }

    /// Whether this slot may be replayed from a (non-full-path) suffix key.
    fn replayable(self) -> bool {
        match self {
            SelSlot::Delta(d) => d as usize <= WINDOW,
            SelSlot::Absolute(_) => true,
        }
    }
}

/// The recorded input-selection and hoist outcomes of one bag start.
#[derive(Clone, Debug)]
pub struct SelectionRecord {
    /// Φ nodes: the winning input index and its delta (`bag_len − selected`).
    /// `None` for non-Φ operators.
    pub phi_winner: Option<(usize, u32)>,
    /// Non-Φ operators: per-input selection slots, in input order. Empty
    /// for Φ operators and sources.
    pub inputs: Vec<SelSlot>,
    /// Whether the hoist cache was reused at record time. Replay always
    /// recomputes the live O(1) hoist check (kept state is not
    /// path-determined); a disagreement counts as an invalidation and
    /// updates this bit.
    pub hoist_hit: bool,
}

/// Recorded resolution state of one conditional-send watcher (one
/// outgoing non-immediate edge of the templated bag).
#[derive(Clone, Debug)]
pub enum SendStatus {
    /// No traversal has resolved this edge's watcher yet (it can be
    /// filled in by a later traversal that resolves on the slow path).
    Unrecorded,
    /// The resolution is not replayable (scan longer than [`WINDOW`], or
    /// resolved by program exit rather than by a block) — this edge
    /// always takes the slow path.
    Poisoned,
    /// The watcher resolved by scanning exactly `slice` (the path segment
    /// from the bag's start, ending with the resolving block): replay
    /// applies `sent` at the append where the slice completes.
    Recorded {
        /// Path segment `path[bag_len..resolution]` consumed by the scan.
        slice: Arc<[BlockId]>,
        /// `true` = send, `false` = drop.
        sent: bool,
    },
}

/// One cached traversal: the control-plane decisions of a bag started at a
/// path position whose suffix matched `key`.
#[derive(Clone, Debug)]
pub struct Template {
    /// Stable identity within the owning cache (the move-to-front list
    /// reorders, so send fill-ins address templates by id).
    pub id: u64,
    /// The path suffix (last `min(WINDOW + 1, len)` blocks of the prefix
    /// ending at the bag's position) this template was recorded under.
    pub key: Arc<[BlockId]>,
    /// Whether `key` is the *entire* path prefix. Full-path templates may
    /// carry deltas beyond [`WINDOW`] (whole-path equality makes every
    /// decision replayable), but they only match a path of exactly the
    /// key's length.
    pub full_path: bool,
    /// Recorded selection and hoist outcomes.
    pub selection: SelectionRecord,
    /// Per-outgoing-edge conditional-send resolutions, in out-edge order.
    pub sends: Vec<SendStatus>,
}

/// A replay hint attached to a live conditional-send watcher: the recorded
/// slice is verified incrementally as the path grows; on full match the
/// recorded verdict applies, on divergence the watcher falls back to the
/// slow path from the matched prefix.
#[derive(Clone, Debug)]
pub struct SendHint {
    /// The recorded scan segment (non-empty; last block resolves).
    pub slice: Arc<[BlockId]>,
    /// The recorded verdict (`true` = send).
    pub sent: bool,
    /// Number of leading slice blocks already verified against the path
    /// (all provably non-resolving).
    pub verified: u32,
}

/// Outcome of one incremental hint-verification step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HintStep {
    /// The slice matched completely: apply the recorded verdict; `next` is
    /// the cursor past the resolving block (same value the slow path's
    /// scan would return).
    Resolved {
        /// The recorded verdict (`true` = send).
        sent: bool,
        /// Cursor past the resolving block.
        next: u32,
    },
    /// The visible path still matches a proper prefix of the slice; keep
    /// watching. `cursor` is the first unverified position.
    Pending {
        /// First unverified path position.
        cursor: u32,
    },
    /// The path diverged from the slice (or exited before completing it):
    /// re-decide from `cursor` — every earlier position was verified
    /// non-resolving, so the slow path resumes exactly where it would be.
    Mismatch {
        /// Position to resume the slow-path scan from.
        cursor: u32,
    },
}

impl SendHint {
    /// Verifies as much of the slice as the path currently shows.
    pub fn advance(&mut self, path_blocks: &[BlockId], exited: bool, bag_len: u32) -> HintStep {
        let n = self.slice.len() as u32;
        debug_assert!(n > 0, "send slices always contain the resolving block");
        loop {
            let k = self.verified;
            let idx = bag_len + k;
            if idx as usize >= path_blocks.len() {
                // Slow path resolves an exhausted scan only at exit (as a
                // drop) — the recorded resolution can no longer happen.
                return if exited {
                    HintStep::Mismatch { cursor: idx }
                } else {
                    HintStep::Pending { cursor: idx }
                };
            }
            if path_blocks[idx as usize] != self.slice[k as usize] {
                return HintStep::Mismatch { cursor: idx };
            }
            if k + 1 == n {
                return HintStep::Resolved {
                    sent: self.sent,
                    next: idx + 1,
                };
            }
            self.verified = k + 1;
        }
    }
}

/// Per-host cache of recorded traversals, with deterministic hit/miss/
/// invalidation counters (bag starts follow path order on both drivers,
/// so the counters are bit-identical across runs and drivers).
#[derive(Debug, Default)]
pub struct TemplateCache {
    templates: Vec<Template>,
    next_id: u64,
    /// Bag starts whose selection decisions were replayed from a template.
    pub hits: u64,
    /// Bag starts with no matching template (the traversal is recorded,
    /// when replayable).
    pub misses: u64,
    /// Replay fallbacks: send-hint divergences and hoist-verdict
    /// disagreements (the live result always wins).
    pub invalidations: u64,
}

impl TemplateCache {
    /// An empty cache.
    pub fn new() -> TemplateCache {
        TemplateCache::default()
    }

    /// The key a bag started at prefix length `len` would be cached under:
    /// the last `min(WINDOW + 1, len)` blocks.
    fn suffix(path_blocks: &[BlockId], len: usize) -> &[BlockId] {
        let k = (WINDOW + 1).min(len);
        &path_blocks[len - k..len]
    }

    /// Looks up the template for a bag starting at prefix length `len`,
    /// counting a hit (and moving the template to the front) or a miss.
    pub fn lookup(&mut self, path_blocks: &[BlockId], len: u32) -> Option<&Template> {
        let len = len as usize;
        let suffix = Self::suffix(path_blocks, len);
        let found = self
            .templates
            .iter()
            .position(|t| (!t.full_path || t.key.len() == len) && *t.key == *suffix);
        match found {
            Some(i) => {
                self.hits += 1;
                let t = self.templates.remove(i);
                self.templates.insert(0, t);
                Some(&self.templates[0])
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a slow-path traversal, returning the new template's id —
    /// or `None` when the decisions are not replayable (a
    /// [`SelSlot::Delta`] or Φ-winner delta beyond [`WINDOW`] without
    /// whole-path coverage), in which case nothing is cached and the
    /// suffix stays a miss.
    pub fn record(
        &mut self,
        path_blocks: &[BlockId],
        len: u32,
        selection: SelectionRecord,
        n_out_edges: usize,
    ) -> Option<u64> {
        let len = len as usize;
        let key = Self::suffix(path_blocks, len);
        let full_path = key.len() == len;
        if !full_path {
            let replayable = selection.inputs.iter().all(|s| s.replayable())
                && selection
                    .phi_winner
                    .is_none_or(|(_, d)| d as usize <= WINDOW);
            if !replayable {
                return None;
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        if self.templates.len() == CAPACITY {
            self.templates.pop();
        }
        self.templates.insert(
            0,
            Template {
                id,
                key: key.into(),
                full_path,
                selection,
                sends: vec![SendStatus::Unrecorded; n_out_edges],
            },
        );
        Some(id)
    }

    /// Fills in a conditional-send resolution observed on the slow path.
    /// Only [`SendStatus::Unrecorded`] entries are filled: a recorded or
    /// poisoned entry keeps its (majority-case) state even when a
    /// concurrent in-flight bag resolved differently.
    pub fn fill_send(&mut self, id: u64, edge_idx: usize, status: SendStatus) {
        if let Some(t) = self.templates.iter_mut().find(|t| t.id == id) {
            if matches!(t.sends[edge_idx], SendStatus::Unrecorded) {
                t.sends[edge_idx] = status;
            }
        }
    }

    /// Reconciles the recorded hoist verdict with the live recomputation
    /// on a replayed traversal: a disagreement counts as an invalidation
    /// (returned as `true`) and the stored bit follows the live result.
    pub fn note_hoist(&mut self, id: u64, live: bool) -> bool {
        if let Some(t) = self.templates.iter_mut().find(|t| t.id == id) {
            if t.selection.hoist_hit != live {
                self.invalidations += 1;
                t.selection.hoist_hit = live;
                return true;
            }
        }
        false
    }

    /// The fraction of bag starts served by replay (`hits / lookups`), or
    /// 0 when no lookup happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(deltas: &[u32]) -> SelectionRecord {
        SelectionRecord {
            phi_winner: None,
            inputs: deltas.iter().map(|&d| SelSlot::Delta(d)).collect(),
            hoist_hit: false,
        }
    }

    fn phi(winner: usize, delta: u32) -> SelectionRecord {
        SelectionRecord {
            phi_winner: Some((winner, delta)),
            inputs: Vec::new(),
            hoist_hit: false,
        }
    }

    /// A path of `n` blocks cycling 1,2,3,1,2,3,… after an entry block 0.
    fn loopy_path(n: usize) -> Vec<BlockId> {
        (0..n)
            .map(|i| {
                if i == 0 {
                    0
                } else {
                    (1 + (i - 1) % 3) as BlockId
                }
            })
            .collect()
    }

    #[test]
    fn same_suffix_hits_changed_suffix_misses() {
        let mut c = TemplateCache::new();
        let p = loopy_path(40);
        assert!(c.lookup(&p, 40).is_none(), "empty cache misses");
        c.record(&p, 40, sel(&[1, 3]), 0).unwrap();
        // Same cyclic suffix three iterations later (37 ≡ 40 mod 3).
        let longer = loopy_path(49);
        let hit = c.lookup(&longer, 49).expect("same suffix must hit");
        assert_eq!(
            hit.selection.inputs,
            vec![SelSlot::Delta(1), SelSlot::Delta(3)]
        );
        // One block off the cycle → different suffix → miss.
        let mut changed = loopy_path(49);
        changed[45] = 9;
        assert!(c.lookup(&changed, 49).is_none(), "changed suffix must miss");
        assert_eq!((c.hits, c.misses), (1, 2));
    }

    #[test]
    fn full_path_templates_match_only_the_whole_path() {
        let mut c = TemplateCache::new();
        // A path of exactly WINDOW + 1 blocks: the key is simultaneously a
        // maximal suffix *and* the whole path, so `full_path` is the only
        // thing preventing replay against a longer path with an equal
        // suffix (where the recorded deltas could reach past the window).
        let p = loopy_path(WINDOW + 1);
        let id = c
            .record(&p, (WINDOW + 1) as u32, sel(&[WINDOW as u32]), 0)
            .unwrap();
        assert!(c.templates.iter().any(|t| t.id == id && t.full_path));
        assert!(
            c.lookup(&p, (WINDOW + 1) as u32).is_some(),
            "identical whole path hits"
        );
        let mut longer: Vec<BlockId> = vec![5, 6, 7];
        longer.extend_from_slice(&p);
        assert!(
            c.lookup(&longer, longer.len() as u32).is_none(),
            "a full-path template must not replay against a mere suffix match"
        );
    }

    #[test]
    fn deep_deltas_are_rejected_unless_full_path() {
        let mut c = TemplateCache::new();
        let p = loopy_path(40);
        // A delta reaching past the window is not replayable from a
        // suffix key: nothing is cached.
        assert!(c.record(&p, 40, sel(&[WINDOW as u32 + 1]), 0).is_none());
        assert!(c.record(&p, 40, phi(0, WINDOW as u32 + 5), 0).is_none());
        assert!(c.templates.is_empty());
        // The same delta is fine when the key covers the whole path.
        let short = loopy_path(10);
        assert!(c.record(&short, 10, sel(&[9]), 0).is_some());
        // Boundary: delta == WINDOW is replayable from a suffix key.
        assert!(c.record(&p, 40, sel(&[WINDOW as u32]), 0).is_some());
    }

    #[test]
    fn absolute_slots_replay_at_any_depth() {
        let mut c = TemplateCache::new();
        let p = loopy_path(40);
        // A loop-invariant input (producer block occurs once, at prefix
        // length 1) is replayable from a suffix key no matter how deep.
        let record = SelectionRecord {
            phi_winner: None,
            inputs: vec![SelSlot::Delta(0), SelSlot::Absolute(1)],
            hoist_hit: false,
        };
        c.record(&p, 40, record, 0).expect("absolute slots replay");
        let longer = loopy_path(55); // 55 ≡ 40 (mod 3): same cyclic suffix
        let t = c.lookup(&longer, 55).expect("same suffix must hit");
        assert_eq!(t.selection.inputs[0].selected(55), 55);
        assert_eq!(t.selection.inputs[1].selected(55), 1, "run constant");
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = TemplateCache::new();
        for i in 0..=CAPACITY {
            // Distinct single-block full-path keys.
            c.record(&[100 + i as BlockId], 1, sel(&[]), 0).unwrap();
        }
        assert_eq!(c.templates.len(), CAPACITY);
        assert!(
            c.lookup(&[100], 1).is_none(),
            "oldest template must have been evicted"
        );
        assert!(c.lookup(&[100 + CAPACITY as BlockId], 1).is_some());
    }

    #[test]
    fn send_fill_in_keeps_first_recording() {
        let mut c = TemplateCache::new();
        let p = loopy_path(40);
        let id = c.record(&p, 40, sel(&[1]), 2).unwrap();
        let first: Arc<[BlockId]> = vec![2, 3].into();
        c.fill_send(
            id,
            0,
            SendStatus::Recorded {
                slice: first.clone(),
                sent: true,
            },
        );
        // A concurrent in-flight bag resolving differently must not
        // overwrite the recorded slice.
        c.fill_send(
            id,
            0,
            SendStatus::Recorded {
                slice: vec![9].into(),
                sent: false,
            },
        );
        let t = c.templates.iter().find(|t| t.id == id).unwrap();
        match &t.sends[0] {
            SendStatus::Recorded { slice, sent } => {
                assert_eq!(&**slice, &*first);
                assert!(*sent);
            }
            other => panic!("expected first recording kept, got {other:?}"),
        }
        assert!(matches!(t.sends[1], SendStatus::Unrecorded));
        c.fill_send(id, 1, SendStatus::Poisoned);
        let t = c.templates.iter().find(|t| t.id == id).unwrap();
        assert!(matches!(t.sends[1], SendStatus::Poisoned));
    }

    #[test]
    fn hint_resolves_at_the_same_append_as_the_slow_path() {
        let mut h = SendHint {
            slice: vec![2, 3, 5].into(),
            sent: true,
            verified: 0,
        };
        let bag_len = 4;
        // Path too short: pending at the first unverified position.
        assert_eq!(
            h.advance(&[0, 1, 2, 3], false, bag_len),
            HintStep::Pending { cursor: 4 }
        );
        // Two of three blocks visible: still pending, prefix verified.
        assert_eq!(
            h.advance(&[0, 1, 2, 3, 2, 3], false, bag_len),
            HintStep::Pending { cursor: 6 }
        );
        assert_eq!(h.verified, 2);
        // The resolving block appears: verdict applies, cursor past it.
        assert_eq!(
            h.advance(&[0, 1, 2, 3, 2, 3, 5], false, bag_len),
            HintStep::Resolved {
                sent: true,
                next: 7
            }
        );
    }

    #[test]
    fn hint_diverging_or_exiting_falls_back() {
        let mut h = SendHint {
            slice: vec![2, 3, 5].into(),
            sent: true,
            verified: 0,
        };
        // The path diverges inside the slice: resume the slow scan at the
        // diverging position (earlier ones verified non-resolving).
        assert_eq!(
            h.advance(&[0, 1, 2, 3, 2, 9], false, 4),
            HintStep::Mismatch { cursor: 5 }
        );
        let mut h2 = SendHint {
            slice: vec![2, 3, 5].into(),
            sent: true,
            verified: 0,
        };
        // The program exits before the slice completes: the recorded
        // resolution can never happen.
        assert_eq!(
            h2.advance(&[0, 1, 2, 3, 2], true, 4),
            HintStep::Mismatch { cursor: 5 }
        );
    }

    #[test]
    fn hit_rate_is_hits_over_lookups() {
        let mut c = TemplateCache::new();
        assert_eq!(c.hit_rate(), 0.0);
        let p = loopy_path(40);
        c.lookup(&p, 40); // miss
        c.record(&p, 40, sel(&[1]), 0).unwrap();
        for n in [43, 46, 49] {
            let q = loopy_path(n);
            assert!(c.lookup(&q, n as u32).is_some());
        }
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
    }
}
