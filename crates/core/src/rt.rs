//! Shared runtime types: messages, configuration, and the transport
//! abstraction that lets the same worker state machines run on the
//! discrete-event simulator and on real threads.

use crate::cost::CostModel;
use crate::graph::{EdgeId, LogicalGraph};
use crate::obs::ObsLevel;
use crate::path::PathRules;
use mitos_fs::InMemoryFs;
use mitos_ir::BlockId;
use mitos_lang::{Batch, Value};
use std::fmt;
use std::sync::Arc;

pub use mitos_sim::{FaultPlan, Partition, PauseWindow, Verdict};

/// Engine feature switches and cost model.
///
/// The struct is `#[non_exhaustive]`: out-of-crate code constructs it with
/// [`EngineConfig::new`] (or `default()`) and the chainable `with_*`
/// setters, so adding a switch is not a breaking change.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Loop pipelining (Sec. 5.2): operators start an iteration's bags as
    /// soon as the path reaches their block. With `false`, a per-position
    /// barrier emulates superstep execution (Flink-style, Fig. 9's
    /// "Mitos (not pipelined)").
    pub pipelined: bool,
    /// Loop-invariant hoisting (Sec. 5.3): binary operators keep the state
    /// built for an input whose bag is unchanged between output bags.
    pub hoisting: bool,
    /// Operator chain fusion in the physical planner (see
    /// [`crate::fuse`]): maximal linear chains of narrow per-element
    /// operators collapse into one fused node, eliminating the per-edge
    /// data/punctuation traffic between them.
    pub fusion: bool,
    /// Execution templates (Mashayekhi et al., OSDI '17, adapted): each
    /// host caches the control-plane decisions of the first traversal of a
    /// basic-block path suffix (input-bag selections, conditional-send
    /// verdicts, hoist outcomes) and replays them on repeat traversals,
    /// validating the cached key and falling back to the slow path on any
    /// mismatch (see [`crate::template`]). Replay charges no virtual time
    /// and emits the same events, so results are bit-identical either way;
    /// only wall-clock cost and the hit/miss counters differ.
    pub templates: bool,
    /// Cost model for CPU/IO charging.
    pub cost: CostModel,
    /// Extra virtual ns charged by the barrier per released position —
    /// models Flink's per-superstep overhead (FLINK-3322) when this engine
    /// emulates Flink's native iterations. Zero for Mitos.
    pub extra_step_overhead_ns: u64,
    /// Abort with an error once the execution path exceeds this many basic
    /// blocks (a runaway/non-terminating loop guard).
    pub max_path_len: u32,
    /// Observability level: [`ObsLevel::Off`] (default, near-zero cost),
    /// [`ObsLevel::Metrics`] (counters only), or [`ObsLevel::Trace`]
    /// (counters plus the timestamped event stream). Recording charges no
    /// virtual time, so simulated results are identical at every level.
    pub obs: ObsLevel,
    /// Live-telemetry sampling interval in nanoseconds (0 = no sampling).
    /// The simulator samples at exact virtual-time multiples (charging
    /// zero virtual time, so snapshots are deterministic and free); the
    /// thread driver samples on wall-clock from its monitor loop. The
    /// [`crate::obs::live::TelemetryHub`] itself is always on regardless.
    pub sample_interval_ns: u64,
    /// Stall watchdog deadline in nanoseconds (0 = disabled; thread driver
    /// only). If no worker makes progress for this long, the run aborts
    /// with a [`RuntimeError`] carrying a structured
    /// [`crate::obs::watchdog::StallReport`]. The simulator needs no timer:
    /// a stall there manifests as quiescence-without-exit, which is
    /// diagnosed the same way.
    pub stall_deadline_ns: u64,
    /// Deterministic fault injection (see [`FaultPlan`]): seeded per-link
    /// drop/duplication/reordering, timed partitions, machine pauses and
    /// slowdowns, plus the decision-withholding switch. The default plan is
    /// inert and charges nothing; with network faults active the Mitos
    /// drivers run a sequence-numbered at-least-once delivery protocol
    /// (see [`crate::relay`]) unless [`FaultPlan::retransmit`] is off.
    pub faults: FaultPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pipelined: true,
            hoisting: true,
            fusion: true,
            templates: true,
            cost: CostModel::default(),
            extra_step_overhead_ns: 0,
            max_path_len: 10_000_000,
            obs: ObsLevel::Off,
            sample_interval_ns: 0,
            stall_deadline_ns: 0,
            faults: FaultPlan::default(),
        }
    }
}

impl EngineConfig {
    /// The default configuration (all optimizations on, observability off).
    pub fn new() -> EngineConfig {
        EngineConfig::default()
    }

    /// Sets loop pipelining.
    pub fn with_pipelining(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Sets loop-invariant hoisting.
    pub fn with_hoisting(mut self, on: bool) -> Self {
        self.hoisting = on;
        self
    }

    /// Sets operator chain fusion.
    pub fn with_fusion(mut self, on: bool) -> Self {
        self.fusion = on;
        self
    }

    /// Sets control-plane execution templates (record/replay of per-step
    /// selection decisions; see [`crate::template`]).
    pub fn with_templates(mut self, on: bool) -> Self {
        self.templates = on;
        self
    }

    /// Sets the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the maximum elements per data-plane batch, clamped to at
    /// least one, without replacing the rest of the cost model — the
    /// tuning knob callers previously reached into
    /// `config.cost.batch_elems` for.
    pub fn with_batch_elems(mut self, elems: usize) -> Self {
        self.cost.batch_elems = elems.max(1);
        self
    }

    /// Sets the per-superstep barrier overhead (Flink emulation).
    pub fn with_extra_step_overhead_ns(mut self, ns: u64) -> Self {
        self.extra_step_overhead_ns = ns;
        self
    }

    /// Sets the runaway-loop path-length guard.
    pub fn with_max_path_len(mut self, len: u32) -> Self {
        self.max_path_len = len;
        self
    }

    /// Sets the observability level.
    pub fn with_obs(mut self, obs: ObsLevel) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the live-telemetry sampling interval (0 = off).
    pub fn with_sample_interval_ns(mut self, ns: u64) -> Self {
        self.sample_interval_ns = ns;
        self
    }

    /// Sets the stall watchdog deadline (0 = off).
    pub fn with_stall_deadline_ns(mut self, ns: u64) -> Self {
        self.stall_deadline_ns = ns;
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the decision-withholding fault injection (tests only).
    #[deprecated(
        since = "0.5.0",
        note = "folded into FaultPlan; use with_faults(FaultPlan::new().with_withhold_decisions(..))"
    )]
    pub fn with_fault_withhold_decisions(mut self, on: bool) -> Self {
        self.faults.withhold_decisions = on;
        self
    }

    /// A stable 64-bit digest of the full configuration (FNV-1a over the
    /// `Debug` rendering). Stamped into bench reports so
    /// `scripts/bench_compare.sh` can warn when two reports were produced
    /// under different engine configurations.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }
}

/// Nanoseconds per millisecond: the runtime keeps **all** durations in
/// nanoseconds (virtual time under the simulator, monotonic wall-clock
/// under the threaded driver); reports divide by this exactly once, in
/// [`crate::engine::EngineResult::millis`].
pub const NS_PER_MS: u64 = 1_000_000;

/// Immutable state shared by all workers of one job.
pub struct EngineShared {
    /// The dataflow job.
    pub graph: LogicalGraph,
    /// Precomputed coordination rules.
    pub rules: PathRules,
    /// Feature switches and costs.
    pub config: EngineConfig,
    /// The distributed file system.
    pub fs: InMemoryFs,
    /// Cluster size.
    pub machines: u16,
    /// Always-on live telemetry counters (relaxed atomics), shared by all
    /// workers and sampled by the drivers into
    /// [`crate::obs::live::Snapshot`]s.
    pub telemetry: crate::obs::live::TelemetryHub,
    /// Always-on per-worker flight recorder (fixed-size lock-free rings,
    /// active even at [`ObsLevel::Off`]); its last events are dumped into
    /// stall reports and fault post-mortems.
    pub flight: crate::obs::recorder::FlightRecorder,
    /// Always-on per-edge data-plane flow accounting (relaxed-atomic
    /// sharded counters for elements/messages/bytes/retransmissions plus
    /// queue-depth and backpressure watermarks); snapshotted into
    /// [`crate::obs::flow::FlowReport`] at join.
    pub flow: crate::obs::flow::FlowRegistry,
    /// Always-on per-machine, per-retention-class memory/state residency
    /// accounting (relaxed-atomic sharded gauges charged at bag
    /// append/compute and credited at Release/GC, with high-water marks);
    /// snapshotted into [`crate::obs::mem::MemReport`] at join.
    pub mem: crate::obs::mem::MemRegistry,
}

/// Messages exchanged between workers (one worker actor per machine).
#[derive(Clone, Debug)]
pub enum Msg {
    /// Bootstraps a worker: initializes the path with the entry block.
    Start,
    /// A control-flow decision: `path[index] = block` (Sec. 5.2.1),
    /// broadcast by the deciding condition node's control-flow manager.
    Decision {
        /// Path position being decided.
        index: u32,
        /// The chosen basic block.
        block: BlockId,
        /// Wire-carried trace context: the decider's step id and Decide
        /// span id, so receivers can tie their receipt spans back to the
        /// broadcasting span (see [`crate::obs::span`]). Deterministic —
        /// derived from protocol coordinates, never a clock.
        ctx: crate::obs::span::SpanCtx,
    },
    /// A batch of bag elements on a physical edge, carried in the typed
    /// columnar [`Batch`] container (see [`mitos_lang::batch`]); the wire
    /// cost charged for this message is the batch's actual length-delimited
    /// encoded size, not a per-element estimate.
    Data {
        /// Logical edge.
        edge: EdgeId,
        /// Destination instance.
        dst_inst: u16,
        /// Bag identifier length (the producer is implied by the edge).
        bag_len: u32,
        /// The elements, in columnar runs.
        batch: Batch,
    },
    /// End-of-bag punctuation from one sender instance, with the number of
    /// elements that sender shipped on this physical edge for this bag.
    BagDone {
        /// Logical edge.
        edge: EdgeId,
        /// Destination instance.
        dst_inst: u16,
        /// Bag identifier length.
        bag_len: u32,
        /// Elements sent by this sender on this physical edge.
        count: u32,
    },
    /// Non-pipelined mode: an instance finished its bag at a path position.
    BagComputed {
        /// The path position.
        pos: u32,
    },
    /// Non-pipelined mode: all bags at positions `<= pos` are complete;
    /// positions up to `pos + 1` may start.
    Release {
        /// The barrier frontier.
        pos: u32,
    },
    /// A simulated disk read completed for the given operator's host on
    /// this machine (file reads overlap with CPU, which is what loop
    /// pipelining exploits).
    IoDone {
        /// The operator whose read finished.
        op: crate::graph::OpId,
    },
    /// At-least-once delivery envelope (fault-injection runs only): a
    /// sequence-numbered wrapper the sender retransmits until the receiver
    /// acknowledges it. The receiver dedups by `(src, seq)` and always
    /// re-acks, so duplicates and retransmissions are invisible to the
    /// wrapped payload's handler (see [`crate::relay`]).
    Reliable {
        /// The sending machine (where acks go).
        src: u16,
        /// Per-link sequence number assigned by the sender.
        seq: u64,
        /// The guarded payload.
        payload: Box<Msg>,
    },
    /// Acknowledges [`Msg::Reliable`]`{seq}`; `peer` is the acknowledging
    /// machine.
    Ack {
        /// The machine that received and acknowledged the envelope.
        peer: u16,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Self-addressed retransmission timer: re-send everything still
    /// unacknowledged toward `peer`, with exponential backoff.
    RetryTick {
        /// The destination machine whose unacked traffic is due.
        peer: u16,
    },
}

/// Transport used by workers; implemented over the simulator and over
/// crossbeam channels.
pub trait Net {
    /// Sends a message to the worker on `machine`; `bytes` is the payload
    /// size for bandwidth accounting.
    fn send(&mut self, machine: u16, msg: Msg, bytes: u64);
    /// Charges CPU time on the current machine (no-op on real threads).
    fn charge(&mut self, ns: u64);
    /// Delivers `msg` to `machine` after `delay_ns` of virtual time without
    /// occupying the CPU (models asynchronous disk I/O).
    fn schedule(&mut self, delay_ns: u64, machine: u16, msg: Msg);
    /// The current time in nanoseconds, used to timestamp trace events:
    /// virtual time on the simulator, monotonic wall-clock since engine
    /// start on real threads. Only consulted when tracing is enabled.
    fn now_ns(&mut self) -> u64;
    /// Delivers `msg` to `machine` after `delay_ns` as a **local timer**:
    /// exempt from network fault injection, used by the relay's
    /// retransmission backoff. Defaults to [`Net::schedule`]; drivers whose
    /// `schedule` ignores the delay (the thread driver delivers scheduled
    /// messages immediately) override it with a real timer.
    fn timer(&mut self, delay_ns: u64, machine: u16, msg: Msg) {
        self.schedule(delay_ns, machine, msg);
    }
}

/// A fatal runtime error (lambda failures, protocol violations).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RuntimeError {
    /// Description.
    pub message: String,
    /// Structured stall diagnosis, present when the error came from the
    /// stall watchdog or a deadlock (see [`crate::obs::watchdog`]).
    pub stall: Option<Box<crate::obs::watchdog::StallReport>>,
}

impl RuntimeError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> RuntimeError {
        RuntimeError {
            message: message.into(),
            stall: None,
        }
    }

    /// Creates a stall error: `reason`, the rendered diagnosis appended to
    /// the message, and the structured report attached.
    pub fn stalled(reason: impl Into<String>, report: crate::obs::watchdog::StallReport) -> Self {
        RuntimeError {
            message: format!("{}\n{}", reason.into(), report.render()),
            stall: Some(Box::new(report)),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// Legacy estimated wire size of a batch of values: a fixed 16-byte header
/// plus per-element [`Value::estimated_bytes`]. Retained as the byte
/// accounting used when the columnar encoding is disabled via the
/// `MITOS_BATCH_OFF` kill switch (see [`mitos_lang::batch::batch_off`]);
/// normal runs charge [`Batch::encoded_len`] instead.
pub fn batch_bytes(elems: &[Value]) -> u64 {
    16 + elems.iter().map(Value::estimated_bytes).sum::<u64>()
}

/// Wire size charged for a data batch: the actual length-delimited encoded
/// size, or the legacy [`batch_bytes`] estimate when `MITOS_BATCH_OFF` is
/// set (so A/B runs can isolate the encoding's effect).
pub fn batch_wire_bytes(batch: &Batch) -> u64 {
    if mitos_lang::batch::batch_off() {
        16 + batch.estimated_bytes()
    } else {
        batch.encoded_len() as u64
    }
}

/// The file-name prefix under which `output(value, tag)` sinks collect
/// results in the shared file system.
pub const OUTPUT_PREFIX: &str = "out://";

/// Convenience alias used across the runtime.
pub type Shared = Arc<EngineShared>;
