//! The Mitos engine entry points: compile a program, build the single
//! cyclic dataflow job, and execute it on the simulated cluster.

use crate::graph::LogicalGraph;
use crate::obs::{self, ObsLevel, ObsReport};
use crate::path::PathRules;
use crate::rt::{EngineConfig, EngineShared, Msg, Net, RuntimeError, NS_PER_MS, OUTPUT_PREFIX};
use crate::worker::Worker;
use mitos_fs::InMemoryFs;
use mitos_ir::nir::FuncIr;
use mitos_ir::BlockId;
use mitos_lang::Value;
use mitos_sim::{ActorId, Sim, SimConfig, SimCtx, SimReport, World};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-operator runtime statistics (an EXPLAIN-style summary).
#[derive(Clone, Debug)]
pub struct OpStats {
    /// Operator id.
    pub op: crate::graph::OpId,
    /// SSA variable name the operator defines.
    pub name: std::sync::Arc<str>,
    /// Operator kind label — the mnemonic, or joined stage mnemonics for a
    /// fused chain (`map+filter+flatMap`).
    pub kind: String,
    /// Physical instances.
    pub instances: u16,
    /// Total elements emitted across instances.
    pub emitted: u64,
    /// Loop-invariant hoisting reuse hits across instances.
    pub hoist_hits: u64,
}

/// The observable outcome of an engine run.
#[derive(Clone, Debug)]
pub struct EngineResult {
    /// `output(value, tag)` collections (canonically sorted).
    pub outputs: BTreeMap<String, Vec<Value>>,
    /// The execution path reconstructed by machine 0's control-flow
    /// manager.
    pub path: Vec<BlockId>,
    /// Simulator statistics; `sim.end_time` is the job's virtual makespan.
    pub sim: SimReport,
    /// Loop-invariant hoisting reuse hits across all operators.
    pub hoist_hits: u64,
    /// Execution-template replay hits across all hosts (bag starts whose
    /// control-plane decisions were replayed from a cached traversal; see
    /// [`crate::template`]). Deterministic on the simulator: bit-identical
    /// across runs and drivers.
    pub template_hits: u64,
    /// Execution-template misses (bag starts that took the slow path).
    pub template_misses: u64,
    /// Execution-template invalidations (replay fallbacks: send-hint
    /// divergence or hoist-verdict mismatch).
    pub template_invalidations: u64,
    /// Control-flow decisions broadcast.
    pub decisions: u64,
    /// Data-plane messages delivered (bag payloads and bag-completion
    /// markers), excluding the control plane — the traffic operator chain
    /// fusion removes.
    pub data_messages: u64,
    /// Per-operator statistics.
    pub op_stats: Vec<OpStats>,
    /// Merged observability report ([`None`] when the run's
    /// [`EngineConfig::obs`] level was [`ObsLevel::Off`]).
    pub obs: Option<ObsReport>,
    /// Periodic live-telemetry snapshots (empty unless the run's
    /// [`EngineConfig::sample_interval_ns`] was non-zero). Under the
    /// simulator these are taken at exact virtual-time multiples of the
    /// interval and charge zero virtual time, so they are deterministic.
    pub snapshots: Vec<crate::obs::live::Snapshot>,
    /// Always-on per-edge data-plane flow accounting (elements, messages,
    /// serialized/wire/retransmitted bytes, relay-window watermarks,
    /// queue-depth and backpressure samples), snapshotted at join. All
    /// zeros (with `enabled: false`) when `MITOS_FLOW_OFF` is set.
    pub flow: crate::obs::flow::FlowReport,
    /// Always-on per-machine, per-retention-class memory/state residency
    /// accounting (live bags, elements, approximate bytes, high-water
    /// marks), snapshotted at join. All zeros (with `enabled: false`) when
    /// `MITOS_MEM_OFF` is set.
    pub mem: crate::obs::mem::MemReport,
}

impl EngineResult {
    /// The execution time in milliseconds. `sim.end_time` is nanoseconds —
    /// virtual time under the simulator, monotonic wall-clock under the
    /// threaded driver — converted here via [`NS_PER_MS`], the single
    /// ns→ms conversion point.
    pub fn millis(&self) -> f64 {
        self.sim.end_time as f64 / NS_PER_MS as f64
    }

    /// The fraction of bag starts served by execution-template replay
    /// (`hits / (hits + misses)`), or 0 when templates never looked up
    /// (disabled, or no bag ever started).
    pub fn template_hit_rate(&self) -> f64 {
        let total = self.template_hits + self.template_misses;
        if total == 0 {
            0.0
        } else {
            self.template_hits as f64 / total as f64
        }
    }
}

struct MitosWorld {
    workers: Vec<Worker>,
}

struct SimNet<'a, 'b> {
    ctx: &'a mut SimCtx<'b, Msg>,
}

impl Net for SimNet<'_, '_> {
    fn send(&mut self, machine: u16, msg: Msg, bytes: u64) {
        self.ctx.send(ActorId::new(machine, 0), msg, bytes);
    }
    fn charge(&mut self, ns: u64) {
        self.ctx.charge(ns);
    }
    fn schedule(&mut self, delay_ns: u64, machine: u16, msg: Msg) {
        self.ctx.schedule(delay_ns, ActorId::new(machine, 0), msg);
    }
    fn now_ns(&mut self) -> u64 {
        self.ctx.now()
    }
}

impl World for MitosWorld {
    type Msg = Msg;
    fn handle(&mut self, dest: ActorId, msg: Msg, ctx: &mut SimCtx<Msg>) {
        let mut net = SimNet { ctx };
        self.workers[dest.machine as usize].handle(msg, &mut net);
    }
}

/// Extracts (and removes) `output(..)` collections from the file system.
pub fn extract_outputs(fs: &InMemoryFs) -> BTreeMap<String, Vec<Value>> {
    let mut outputs = BTreeMap::new();
    for name in fs.list() {
        if let Some(tag) = name.strip_prefix(OUTPUT_PREFIX) {
            let mut elems = fs.read(&name).expect("listed file exists");
            elems.sort_unstable();
            outputs.insert(tag.to_string(), elems);
            fs.remove(&name);
        }
    }
    outputs
}

/// Runs a compiled SSA program as a single Mitos dataflow job on the
/// simulated cluster. File effects land in `fs`; `output(..)` collections
/// are extracted into the result.
pub fn run_sim(
    func: &FuncIr,
    fs: &InMemoryFs,
    engine: EngineConfig,
    cluster: SimConfig,
) -> Result<EngineResult, RuntimeError> {
    run_sim_live(func, fs, engine, cluster, &mut |_| {})
}

/// Like [`run_sim`], additionally invoking `on_snapshot` for every live
/// telemetry [`crate::obs::live::Snapshot`] when
/// [`EngineConfig::sample_interval_ns`] is non-zero. Snapshots are taken
/// at exact virtual-time multiples of the interval **between** events and
/// charge zero virtual time, so the simulated result is bit-identical
/// with sampling on or off and snapshot sequences are deterministic. A
/// runtime deadlock (quiescence without program exit, e.g. a lost
/// condition broadcast) is diagnosed via [`crate::obs::watchdog`] and the
/// returned error carries the structured [`crate::obs::watchdog::StallReport`].
pub fn run_sim_live(
    func: &FuncIr,
    fs: &InMemoryFs,
    engine: EngineConfig,
    cluster: SimConfig,
    on_snapshot: &mut dyn FnMut(&crate::obs::live::Snapshot),
) -> Result<EngineResult, RuntimeError> {
    let graph =
        crate::fuse::planned_graph(func, &engine).map_err(|e| RuntimeError::new(e.message))?;
    let rules = PathRules::build(&graph);
    let telemetry = crate::obs::live::TelemetryHub::new(cluster.machines, graph.nodes.len());
    let flow = crate::obs::flow::FlowRegistry::new(cluster.machines, graph.edges.len());
    let mem = crate::obs::mem::MemRegistry::new(cluster.machines, graph.nodes.len());
    let shared = Arc::new(EngineShared {
        graph,
        rules,
        config: engine,
        fs: fs.clone(),
        machines: cluster.machines,
        telemetry,
        flight: crate::obs::recorder::FlightRecorder::new(cluster.machines),
        flow,
        mem,
    });
    let workers = (0..cluster.machines)
        .map(|m| Worker::new(shared.clone(), m))
        .collect();
    let mut sim = Sim::new(cluster, MitosWorld { workers });
    if shared.config.faults.is_active() {
        sim.set_fault_plan(shared.config.faults.clone());
    }
    for m in 0..cluster.machines {
        sim.inject(ActorId::new(m, 0), Msg::Start);
    }
    let interval = shared.config.sample_interval_ns;
    let mut snapshots: Vec<crate::obs::live::Snapshot> = Vec::new();
    let report = if interval > 0 {
        let hub = shared.clone();
        sim.run_sampled(interval, |t, _world, depths| {
            hub.flow.sample_queues(depths, interval);
            hub.mem.sample();
            let mut s = hub.telemetry.snapshot(t, snapshots.last());
            s.hot_edge = hub.flow.hottest();
            s.mem = hub.mem.watch_cell();
            on_snapshot(&s);
            snapshots.push(s);
        })
    } else {
        sim.run()
    };
    let mut world = sim.into_world();
    for w in &world.workers {
        if let Some(e) = &w.error {
            return Err(e.clone());
        }
    }
    // When faults were injected, an unrecoverable stall names them: the
    // plan summary plus what the simulator's fault layer actually did.
    let diagnose_with_faults = |workers: &[Worker]| {
        let mut diag = obs::diagnose(workers, 0, 0);
        diag.flight = shared.flight.dump_lines();
        diag.backpressure = shared.flow.snapshot().backpressure_lines(&shared.graph);
        diag.retained = shared.mem.snapshot().retained_lines();
        if shared.config.faults.is_active() {
            let retransmits = workers.iter().map(Worker::retransmits).sum();
            diag.fault = Some(obs::fault_note(
                &shared.config.faults,
                report.faults_dropped,
                report.faults_duplicated,
                report.faults_reordered,
                retransmits,
            ));
        }
        diag
    };
    let w0 = &world.workers[0];
    if !w0.path().exited() {
        return Err(RuntimeError::stalled(
            "simulation quiesced before the program exited (runtime deadlock)",
            diagnose_with_faults(&world.workers),
        ));
    }
    for (m, w) in world.workers.iter().enumerate() {
        if !w.idle() {
            return Err(RuntimeError::stalled(
                format!("worker {m} still has in-flight bags after quiescence"),
                diagnose_with_faults(&world.workers),
            ));
        }
    }
    let outputs = extract_outputs(fs);
    let op_stats = collect_op_stats(&shared.graph, &world.workers, cluster.machines);
    let path = world.workers[0].path().blocks().to_vec();
    let hoist_hits = world.workers.iter().map(Worker::hoist_hits).sum();
    let template_hits = world.workers.iter().map(Worker::template_hits).sum();
    let template_misses = world.workers.iter().map(Worker::template_misses).sum();
    let template_invalidations = world
        .workers
        .iter()
        .map(Worker::template_invalidations)
        .sum();
    let decisions = world.workers.iter().map(|w| w.decisions_broadcast).sum();
    let data_messages = world.workers.iter().map(|w| w.data_messages).sum();
    let level = shared.config.obs;
    let obs_report = (level != ObsLevel::Off).then(|| {
        let mut report = obs::merge_bufs(level, world.workers.iter_mut().map(Worker::take_obs));
        obs::attach_topology(&mut report, &shared.graph);
        report
    });
    Ok(EngineResult {
        outputs,
        path,
        sim: report,
        hoist_hits,
        template_hits,
        template_misses,
        template_invalidations,
        decisions,
        data_messages,
        op_stats,
        obs: obs_report,
        snapshots,
        flow: shared.flow.snapshot(),
        mem: shared.mem.snapshot(),
    })
}

/// Aggregates per-instance host statistics into per-operator rows.
pub(crate) fn collect_op_stats(
    graph: &LogicalGraph,
    workers: &[Worker],
    machines: u16,
) -> Vec<OpStats> {
    let mut stats: Vec<OpStats> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(op, node)| OpStats {
            op: op as crate::graph::OpId,
            name: node.name.clone(),
            kind: node.kind.label(),
            instances: graph.instances(op as crate::graph::OpId, machines),
            emitted: 0,
            hoist_hits: 0,
        })
        .collect();
    for w in workers {
        for (op, emitted, hoist) in w.host_stats() {
            stats[op as usize].emitted += emitted;
            stats[op as usize].hoist_hits += hoist;
        }
    }
    stats
}

/// Compiles source text and runs it (convenience wrapper).
pub fn run_source_sim(
    src: &str,
    fs: &InMemoryFs,
    engine: EngineConfig,
    cluster: SimConfig,
) -> Result<EngineResult, RuntimeError> {
    let func = mitos_ir::compile_str(src).map_err(|e| RuntimeError::new(e.message))?;
    run_sim(&func, fs, engine, cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitos_ir::{interpret, InterpConfig};

    fn cluster(machines: u16) -> SimConfig {
        SimConfig::with_machines(machines)
    }

    /// Runs a program on the engine and on the reference interpreter and
    /// asserts identical observable results.
    fn check(src: &str, machines: u16, setup: impl Fn(&InMemoryFs)) -> EngineResult {
        // Reference run.
        let ref_fs = InMemoryFs::new();
        setup(&ref_fs);
        let func = mitos_ir::compile_str(src).unwrap();
        let reference = interpret(&func, &ref_fs, InterpConfig::default()).unwrap();

        // Engine run.
        let fs = InMemoryFs::new();
        setup(&fs);
        let result = run_sim(&func, &fs, EngineConfig::default(), cluster(machines)).unwrap();

        assert_eq!(
            result.path, reference.path,
            "distributed path must equal the sequential path"
        );
        assert_eq!(result.outputs, reference.canonical_outputs(), "outputs");
        assert_eq!(fs.snapshot(), ref_fs.snapshot(), "file effects");
        result
    }

    #[test]
    fn straight_line_pipeline() {
        check(
            "b = bag(1, 2, 3).map(x => x * 2).filter(x => x > 2); output(b, \"b\");",
            3,
            |_| {},
        );
    }

    #[test]
    fn scalar_loop() {
        check(
            "s = 0; for i = 1 to 10 { s = s + i; } output(s, \"sum\");",
            2,
            |_| {},
        );
    }

    #[test]
    fn if_inside_loop() {
        check(
            r#"
            evens = 0;
            odds = 0;
            for i = 1 to 7 {
                if (i % 2 == 0) { evens = evens + 1; } else { odds = odds + 1; }
            }
            output(evens, "evens");
            output(odds, "odds");
            "#,
            3,
            |_| {},
        );
    }

    #[test]
    fn visit_count_three_days() {
        let result = check(
            r#"
            yesterday = empty;
            day = 1;
            do {
                visits = readFile("pageVisitLog" + day);
                counts = visits.map(x => (x, 1)).reduceByKey((a, b) => a + b);
                if (day != 1) {
                    diffs = (counts join yesterday).map(t => abs(t[1] - t[2]));
                    writeFile(diffs.sum(), "diff" + day);
                }
                yesterday = counts;
                day = day + 1;
            } while (day <= 3);
            "#,
            4,
            |fs| {
                fs.put(
                    "pageVisitLog1",
                    vec![1, 1, 2, 3].into_iter().map(Value::I64).collect(),
                );
                fs.put(
                    "pageVisitLog2",
                    vec![1, 2, 2, 3].into_iter().map(Value::I64).collect(),
                );
                fs.put(
                    "pageVisitLog3",
                    vec![2, 3, 3].into_iter().map(Value::I64).collect(),
                );
            },
        );
        assert!(result.sim.end_time > 0);
    }

    #[test]
    fn nested_loops_with_invariant_join() {
        let result = check(
            r#"
            total = 0;
            i = 0;
            while (i < 2) {
                x = bag((1, i), (2, i));
                j = 0;
                while (j < 3) {
                    y = bag((1, j));
                    z = x join y;
                    total = total + z.count();
                    j = j + 1;
                }
                i = i + 1;
            }
            output(total, "joins");
            "#,
            3,
            |_| {},
        );
        // The join build side is invariant across the inner loop: 2 outer
        // iterations x 2 inner reuses each.
        assert!(result.hoist_hits >= 4, "hoist hits: {}", result.hoist_hits);
    }

    #[test]
    fn challenge3_branches_assign_both_sides() {
        check(
            r#"
            i = 0;
            total = 0;
            while (i < 4) {
                if (i % 2 == 0) {
                    x = bag((1, 100));
                    y = bag((1, 200));
                } else {
                    x = bag((1, 300));
                    y = bag((1, 400));
                }
                z = x join y;
                total = total + z.map(t => t[1] + t[2]).sum();
                i = i + 1;
            }
            output(total, "t");
            "#,
            4,
            |_| {},
        );
    }

    #[test]
    fn non_pipelined_mode_is_equivalent() {
        let src = r#"
            yesterday = empty;
            day = 1;
            do {
                visits = readFile("pageVisitLog" + day);
                counts = visits.map(x => (x, 1)).reduceByKey((a, b) => a + b);
                if (day != 1) {
                    diffs = (counts join yesterday).map(t => abs(t[1] - t[2]));
                    writeFile(diffs.sum(), "diff" + day);
                }
                yesterday = counts;
                day = day + 1;
            } while (day <= 3);
        "#;
        let setup = |fs: &InMemoryFs| {
            fs.put(
                "pageVisitLog1",
                (0..20).map(|i| Value::I64(i % 5)).collect(),
            );
            fs.put(
                "pageVisitLog2",
                (0..20).map(|i| Value::I64(i % 4)).collect(),
            );
            fs.put(
                "pageVisitLog3",
                (0..20).map(|i| Value::I64(i % 3)).collect(),
            );
        };
        let func = mitos_ir::compile_str(src).unwrap();
        let fs1 = InMemoryFs::new();
        setup(&fs1);
        let pipelined = run_sim(&func, &fs1, EngineConfig::default(), cluster(4)).unwrap();
        let fs2 = InMemoryFs::new();
        setup(&fs2);
        let nonpipe = run_sim(
            &func,
            &fs2,
            EngineConfig {
                pipelined: false,
                ..EngineConfig::default()
            },
            cluster(4),
        )
        .unwrap();
        assert_eq!(fs1.snapshot(), fs2.snapshot());
        assert!(
            pipelined.sim.end_time < nonpipe.sim.end_time,
            "pipelining should be faster: {} vs {}",
            pipelined.sim.end_time,
            nonpipe.sim.end_time
        );
    }

    #[test]
    fn hoisting_off_is_equivalent_but_slower_state_rebuilds() {
        let src = r#"
            pageTypes = readFile("pageTypes");
            total = 0;
            day = 1;
            do {
                visits = readFile("pageVisitLog" + day);
                joined = pageTypes join visits.map(v => (v, 1));
                total = total + joined.count();
                day = day + 1;
            } while (day <= 3);
            output(total, "total");
        "#;
        let setup = |fs: &InMemoryFs| {
            fs.put(
                "pageTypes",
                (0..50)
                    .map(|i| Value::tuple([Value::I64(i), Value::str("t")]))
                    .collect(),
            );
            for d in 1..=3 {
                fs.put(
                    format!("pageVisitLog{d}"),
                    (0..30).map(|i| Value::I64((i * d) % 50)).collect(),
                );
            }
        };
        let func = mitos_ir::compile_str(src).unwrap();
        let fs1 = InMemoryFs::new();
        setup(&fs1);
        let hoisted = run_sim(&func, &fs1, EngineConfig::default(), cluster(3)).unwrap();
        let fs2 = InMemoryFs::new();
        setup(&fs2);
        let unhoisted = run_sim(
            &func,
            &fs2,
            EngineConfig {
                hoisting: false,
                ..EngineConfig::default()
            },
            cluster(3),
        )
        .unwrap();
        assert_eq!(hoisted.outputs, unhoisted.outputs);
        assert!(hoisted.hoist_hits >= 2, "{}", hoisted.hoist_hits);
        assert_eq!(unhoisted.hoist_hits, 0);
    }

    #[test]
    fn fusion_off_is_equivalent_and_preserves_hoisting() {
        let src = r#"
            pageTypes = readFile("pageTypes");
            total = 0;
            day = 1;
            do {
                visits = readFile("pageVisitLog" + day);
                joined = pageTypes join visits.map(v => (v, 1));
                total = total + joined.count();
                day = day + 1;
            } while (day <= 3);
            output(total, "total");
        "#;
        let setup = |fs: &InMemoryFs| {
            fs.put(
                "pageTypes",
                (0..50)
                    .map(|i| Value::tuple([Value::I64(i), Value::str("t")]))
                    .collect(),
            );
            for d in 1..=3 {
                fs.put(
                    format!("pageVisitLog{d}"),
                    (0..30).map(|i| Value::I64((i * d) % 50)).collect(),
                );
            }
        };
        let func = mitos_ir::compile_str(src).unwrap();
        let fs1 = InMemoryFs::new();
        setup(&fs1);
        let fused = run_sim(&func, &fs1, EngineConfig::default(), cluster(3)).unwrap();
        let fs2 = InMemoryFs::new();
        setup(&fs2);
        let unfused = run_sim(
            &func,
            &fs2,
            EngineConfig::new().with_fusion(false),
            cluster(3),
        )
        .unwrap();
        assert_eq!(fused.outputs, unfused.outputs);
        assert_eq!(fused.path, unfused.path);
        assert_eq!(fs1.snapshot(), fs2.snapshot());
        // Fusion must not defeat loop-invariant hoisting: the join's build
        // side is the fused `readFile+map` chain's bag, unchanged per
        // iteration.
        assert_eq!(fused.hoist_hits, unfused.hoist_hits);
        assert!(fused.hoist_hits >= 2, "{}", fused.hoist_hits);
        // The chain actually fused, and eliminating its hop saves both
        // messages and simulated time.
        assert!(
            fused.op_stats.iter().any(|s| s.kind.contains('+')),
            "{:?}",
            fused.op_stats
        );
        assert!(fused.op_stats.len() < unfused.op_stats.len());
        assert!(
            fused.sim.messages < unfused.sim.messages,
            "messages: {} vs {}",
            fused.sim.messages,
            unfused.sim.messages
        );
        assert!(
            fused.sim.end_time < unfused.sim.end_time,
            "time: {} vs {}",
            fused.sim.end_time,
            unfused.sim.end_time
        );
    }

    #[test]
    fn templates_off_is_equivalent_and_slower() {
        // A steady-state loop where the template cache replays almost
        // every bag start. The run must be bit-identical to the slow path
        // in every *result* — outputs, path, message counts, decisions,
        // file-system effects, causal span-tree shapes — while finishing
        // in strictly less virtual time: a template hit charges one flat
        // replay cost where the slow path pays for backward scans over
        // the ever-growing execution path.
        let src = r#"
            s = 0;
            d = bag(1, 2, 3);
            for i = 1 to 200 {
                d = d.map(x => x + 1);
                s = s + d.sum();
            }
            output(s, "s");
        "#;
        let func = mitos_ir::compile_str(src).unwrap();
        let fs1 = InMemoryFs::new();
        let on = run_sim(
            &func,
            &fs1,
            EngineConfig::new().with_obs(crate::obs::ObsLevel::Trace),
            cluster(4),
        )
        .unwrap();
        let fs2 = InMemoryFs::new();
        let off = run_sim(
            &func,
            &fs2,
            EngineConfig::new()
                .with_templates(false)
                .with_obs(crate::obs::ObsLevel::Trace),
            cluster(4),
        )
        .unwrap();
        assert_eq!(on.outputs, off.outputs);
        assert_eq!(on.path, off.path);
        assert!(
            on.sim.end_time < off.sim.end_time,
            "steady-state replay must beat re-deriving every decision: \
             on={} off={}",
            on.sim.end_time,
            off.sim.end_time
        );
        assert_eq!(on.sim.messages, off.sim.messages);
        assert_eq!(on.data_messages, off.data_messages);
        assert_eq!(on.decisions, off.decisions);
        assert_eq!(fs1.snapshot(), fs2.snapshot());
        // Replay emits the same observability spans as the slow path:
        // every step's causal tree is isomorphic (shapes exclude only
        // timestamps, which legitimately differ).
        let on_trees = crate::obs::build_step_trees(on.obs.as_ref().unwrap());
        let off_trees = crate::obs::build_step_trees(off.obs.as_ref().unwrap());
        assert_eq!(on_trees.len(), off_trees.len());
        for (a, b) in on_trees.iter().zip(&off_trees) {
            assert!(a.orphans.is_empty(), "step {} orphans", a.step);
            assert_eq!(a.shape(), b.shape(), "tree shape at step {}", a.step);
        }
        assert!(on.template_hits > 0, "the loop must hit the cache");
        assert!(
            on.template_hit_rate() > 0.9,
            "steady-state hit rate: {}",
            on.template_hit_rate()
        );
        assert_eq!(
            (
                off.template_hits,
                off.template_misses,
                off.template_invalidations
            ),
            (0, 0, 0),
            "disabled cache must count nothing"
        );
    }

    #[test]
    fn template_counters_are_deterministic_across_runs() {
        let src = r#"
            total = 0;
            d = bag(1, 2, 3, 4);
            for i = 1 to 40 {
                if (i % 3 == 0) { d = d.filter(x => x > 1); }
                total = total + d.sum();
            }
            output(total, "t");
        "#;
        let func = mitos_ir::compile_str(src).unwrap();
        let run = || {
            let fs = InMemoryFs::new();
            run_sim(&func, &fs, EngineConfig::default(), cluster(3)).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(
            (a.template_hits, a.template_misses, a.template_invalidations),
            (b.template_hits, b.template_misses, b.template_invalidations),
            "bag starts follow path order, so the counters are bit-identical"
        );
        assert_eq!(
            a.template_hit_rate().to_bits(),
            b.template_hit_rate().to_bits()
        );
        assert!(a.template_hits > 0);
    }

    #[test]
    fn withheld_decisions_disable_templates() {
        // Decision withholding deliberately perturbs the control plane, so
        // the cache is never built (one machine: every decision is local
        // and the run still completes).
        let src = "s = 0; for i = 1 to 10 { s = s + i; } output(s, \"s\");";
        let func = mitos_ir::compile_str(src).unwrap();
        let fs = InMemoryFs::new();
        let cfg = EngineConfig::new()
            .with_faults(crate::rt::FaultPlan::new().with_withhold_decisions(true));
        let r = run_sim(&func, &fs, cfg, cluster(1)).unwrap();
        assert_eq!(
            (r.template_hits, r.template_misses, r.template_invalidations),
            (0, 0, 0),
            "withheld decisions must disable the template cache entirely"
        );
    }

    #[test]
    fn missing_file_is_a_runtime_error() {
        let fs = InMemoryFs::new();
        let err = run_source_sim(
            "b = readFile(\"nope\"); output(b, \"b\");",
            &fs,
            EngineConfig::default(),
            cluster(2),
        )
        .unwrap_err();
        assert!(err.message.contains("nope"), "{err}");
    }

    #[test]
    fn deterministic_across_jitter_seeds() {
        let src = r#"
            total = 0;
            for d = 1 to 4 {
                visits = readFile("log" + d);
                counts = visits.map(x => (x, 1)).reduceByKey((a, b) => a + b);
                total = total + counts.count();
            }
            output(total, "t");
        "#;
        let func = mitos_ir::compile_str(src).unwrap();
        let mut results = Vec::new();
        for seed in [1u64, 7, 42] {
            let fs = InMemoryFs::new();
            for d in 1..=4 {
                fs.put(
                    format!("log{d}"),
                    (0..40).map(|i| Value::I64((i * d) % 11)).collect(),
                );
            }
            let mut cfg = cluster(4);
            cfg.seed = seed;
            cfg.jitter_pct = 40;
            let r = run_sim(&func, &fs, EngineConfig::default(), cfg).unwrap();
            results.push(r.outputs);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn single_machine_works() {
        check("b = bag(1, 2); output(b.sum(), \"s\");", 1, |_| {});
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use crate::rt::EngineConfig;

    #[test]
    fn non_terminating_loop_is_a_graceful_error() {
        // `i` never changes, so the loop never exits.
        let func =
            mitos_ir::compile_str("i = 0; while (i < 1) { x = 1; } output(i, \"i\");").unwrap();
        let fs = InMemoryFs::new();
        let err = run_sim(
            &func,
            &fs,
            EngineConfig {
                max_path_len: 500,
                ..EngineConfig::default()
            },
            SimConfig::with_machines(2),
        )
        .unwrap_err();
        assert!(err.message.contains("non-terminating"), "{err}");
    }
}

#[cfg(test)]
mod op_stats_tests {
    use super::*;
    use crate::rt::EngineConfig;

    #[test]
    fn op_stats_count_emissions_and_hoists() {
        let src = r#"
            inv = bag((1, 10), (2, 20));
            total = 0;
            for i = 1 to 3 {
                probe = bag((1, i));
                total = total + (inv join probe).count();
            }
            output(total, "t");
        "#;
        let func = mitos_ir::compile_str(src).unwrap();
        let fs = InMemoryFs::new();
        let r = run_sim(
            &func,
            &fs,
            EngineConfig::default(),
            SimConfig::with_machines(2),
        )
        .unwrap();
        let join = r
            .op_stats
            .iter()
            .find(|s| s.kind == "join")
            .expect("join stats");
        // Three iterations, each joining one probe row against the
        // invariant build side: one match each.
        assert_eq!(join.emitted, 3, "{:?}", r.op_stats);
        // 2 physical instances, each reusing the build on iterations 2
        // and 3.
        assert_eq!(join.hoist_hits, 4);
        let bag_lit = r
            .op_stats
            .iter()
            .find(|s| &*s.name == "inv")
            .expect("inv stats");
        assert_eq!(bag_lit.emitted, 2, "inv emitted once (2 rows)");
    }
}
