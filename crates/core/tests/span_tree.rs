//! End-to-end checks of the causal tracing subsystem: span-tree
//! completeness (no orphans) on a fig7-style step-overhead loop on both
//! drivers, deterministic (bit-identical) trees under the simulator,
//! phase-histogram consistency with the profiler's per-step latency, the
//! flight-recorder dump in stall reports, and the fault-free `explain`
//! output hiding the recovery line.

use mitos_core::obs::span::SpanKind;
use mitos_core::rt::FaultPlan;
use mitos_core::{
    build_profile, build_step_trees, run_sim, run_threads, EngineConfig, ObsLevel, PhaseHistograms,
    StepTree,
};
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;

/// The Fig. 7 per-step-overhead microbenchmark shape: a loop with minimal
/// data processing per step, so the control plane dominates.
fn fig7_src(steps: u32) -> String {
    format!(
        r#"s = 0;
for i = 1 to {steps} {{
    b = bag((1, i));
    s = s + b.count();
}}
output(s, "s");
"#
    )
}

fn trace_cfg() -> EngineConfig {
    EngineConfig::new().with_obs(ObsLevel::Trace)
}

/// Every span tree must be complete: zero orphans, and on decided steps
/// every remote machine shows the receipt → append chain.
fn assert_complete(trees: &[StepTree], machines: u16) {
    assert!(!trees.is_empty(), "no step trees built");
    for tree in trees {
        assert!(
            tree.orphans.is_empty(),
            "step {} has {} orphan span(s): {:?}",
            tree.step,
            tree.orphans.len(),
            tree.orphans
        );
        assert!(!tree.spans.is_empty(), "step {} has no spans", tree.step);
        if tree.decided {
            let recvs = tree
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::Recv)
                .count();
            assert_eq!(
                recvs,
                machines as usize - 1,
                "step {}: every remote machine must have a receipt span",
                tree.step
            );
        }
    }
}

#[test]
fn fig7_span_trees_complete_and_deterministic_on_sim() {
    let func = mitos_ir::compile_str(&fig7_src(20)).unwrap();
    let machines = 3u16;
    let run = || {
        let fs = InMemoryFs::new();
        run_sim(&func, &fs, trace_cfg(), SimConfig::with_machines(machines)).unwrap()
    };
    let r1 = run();
    let trees1 = build_step_trees(r1.obs.as_ref().unwrap());
    assert_complete(&trees1, machines);
    // Deterministic span ids and virtual-time spans: a repeated run's
    // trees are bit-identical, timestamps included.
    let r2 = run();
    let trees2 = build_step_trees(r2.obs.as_ref().unwrap());
    assert_eq!(trees1, trees2, "simulated span trees must be bit-identical");
}

#[test]
fn fig7_span_trees_complete_on_threads() {
    let func = mitos_ir::compile_str(&fig7_src(20)).unwrap();
    let machines = 3u16;
    let fs = InMemoryFs::new();
    let r = run_threads(&func, &fs, trace_cfg(), machines).unwrap();
    let trees = build_step_trees(r.obs.as_ref().unwrap());
    assert_complete(&trees, machines);
}

#[test]
fn execute_phase_sum_matches_profiler_busy_time() {
    let func = mitos_ir::compile_str(&fig7_src(20)).unwrap();
    let fs = InMemoryFs::new();
    let r = run_sim(&func, &fs, trace_cfg(), SimConfig::with_machines(3)).unwrap();
    let obs = r.obs.as_ref().unwrap();
    let trees = build_step_trees(obs);
    let histos = PhaseHistograms::from_trees(&trees);
    // The profiler's per-iteration busy time sums the same
    // BagOpened..BagFinalized intervals the execute phase measures, so
    // the two totals must agree within 1% (acceptance criterion).
    let profile = build_profile(obs, &r.path, r.sim.end_time);
    let busy: u64 = profile.machines.iter().map(|m| m.busy_ns).sum();
    let exec_sum = histos.execute.sum_ns;
    assert!(busy > 0, "profiler saw no busy time");
    let drift = (exec_sum as f64 - busy as f64).abs() / busy as f64;
    assert!(
        drift <= 0.01,
        "execute-phase histogram sum {exec_sum} vs profiler busy {busy} ({:.2}% drift)",
        drift * 100.0
    );
    // The export itself must carry the same totals.
    let text = histos.prometheus();
    assert!(text.contains(&format!(
        "mitos_phase_latency_ns_sum{{phase=\"execute\"}} {exec_sum}"
    )));
    assert!(text.contains(&format!("mitos_steps_total {}", trees.len())));
}

#[test]
fn stall_report_carries_flight_recorder_dump() {
    // Withheld decision broadcasts wedge every remote worker: the sim
    // diagnoses the quiescent-but-unfinished state, and the stall report
    // must include the always-on flight recorder's last events — even
    // though the run recorded at ObsLevel::Off.
    let func = mitos_ir::compile_str(&fig7_src(5)).unwrap();
    let fs = InMemoryFs::new();
    let cfg = EngineConfig::new().with_faults(FaultPlan::new().with_withhold_decisions(true));
    let err = run_sim(&func, &fs, cfg, SimConfig::with_machines(3)).unwrap_err();
    let report = err.stall.expect("withheld decisions must stall");
    if std::env::var_os("MITOS_FLIGHT_OFF").is_none() {
        assert!(
            !report.flight.is_empty(),
            "stall report must carry the flight dump"
        );
        assert!(
            report.flight.iter().any(|l| l.contains("start")),
            "machine lanes should at least show the Start message: {:?}",
            report.flight
        );
        assert!(report.render().contains("flight recorder"));
    }
}

#[test]
fn fault_free_explain_hides_recovery_line() {
    let func = mitos_ir::compile_str(&fig7_src(5)).unwrap();
    let fs = InMemoryFs::new();
    let cfg = EngineConfig::new().with_obs(ObsLevel::Metrics);
    let r = run_sim(&func, &fs, cfg, SimConfig::with_machines(3)).unwrap();
    let out = mitos_core::obs::explain_report(&r);
    assert!(
        !out.contains("recovery:"),
        "fault-free explain output must not mention the recovery protocol:\n{out}"
    );
    // Sanity: a run with actual retransmissions does show it.
    let fs2 = InMemoryFs::new();
    let cfg2 = EngineConfig::new()
        .with_obs(ObsLevel::Metrics)
        .with_faults(FaultPlan::new().with_drop(0.2).with_seed(7));
    let r2 = run_sim(&func, &fs2, cfg2, SimConfig::with_machines(3)).unwrap();
    if r2.obs.as_ref().unwrap().metrics.retransmits > 0 {
        assert!(mitos_core::obs::explain_report(&r2).contains("recovery:"));
    }
}

#[test]
fn decision_receipts_are_counted_and_annotated() {
    let func = mitos_ir::compile_str(&fig7_src(10)).unwrap();
    let fs = InMemoryFs::new();
    let machines = 3u16;
    let r = run_sim(&func, &fs, trace_cfg(), SimConfig::with_machines(machines)).unwrap();
    let obs = r.obs.as_ref().unwrap();
    // Every broadcast decision is received exactly once per remote
    // machine (fault-free run, no dedup in play).
    assert_eq!(
        obs.metrics.decisions_received,
        obs.metrics.decisions_broadcast * (machines as u64 - 1),
    );
    // And the wire-carried parents all verified: receipt spans exist in
    // the trees (an unverifiable parent would orphan them).
    let trees = build_step_trees(obs);
    let recvs: usize = trees
        .iter()
        .map(|t| t.spans.iter().filter(|s| s.kind == SpanKind::Recv).count())
        .sum();
    assert_eq!(recvs as u64, obs.metrics.decisions_received);
}
