//! Tests for the iteration profiler and critical-path analysis: hand-built
//! event streams with known answers, property tests pinning the two
//! critical-path invariants (length ≤ makespan, length ≥ longest single
//! bag computation) on random dependency DAGs, and end-to-end checks that
//! profiling a simulated run is deterministic and charges zero virtual
//! time.

use mitos_core::obs::event::InputRule;
use mitos_core::obs::{critical_path, ObsLevel, ObsReport};
use mitos_core::rt::EngineConfig;
use mitos_core::{build_profile, run_sim, Event, EventKind};
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;
use proptest::prelude::*;

/// Builds a Trace-level report from hand-written events and edge
/// endpoints. Events are given in timestamp order (as `merge_bufs` would
/// produce).
fn report_of(events: Vec<Event>, edges: Vec<(u32, u32)>) -> ObsReport {
    ObsReport {
        level: ObsLevel::Trace,
        events,
        edges,
        ..ObsReport::default()
    }
}

fn ev(t_ns: u64, op: u32, kind: EventKind) -> Event {
    Event {
        t_ns,
        machine: 0,
        op,
        kind,
    }
}

fn opened(t_ns: u64, op: u32, bag_len: u32) -> Event {
    ev(
        t_ns,
        op,
        EventKind::BagOpened {
            pos: bag_len - 1,
            bag_len,
        },
    )
}

fn finalized(t_ns: u64, op: u32, bag_len: u32) -> Event {
    ev(
        t_ns,
        op,
        EventKind::BagFinalized {
            pos: bag_len - 1,
            bag_len,
        },
    )
}

fn selected(t_ns: u64, op: u32, edge: u32, bag_len: u32) -> Event {
    ev(
        t_ns,
        op,
        EventKind::InputSelected {
            edge,
            bag_len,
            rule: InputRule::LatestOccurrence,
        },
    )
}

/// op0 computes [0, 100]; op1 opens at 50, consumes op0's bag over edge 0,
/// and finishes at 250. The chain is worth 100 (op0) + 150 (op1 after the
/// input arrived at 100) = 250, beating op1's own 200ns span.
#[test]
fn chain_critical_path_has_known_length() {
    let report = report_of(
        vec![
            opened(0, 0, 1),
            opened(50, 1, 2),
            selected(50, 1, 0, 1),
            finalized(100, 0, 1),
            finalized(250, 1, 2),
        ],
        vec![(0, 1)],
    );
    let critical = critical_path(&report, 250);
    assert_eq!(critical.length_ns, 250);
    assert_eq!(critical.steps.len(), 2);
    assert_eq!(critical.steps[0].node.op, 0);
    assert_eq!(critical.steps[0].via_edge, None);
    assert_eq!(critical.steps[0].contribution_ns, 100);
    assert_eq!(critical.steps[1].node.op, 1);
    assert_eq!(critical.steps[1].via_edge, Some(0));
    assert_eq!(critical.steps[1].contribution_ns, 150);
    assert_eq!(critical.op_contrib, vec![(1, 150), (0, 100)]);
    assert_eq!(critical.edge_contrib, vec![(0, 150)]);
    // Both nodes are tight: op0 feeds op1's only input, op1 ends the run.
    for node in &critical.nodes {
        assert_eq!(node.slack_ns, 0, "node {node:?}");
    }
}

/// Same chain, but the conditional send decision resolves only at t=180.
/// The input is then available for just 70ns of op1's work — the chain
/// through op0 (100 + 70 = 170) loses to op1's own 200ns span, so the
/// critical path is op1 alone.
#[test]
fn late_send_decision_removes_producer_from_critical_path() {
    let report = report_of(
        vec![
            opened(0, 0, 1),
            opened(50, 1, 2),
            selected(50, 1, 0, 1),
            finalized(100, 0, 1),
            ev(
                180,
                0,
                EventKind::SendResolved {
                    edge: 0,
                    bag_len: 1,
                    sent: true,
                    buffered: 0,
                    latency_ns: 180,
                },
            ),
            finalized(250, 1, 2),
        ],
        vec![(0, 1)],
    );
    let critical = critical_path(&report, 250);
    assert_eq!(critical.length_ns, 200);
    assert_eq!(critical.steps.len(), 1);
    assert_eq!(critical.steps[0].node.op, 1);
    assert_eq!(critical.steps[0].contribution_ns, 200);
}

/// Two producers feed one consumer: op0 finishes at 100, op1 at 30. The
/// consumer waits for the slower input, so the fast producer has
/// 100 − 30 = 70ns of slack and the slow one none.
#[test]
fn slack_measures_room_until_latest_input() {
    let report = report_of(
        vec![
            opened(0, 0, 1),
            opened(0, 1, 1),
            finalized(30, 1, 1),
            opened(40, 2, 2),
            selected(40, 2, 0, 1),
            selected(40, 2, 1, 1),
            finalized(100, 0, 1),
            finalized(300, 2, 2),
        ],
        vec![(0, 2), (1, 2)],
    );
    let critical = critical_path(&report, 300);
    let slack_of = |op: u32| {
        critical
            .nodes
            .iter()
            .find(|n| n.op == op)
            .map(|n| n.slack_ns)
            .unwrap()
    };
    assert_eq!(slack_of(0), 0, "slow producer is tight");
    assert_eq!(slack_of(1), 70, "fast producer could finish 70ns later");
    assert_eq!(slack_of(2), 0, "terminal bag ends the makespan");
    // The path runs through the slow producer: 100 + (300 − 100) = 300.
    assert_eq!(critical.length_ns, 300);
    assert_eq!(
        critical.steps.iter().map(|s| s.node.op).collect::<Vec<_>>(),
        vec![0, 2]
    );
}

/// A bag still open when the trace ends is closed at the last observed
/// timestamp, never before its own start.
#[test]
fn unclosed_bags_close_at_trace_end() {
    let report = report_of(
        vec![opened(100, 0, 1), finalized(150, 9, 7), opened(200, 1, 1)],
        vec![],
    );
    let critical = critical_path(&report, 400);
    let node = |op: u32| critical.nodes.iter().find(|n| n.op == op).unwrap();
    assert_eq!((node(0).start_ns, node(0).end_ns), (100, 200));
    // Opened after every other timestamp: clamped to a zero-length span.
    assert_eq!((node(1).start_ns, node(1).end_ns), (200, 200));
}

/// An `InputSelected` whose edge or producer never appears in the trace is
/// ignored rather than crashing or corrupting the path.
#[test]
fn dangling_dependencies_are_ignored() {
    let report = report_of(
        vec![
            opened(0, 0, 1),
            selected(0, 0, 7, 99),
            selected(0, 0, 0, 42),
            finalized(80, 0, 1),
        ],
        vec![(5, 0)],
    );
    let critical = critical_path(&report, 80);
    assert_eq!(critical.length_ns, 80);
    assert_eq!(critical.steps.len(), 1);
}

/// Random single-machine dependency DAGs: bag i (op i) gets a random
/// interval, and each dependency i → j (i < j) becomes an
/// `InputSelected` on its own edge. The spec says arrivals never precede
/// producer finishes, so contributions telescope inside finish times.
type DagCase = (Vec<(u64, u64)>, Vec<(usize, usize)>);

fn arb_dag() -> impl Strategy<Value = DagCase> {
    (2usize..8).prop_flat_map(|n| {
        (
            prop::collection::vec((0u64..1_000, 1u64..500), n),
            prop::collection::vec((0usize..n, 0usize..n), 0..12),
        )
            .prop_map(|(bags, pairs)| {
                let deps = pairs
                    .into_iter()
                    .filter(|&(i, j)| i < j)
                    .collect::<Vec<_>>();
                (bags, deps)
            })
    })
}

fn dag_report(bags: &[(u64, u64)], deps: &[(usize, usize)]) -> ObsReport {
    let mut events = Vec::new();
    for (i, &(start, dur)) in bags.iter().enumerate() {
        events.push(opened(start, i as u32, 1));
        events.push(finalized(start + dur, i as u32, 1));
    }
    let mut edges = Vec::new();
    for &(i, j) in deps {
        let edge = edges.len() as u32;
        edges.push((i as u32, j as u32));
        // Selection is recorded while the consumer's bag is open; the scan
        // attributes it to the consumer's latest open, so emit it at (and
        // stably after) the consumer's BagOpened.
        events.push(selected(bags[j].0, j as u32, edge, 1));
    }
    events.sort_by_key(|e| (e.t_ns, e.machine));
    report_of(events, edges)
}

proptest! {
    /// Invariants from the module spec: the critical path never exceeds
    /// the makespan and never undercuts the longest single bag
    /// computation; the analysis is deterministic.
    #[test]
    fn critical_path_bounds_hold((bags, deps) in arb_dag()) {
        let report = dag_report(&bags, &deps);
        let makespan = bags.iter().map(|&(s, d)| s + d).max().unwrap();
        let critical = critical_path(&report, makespan);
        prop_assert!(
            critical.length_ns <= makespan,
            "length {} > makespan {makespan}",
            critical.length_ns
        );
        let longest = bags.iter().map(|&(_, d)| d).max().unwrap();
        prop_assert!(
            critical.length_ns >= longest,
            "length {} < longest bag {longest}",
            critical.length_ns
        );
        // Contributions sum to the total length, and every step's node
        // really exists in the trace.
        let sum: u64 = critical.steps.iter().map(|s| s.contribution_ns).sum();
        prop_assert_eq!(sum, critical.length_ns);
        prop_assert_eq!(critical_path(&report, makespan), critical);
    }
}

const NESTED: &str = r#"
    total = 0;
    i = 0;
    while (i < 3) {
        j = 0;
        while (j < 2) {
            b = bag((i, 1), (j, 1));
            total = total + b.count();
            j = j + 1;
        }
        i = i + 1;
    }
    output(total, "t");
"#;

fn traced_run(obs: ObsLevel) -> mitos_core::EngineResult {
    let func = mitos_ir::compile_str(NESTED).unwrap();
    let fs = InMemoryFs::new();
    run_sim(
        &func,
        &fs,
        EngineConfig::new().with_obs(obs),
        SimConfig::with_machines(3),
    )
    .unwrap()
}

/// Profiling a simulated run is a pure post-hoc analysis: two traced runs
/// produce byte-identical profiles, and tracing itself charges zero
/// virtual time (same end time and outputs as an unobserved run).
#[test]
fn sim_profile_is_deterministic_and_free() {
    let a = traced_run(ObsLevel::Trace);
    let b = traced_run(ObsLevel::Trace);
    let off = traced_run(ObsLevel::Off);
    assert_eq!(a.sim.end_time, off.sim.end_time, "tracing charged time");
    assert_eq!(a.outputs, off.outputs, "tracing changed results");
    assert_eq!(a.sim.end_time, b.sim.end_time);

    let pa = build_profile(a.obs.as_ref().unwrap(), &a.path, a.sim.end_time);
    let pb = build_profile(b.obs.as_ref().unwrap(), &b.path, b.sim.end_time);
    assert_eq!(
        pa.to_json(&a.op_stats),
        pb.to_json(&b.op_stats),
        "profile not bit-identical across runs"
    );
    assert_eq!(pa, pb);
}

/// End-to-end sanity on a real nested-loop trace: the critical path obeys
/// its bounds, iteration coordinates reach the nesting depth, and the
/// warmup/steady split accounts for every in-loop iteration row.
#[test]
fn sim_profile_attributes_iterations() {
    let r = traced_run(ObsLevel::Trace);
    let obs = r.obs.as_ref().unwrap();
    let profile = build_profile(obs, &r.path, r.sim.end_time);

    assert!(profile.critical.length_ns <= r.sim.end_time);
    let longest = profile
        .critical
        .nodes
        .iter()
        .map(|n| n.end_ns - n.start_ns)
        .max()
        .unwrap();
    assert!(profile.critical.length_ns >= longest);

    assert_eq!(profile.max_depth, 2);
    assert!(
        profile.rows.iter().any(|row| row.coords.len() == 2),
        "no inner-loop iteration row: {:?}",
        profile
            .rows
            .iter()
            .map(|r| r.coords.clone())
            .collect::<Vec<_>>()
    );
    // Inner iterations: (i, j) for i in 0..3, j in 0..2 → 3 warmup rows
    // (j = 0) and 3 steady rows (j = 1), plus outer-only rows.
    let in_loop = profile
        .rows
        .iter()
        .filter(|row| !row.coords.is_empty())
        .count() as u64;
    assert_eq!(profile.warmup.rows + profile.steady.rows, in_loop);
    assert!(profile.warmup.rows >= 3, "warmup {:?}", profile.warmup);
    assert!(profile.steady.rows >= 3, "steady {:?}", profile.steady);

    // Busy time is conserved across the three groupings.
    let by_rows: u64 = profile.rows.iter().map(|row| row.busy_ns).sum();
    let by_machines: u64 = profile.machines.iter().map(|m| m.busy_ns).sum();
    assert_eq!(by_rows, by_machines);

    let rendered = profile.render(&r.op_stats);
    assert!(rendered.contains("critical path"), "{rendered}");
    assert!(rendered.contains("[0.1]"), "{rendered}");
    assert!(rendered.contains("warmup:"), "{rendered}");
    mitos_core::obs::validate_json(&profile.to_json(&r.op_stats))
        .unwrap_or_else(|e| panic!("profile JSON invalid: {e}"));
}
