//! Observability-layer integration tests: driver equivalence of the event
//! stream, exact reconciliation of metrics against engine results, Chrome
//! trace well-formedness, and the zero-overhead guarantee of the disabled
//! tracer.

use mitos_core::obs::{chrome_trace, validate_json, EventKind, ObsLevel, ObsReport};
use mitos_core::rt::EngineConfig;
use mitos_core::{run_sim, run_threads, EngineResult};
use mitos_fs::InMemoryFs;
use mitos_lang::Value;
use mitos_sim::SimConfig;
use std::collections::{BTreeMap, BTreeSet};

const PROGRAM: &str = r#"
    total = 0;
    i = 0;
    while (i < 4) {
        base = bag((1, i), (2, i * 2));
        j = 0;
        while (j < 2) {
            probe = bag((1, j));
            hits = (base join probe).count();
            if ((i + j) % 2 == 0) { total = total + hits; }
            j = j + 1;
        }
        i = i + 1;
    }
    output(total, "t");
"#;

fn run_sim_at(level: ObsLevel, machines: u16) -> EngineResult {
    let func = mitos_ir::compile_str(PROGRAM).unwrap();
    let fs = InMemoryFs::new();
    run_sim(
        &func,
        &fs,
        EngineConfig::new().with_obs(level),
        SimConfig::with_machines(machines),
    )
    .unwrap()
}

fn run_threads_at(level: ObsLevel, machines: u16) -> EngineResult {
    let func = mitos_ir::compile_str(PROGRAM).unwrap();
    let fs = InMemoryFs::new();
    run_threads(&func, &fs, EngineConfig::new().with_obs(level), machines).unwrap()
}

/// Canonicalizes an event stream for cross-driver comparison: timestamps
/// are dropped, timing-dependent fields (`buffered`, `latency_ns`,
/// `delay_ns`) are zeroed, and chunk-sized events (`Emitted`, `SinkWrote`)
/// are folded into totals — arrival interleaving under real threads may
/// split one logical emission into several chunks, and resolve
/// conditional sends in a different order, but the multiset of logical
/// events per (machine, operator) must be identical to the simulator's.
fn normalize(report: &ObsReport) -> BTreeMap<(u16, u32), Vec<String>> {
    let mut folded: BTreeMap<(u16, u32, String), u64> = BTreeMap::new();
    let mut by_host: BTreeMap<(u16, u32), Vec<String>> = BTreeMap::new();
    for e in &report.events {
        let key = (e.machine, e.op);
        match &e.kind {
            EventKind::Emitted { bag_len, count } => {
                *folded
                    .entry((e.machine, e.op, format!("emitted len{bag_len}")))
                    .or_default() += count;
            }
            EventKind::SinkWrote { bag_len, count } => {
                *folded
                    .entry((e.machine, e.op, format!("sink_wrote len{bag_len}")))
                    .or_default() += count;
            }
            EventKind::SendResolved {
                edge,
                bag_len,
                sent,
                ..
            } => by_host
                .entry(key)
                .or_default()
                .push(format!("send_resolved e{edge} len{bag_len} sent={sent}")),
            EventKind::IoStarted { .. } => {
                by_host
                    .entry(key)
                    .or_default()
                    .push("io_started".to_string());
            }
            other => by_host.entry(key).or_default().push(format!(
                "{} {:?}",
                other.name(),
                strip_debug(other)
            )),
        }
    }
    for ((machine, op, label), count) in folded {
        by_host
            .entry((machine, op))
            .or_default()
            .push(format!("{label} total={count}"));
    }
    for v in by_host.values_mut() {
        v.sort();
    }
    by_host
}

/// Debug payload with nothing timing-dependent left (those kinds are
/// handled before this is called; the rest are deterministic).
fn strip_debug(kind: &EventKind) -> String {
    format!("{kind:?}")
}

#[test]
fn sim_and_thread_drivers_emit_the_same_logical_events() {
    let sim = run_sim_at(ObsLevel::Trace, 3);
    let sim_norm = normalize(sim.obs.as_ref().expect("sim obs"));
    for round in 0..3 {
        let thr = run_threads_at(ObsLevel::Trace, 3);
        assert_eq!(thr.outputs, sim.outputs, "round {round}");
        let thr_norm = normalize(thr.obs.as_ref().expect("thread obs"));
        assert_eq!(
            thr_norm.keys().collect::<Vec<_>>(),
            sim_norm.keys().collect::<Vec<_>>(),
            "round {round}: same (machine, operator) hosts"
        );
        for (key, sim_events) in &sim_norm {
            assert_eq!(
                &thr_norm[key], sim_events,
                "round {round}: events of machine {} op {}",
                key.0, key.1
            );
        }
    }
}

#[test]
fn metrics_reconcile_with_engine_result() {
    for machines in [1, 3] {
        let r = run_sim_at(ObsLevel::Metrics, machines);
        let obs = r.obs.as_ref().expect("metrics collected");
        assert!(obs.events.is_empty(), "no event storage at Metrics level");

        let emitted: u64 = r.op_stats.iter().map(|s| s.emitted).sum();
        assert_eq!(obs.metrics.total_emitted(), emitted, "emitted elements");
        assert_eq!(obs.metrics.total_hoist_hits(), r.hoist_hits, "hoist hits");
        assert_eq!(obs.metrics.decisions_broadcast, r.decisions, "decisions");

        let output_elems: u64 = r.outputs.values().map(|v| v.len() as u64).sum();
        assert_eq!(
            obs.metrics.total_sink_written(),
            output_elems,
            "sink writes = output collection sizes"
        );

        // Every opened bag closes, on every machine.
        for (op, m) in obs.metrics.ops.iter().enumerate() {
            assert_eq!(
                m.bags_opened, m.bags_finalized,
                "op {op}: opened == finalized"
            );
        }
        // Conditional-send decisions partition into sent + dropped.
        let sent: u64 = obs.metrics.edges.iter().map(|e| e.sent_bags).sum();
        let dropped: u64 = obs.metrics.edges.iter().map(|e| e.dropped_bags).sum();
        let per_op_sent: u64 = obs.metrics.ops.iter().map(|m| m.cond_sent).sum();
        let per_op_dropped: u64 = obs.metrics.ops.iter().map(|m| m.cond_dropped).sum();
        assert_eq!(sent, per_op_sent, "edge/op sent agree");
        assert_eq!(dropped, per_op_dropped, "edge/op dropped agree");
        assert!(dropped > 0, "the branch must discard some bags");
    }
}

#[test]
fn trace_level_metrics_equal_metrics_level_metrics() {
    let a = run_sim_at(ObsLevel::Metrics, 3);
    let b = run_sim_at(ObsLevel::Trace, 3);
    let (ma, mb) = (&a.obs.unwrap().metrics, &b.obs.unwrap().metrics);
    assert_eq!(ma.decisions_broadcast, mb.decisions_broadcast);
    assert_eq!(ma.path_appends, mb.path_appends);
    assert_eq!(ma.total_emitted(), mb.total_emitted());
    assert_eq!(ma.total_cond_dropped(), mb.total_cond_dropped());
    assert_eq!(ma.ops.len(), mb.ops.len());
    for (x, y) in ma.ops.iter().zip(mb.ops.iter()) {
        assert_eq!(x.bags_opened, y.bags_opened);
        assert_eq!(x.elements_emitted, y.elements_emitted);
        assert_eq!(x.cond_sent, y.cond_sent);
        assert_eq!(x.cond_dropped, y.cond_dropped);
    }
}

/// Splits the flat `traceEvents` array into record strings. The writer
/// emits one object per record with no nesting deeper than `args`, so a
/// brace counter suffices.
fn split_records(json: &str) -> Vec<String> {
    let start = json.find('[').unwrap() + 1;
    let end = json.rfind(']').unwrap();
    let body = &json[start..end];
    let mut records = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in body.chars() {
        match c {
            '{' => {
                depth += 1;
                current.push(c);
            }
            '}' => {
                depth -= 1;
                current.push(c);
                if depth == 0 {
                    records.push(std::mem::take(&mut current));
                }
            }
            ',' if depth == 0 => {}
            _ => current.push(c),
        }
    }
    records
}

fn field<'a>(record: &'a str, name: &str) -> &'a str {
    let pat = format!("\"{name}\":");
    let at = record
        .find(&pat)
        .unwrap_or_else(|| panic!("{name} in {record}"))
        + pat.len();
    let rest = &record[at..];
    let len = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..len].trim_matches('"')
}

#[test]
fn chrome_trace_is_valid_json_with_paired_durations() {
    let r = run_sim_at(ObsLevel::Trace, 3);
    let obs = r.obs.as_ref().unwrap();
    let json = chrome_trace(obs, &r.op_stats);
    validate_json(&json).unwrap_or_else(|e| panic!("invalid JSON: {e}"));

    // Replay the records in array order (the writer sorts by timestamp):
    // every lane's B/E events must balance and never close an unopened
    // duration, and every non-metadata record needs a parseable timestamp.
    let mut depth: BTreeMap<(String, String), i64> = BTreeMap::new();
    let mut b_count = 0u64;
    let mut e_count = 0u64;
    let mut flow_starts: BTreeSet<String> = BTreeSet::new();
    let mut flow_finishes: BTreeSet<String> = BTreeSet::new();
    for rec in split_records(&json) {
        let ph = field(&rec, "ph");
        if ph == "M" {
            continue;
        }
        let ts: f64 = field(&rec, "ts").parse().expect("numeric ts");
        assert!(ts >= 0.0);
        let lane = (
            field(&rec, "pid").to_string(),
            field(&rec, "tid").to_string(),
        );
        match ph {
            "B" => {
                b_count += 1;
                *depth.entry(lane).or_default() += 1;
            }
            "E" => {
                e_count += 1;
                let d = depth.entry(lane.clone()).or_default();
                *d -= 1;
                assert!(*d >= 0, "E without open B on lane {lane:?}");
            }
            "i" => {}
            "s" => {
                flow_starts.insert(field(&rec, "id").to_string());
            }
            "f" => {
                assert_eq!(field(&rec, "bp"), "e", "flow finish binds enclosing slice");
                assert!(
                    flow_starts.contains(field(&rec, "id")),
                    "flow finish after its start"
                );
                flow_finishes.insert(field(&rec, "id").to_string());
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(b_count > 0, "durations present");
    assert_eq!(b_count, e_count, "every B has an E");
    assert!(depth.values().all(|&d| d == 0), "all lanes balance");
    assert!(
        !flow_starts.is_empty(),
        "producer→consumer flow arrows present"
    );
    assert_eq!(flow_starts, flow_finishes, "every flow start has a finish");

    // Lane metadata names machines and operators.
    assert!(json.contains("\"process_name\""));
    assert!(json.contains("\"thread_name\""));
    assert!(json.contains("control-flow"));
}

#[test]
fn recording_is_free_in_virtual_time() {
    // The tracer must never perturb the simulation: recording charges no
    // virtual time and reads the clock only when storing events, so the
    // simulated schedule — end time, message count, outputs — is
    // bit-identical whether observability is off, counting, or tracing.
    // (This is the strongest form of the "disabled tracer adds <2% to
    // step time" guard: the added virtual cost is exactly zero.)
    let off = run_sim_at(ObsLevel::Off, 4);
    let metrics = run_sim_at(ObsLevel::Metrics, 4);
    let trace = run_sim_at(ObsLevel::Trace, 4);
    assert!(off.obs.is_none());
    assert_eq!(off.sim.end_time, metrics.sim.end_time, "Metrics is free");
    assert_eq!(off.sim.end_time, trace.sim.end_time, "Trace is free");
    assert_eq!(off.sim.messages, trace.sim.messages);
    assert_eq!(off.outputs, trace.outputs);
    assert_eq!(off.path, trace.path);
}

#[test]
fn disabled_tracer_wall_overhead_is_negligible() {
    // Wall-clock guard for the Off level: the per-event instrumentation
    // sites reduce to a single branch. Run the same simulation with the
    // seed-equivalent configuration (Off) repeatedly and once interleaved;
    // the median must stay within 2x of the fastest observed step (a loose
    // bound that still catches accidental always-on clock reads or
    // allocation in the record path).
    let time = |level: ObsLevel| {
        let t0 = std::time::Instant::now();
        let r = run_sim_at(level, 4);
        assert!(!r.outputs.is_empty());
        t0.elapsed()
    };
    // Warm up, then sample.
    for _ in 0..2 {
        time(ObsLevel::Off);
    }
    let mut off: Vec<_> = (0..7).map(|_| time(ObsLevel::Off)).collect();
    off.sort();
    let median_off = off[off.len() / 2];
    let mut trace: Vec<_> = (0..7).map(|_| time(ObsLevel::Trace)).collect();
    trace.sort();
    let median_trace = trace[trace.len() / 2];
    // Off must not be slower than full tracing beyond noise — if the
    // "disabled" path did real work, it would show up here.
    assert!(
        median_off <= median_trace * 2,
        "Off ({median_off:?}) should not be slower than Trace ({median_trace:?})"
    );
}

#[test]
fn explain_report_renders_counters_and_fallback() {
    let traced = run_sim_at(ObsLevel::Trace, 3);
    let report = mitos_core::obs::explain_report(&traced);
    assert!(report.contains("operator"), "{report}");
    assert!(report.contains("c.sent"), "{report}");
    assert!(report.contains("input rules"), "{report}");
    assert!(report.contains("decisions broadcast"), "{report}");
    assert!(report.contains("events recorded"), "{report}");
    assert!(
        report.contains("same-block") || report.contains("latest"),
        "{report}"
    );

    let plain = run_sim_at(ObsLevel::Off, 3);
    let fallback = mitos_core::obs::explain_report(&plain);
    assert!(fallback.contains("operator"), "{fallback}");
    assert!(
        fallback.contains("observability enabled"),
        "hints at --explain/--trace: {fallback}"
    );
}

#[test]
fn thread_driver_reports_wall_clock_time() {
    let r = run_threads_at(ObsLevel::Trace, 2);
    assert!(r.sim.end_time > 0, "wall-clock ns duration");
    let obs = r.obs.unwrap();
    assert!(!obs.events.is_empty());
    // Every event timestamp fits inside the measured run window.
    assert!(obs.events.iter().all(|e| e.t_ns <= r.sim.end_time));
}

#[test]
fn outputs_unaffected_by_levels_under_threads() {
    let off = run_threads_at(ObsLevel::Off, 2);
    let trace = run_threads_at(ObsLevel::Trace, 2);
    assert_eq!(off.outputs, trace.outputs);
    assert_eq!(off.outputs["t"], vec![Value::I64(4)]);
}
