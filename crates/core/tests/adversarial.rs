//! Adversarial delivery-order tests: the runtime's coordination protocol
//! must tolerate ANY interleaving of in-flight messages (the network model
//! only guarantees delivery, not order — the paper's Challenge 3 taken to
//! the extreme). We drive the worker state machines by hand with a manual
//! message bus and pathological scheduling policies.

use mitos_core::graph::LogicalGraph;
use mitos_core::path::PathRules;
use mitos_core::rt::{EngineConfig, EngineShared, Msg, Net};
use mitos_core::{extract_outputs, Worker};
use mitos_fs::InMemoryFs;
use mitos_lang::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

struct BusNet {
    outbox: Vec<(u16, Msg)>,
}

impl Net for BusNet {
    fn send(&mut self, machine: u16, msg: Msg, _bytes: u64) {
        self.outbox.push((machine, msg));
    }
    fn charge(&mut self, _ns: u64) {}
    fn schedule(&mut self, _delay_ns: u64, machine: u16, msg: Msg) {
        self.outbox.push((machine, msg));
    }
    fn now_ns(&mut self) -> u64 {
        0
    }
}

/// How the scheduler picks the next in-flight message.
enum Policy {
    Fifo,
    Lifo,
    Random(StdRng),
    /// Punctuation (BagDone) before data, decisions last — a worst case
    /// for naive completion tracking.
    DonesFirst,
}

fn run_with_policy(src: &str, machines: u16, mut policy: Policy, fs: &InMemoryFs) {
    let func = mitos_ir::compile_str(src).unwrap();
    let graph = LogicalGraph::build(&func).unwrap();
    let rules = PathRules::build(&graph);
    let telemetry = mitos_core::obs::TelemetryHub::new(machines, graph.nodes.len());
    let flow = mitos_core::FlowRegistry::new(machines, graph.edges.len());
    let mem = mitos_core::MemRegistry::new(machines, graph.nodes.len());
    let shared = Arc::new(EngineShared {
        graph,
        rules,
        config: EngineConfig::default(),
        fs: fs.clone(),
        machines,
        telemetry,
        flight: mitos_core::FlightRecorder::new(machines),
        flow,
        mem,
    });
    let mut workers: Vec<Worker> = (0..machines)
        .map(|m| Worker::new(shared.clone(), m))
        .collect();
    let mut inflight: Vec<(u16, Msg)> = (0..machines).map(|m| (m, Msg::Start)).collect();
    let mut steps = 0u64;
    while !inflight.is_empty() {
        steps += 1;
        assert!(steps < 2_000_000, "runaway message loop");
        let idx = match &mut policy {
            Policy::Fifo => 0,
            Policy::Lifo => inflight.len() - 1,
            Policy::Random(rng) => rng.gen_range(0..inflight.len()),
            Policy::DonesFirst => inflight
                .iter()
                .position(|(_, m)| matches!(m, Msg::BagDone { .. }))
                .or_else(|| {
                    inflight
                        .iter()
                        .position(|(_, m)| !matches!(m, Msg::Decision { .. }))
                })
                .unwrap_or(0),
        };
        let (machine, msg) = inflight.remove(idx);
        let mut net = BusNet { outbox: Vec::new() };
        workers[machine as usize].handle(msg, &mut net);
        if let Some(e) = &workers[machine as usize].error {
            panic!("worker {machine} failed: {e}");
        }
        inflight.extend(net.outbox);
    }
    assert!(
        workers.iter().all(|w| w.path().exited() && w.idle()),
        "all workers must finish"
    );
}

fn check_all_policies(src: &str, machines: u16, setup: impl Fn(&InMemoryFs)) {
    // Ground truth.
    let ref_fs = InMemoryFs::new();
    setup(&ref_fs);
    let func = mitos_ir::compile_str(src).unwrap();
    let reference = mitos_ir::interpret(&func, &ref_fs, mitos_ir::InterpConfig::default()).unwrap();

    let policies: Vec<(&str, Policy)> = vec![
        ("fifo", Policy::Fifo),
        ("lifo", Policy::Lifo),
        ("dones-first", Policy::DonesFirst),
        ("random-7", Policy::Random(StdRng::seed_from_u64(7))),
        ("random-99", Policy::Random(StdRng::seed_from_u64(99))),
        ("random-2024", Policy::Random(StdRng::seed_from_u64(2024))),
    ];
    for (name, policy) in policies {
        let fs = InMemoryFs::new();
        setup(&fs);
        run_with_policy(src, machines, policy, &fs);
        let outputs = extract_outputs(&fs);
        assert_eq!(
            outputs,
            reference.canonical_outputs(),
            "policy {name} diverged"
        );
        assert_eq!(fs.snapshot(), ref_fs.snapshot(), "policy {name} files");
    }
}

#[test]
fn visit_count_under_any_delivery_order() {
    check_all_policies(
        r#"
        yesterday = empty;
        day = 1;
        do {
            visits = readFile("log" + day);
            counts = visits.map(x => (x, 1)).reduceByKey((a, b) => a + b);
            if (day != 1) {
                diffs = (counts join yesterday).map(t => abs(t[1] - t[2]));
                writeFile(diffs.sum(), "diff" + day);
            }
            yesterday = counts;
            day = day + 1;
        } while (day <= 4);
        "#,
        3,
        |fs| {
            for d in 1..=4i64 {
                fs.put(
                    format!("log{d}"),
                    (0..30).map(|i| Value::I64((i * d) % 6)).collect::<Vec<_>>(),
                );
            }
        },
    );
}

#[test]
fn branches_and_joins_under_any_delivery_order() {
    check_all_policies(
        r#"
        total = 0;
        i = 0;
        while (i < 5) {
            if (i % 2 == 0) {
                x = bag((1, i * 10), (2, i));
            } else {
                x = bag((1, i * 100));
            }
            y = bag((1, 7), (2, 8));
            total = total + (x join y).map(t => t[1] + t[2]).sum();
            i = i + 1;
        }
        output(total, "t");
        "#,
        4,
        |_| {},
    );
}

#[test]
fn nested_loops_under_any_delivery_order() {
    check_all_policies(
        r#"
        acc = 0;
        a = 0;
        while (a < 2) {
            inv = bag((1, a), (2, a + 1));
            b = 0;
            while (b < 3) {
                probe = bag((1, b));
                acc = acc + (inv join probe).count();
                b = b + 1;
            }
            a = a + 1;
        }
        output(acc, "acc");
        "#,
        2,
        |_| {},
    );
}
