//! Live-telemetry and stall-watchdog tests: deterministic simulator
//! snapshots that charge zero virtual time, always-on hub counters at
//! `ObsLevel::Off`, an adversarial thread-driver stall (a control-flow
//! manager that withholds its condition `Decision` broadcasts), and
//! per-worker event-timestamp monotonicity over `Net::now_ns`.

use mitos_core::graph::LogicalGraph;
use mitos_core::obs::watchdog::{Awaited, OpStall};
use mitos_core::obs::{ObsLevel, TelemetryHub};
use mitos_core::path::PathRules;
use mitos_core::rt::{EngineConfig, EngineShared, FaultPlan, Msg, Net};
use mitos_core::{run_sim_live, run_threads, run_threads_live, EngineResult, Worker};
use mitos_fs::InMemoryFs;
use mitos_lang::Value;
use mitos_sim::SimConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A loop whose body shuffles (`reduceByKey`): every map instance feeds
/// every reduce instance, so a wedged machine leaves the others' hosts
/// visibly awaiting input punctuations.
const LOOP_SRC: &str = r#"
    total = 0;
    i = 1;
    while (i <= 3) {
        counts = readFile("log").map(x => (x % 4, 1)).reduceByKey((a, b) => a + b);
        total = total + counts.count();
        i = i + 1;
    }
    output(total, "t");
"#;

fn loop_fs() -> InMemoryFs {
    let fs = InMemoryFs::new();
    fs.put(
        "log".to_string(),
        (0..40).map(Value::I64).collect::<Vec<_>>(),
    );
    fs
}

fn run_sampled_sim(interval_ns: u64) -> (EngineResult, Vec<mitos_core::Snapshot>) {
    let func = mitos_ir::compile_str(LOOP_SRC).unwrap();
    let fs = loop_fs();
    let mut streamed = Vec::new();
    let cfg = EngineConfig::new().with_sample_interval_ns(interval_ns);
    let r = run_sim_live(&func, &fs, cfg, SimConfig::with_machines(3), &mut |s| {
        streamed.push(s.clone())
    })
    .unwrap();
    (r, streamed)
}

#[test]
fn sim_snapshots_are_deterministic_and_cost_zero_virtual_time() {
    let (base, none) = run_sampled_sim(0);
    assert!(base.snapshots.is_empty() && none.is_empty());

    // ~7 snapshots regardless of the cost model's absolute makespan.
    let interval = (base.sim.end_time / 7).max(1);
    let (r1, s1) = run_sampled_sim(interval);
    let (r2, s2) = run_sampled_sim(interval);

    assert!(
        !r1.snapshots.is_empty(),
        "job spans several sample intervals"
    );
    assert_eq!(r1.snapshots, r2.snapshots, "same program, same snapshots");
    assert_eq!(s1, r1.snapshots, "callback stream == collected snapshots");
    assert_eq!(s2, r2.snapshots);

    // Sampling is free: bit-identical simulator statistics and outputs.
    assert_eq!(r1.sim, base.sim, "sampling must charge zero virtual time");
    assert_eq!(r1.outputs, base.outputs);
    assert_eq!(r1.path, base.path);

    // Snapshots land at exact virtual-time multiples of the interval.
    for (k, s) in r1.snapshots.iter().enumerate() {
        assert_eq!(s.t_ns, (k as u64 + 1) * interval);
        assert_eq!(s.workers.len(), 3);
    }
    // Every counter is monotone between consecutive snapshots.
    for pair in r1.snapshots.windows(2) {
        assert!(pair[1].total_elements_out() >= pair[0].total_elements_out());
        for (a, b) in pair[0].workers.iter().zip(&pair[1].workers) {
            assert!(b.last_progress_ns >= a.last_progress_ns);
            assert!(b.msgs_handled >= a.msgs_handled);
            assert!(b.path_depth >= a.path_depth);
            assert!(b.elements_out >= a.elements_out);
        }
    }
    let last = r1.snapshots.last().unwrap();
    assert!(last.total_elements_out() > 0);
    assert!(last.max_path_depth() > 0);
}

#[test]
fn hub_counts_at_obs_off_without_recording_events() {
    let (base, _) = run_sampled_sim(0);
    assert!(base.obs.is_none(), "ObsLevel::Off records nothing");

    let (r, _) = run_sampled_sim((base.sim.end_time / 5).max(1));
    assert!(
        r.obs.is_none(),
        "sampling must not switch event recording on"
    );
    assert!(!r.snapshots.is_empty());
    assert!(
        r.snapshots.last().unwrap().total_elements_out() > 0,
        "the hub counts even at ObsLevel::Off"
    );
    assert_eq!(r.sim, base.sim, "the always-on hub adds no virtual cost");
    assert_eq!(r.outputs, base.outputs);
}

#[test]
fn withheld_decision_broadcast_trips_watchdog() {
    let func = mitos_ir::compile_str(LOOP_SRC).unwrap();
    let fs = loop_fs();
    let deadline = 150_000_000; // 150ms wall clock
    let cfg = EngineConfig::new()
        .with_stall_deadline_ns(deadline)
        .with_faults(FaultPlan::new().with_withhold_decisions(true));
    // The stall report's operator ids refer to the graph the engine
    // actually ran, i.e. the post-fusion plan.
    let graph = mitos_core::planned_graph(&func, &cfg).unwrap();
    let started = Instant::now();
    let err = run_threads(&func, &fs, cfg, 2).expect_err("withheld decisions must stall the run");
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(150),
        "the watchdog waits out the deadline, fired after {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "the watchdog fires promptly once the deadline passes, took {elapsed:?}"
    );
    assert!(err.message.contains("stall watchdog"), "{}", err.message);

    let report = *err.stall.expect("structured StallReport attached");
    assert_eq!(report.deadline_ns, deadline);
    assert!(report.idle_ns > deadline);
    assert_eq!(report.workers.len(), 2);

    // The parked worker names the condition whose broadcast was withheld.
    let conditions: Vec<String> = graph
        .nodes
        .iter()
        .filter(|n| n.condition.is_some())
        .map(|n| n.name.to_string())
        .collect();
    assert!(!conditions.is_empty());
    let parked: Vec<_> = report
        .workers
        .iter()
        .filter(|w| w.awaiting_decision.is_some())
        .collect();
    assert!(
        !parked.is_empty(),
        "a worker must be parked on a decision:\n{}",
        report.render()
    );
    for w in &parked {
        assert!(!w.exited);
        let (pos, cond) = w.awaiting_decision.as_ref().unwrap();
        assert_eq!(
            *pos, w.path_depth,
            "the missing decision is for the position right after the \
             worker's current path depth"
        );
        assert!(
            conditions.contains(cond),
            "reported condition `{cond}` must be a condition node of the \
             graph ({conditions:?})"
        );
    }

    // Somewhere a host awaits an input bag the parked worker will never
    // complete; the report names the operator and the awaited input.
    let awaiting_input: Vec<&OpStall> = report
        .workers
        .iter()
        .flat_map(|w| w.ops.iter())
        .filter(|o| matches!(o.awaited, Some(Awaited::InputBag { .. })))
        .collect();
    assert!(
        !awaiting_input.is_empty(),
        "a host must be awaiting input:\n{}",
        report.render()
    );
    for o in &awaiting_input {
        assert_eq!(
            o.name.as_str(),
            &*graph.nodes[o.op as usize].name,
            "the report names the blocked operator"
        );
        let Some(Awaited::InputBag {
            input,
            edge,
            received,
            announced,
            done_senders,
            expected_senders,
            ..
        }) = &o.awaited
        else {
            unreachable!()
        };
        let e = &graph.edges[*edge as usize];
        assert_eq!(e.dst, o.op, "the awaited edge feeds the blocked operator");
        assert_eq!(e.dst_input, *input as usize, "...at the named input");
        assert!(
            done_senders < expected_senders || received < announced,
            "the awaited input is genuinely incomplete"
        );
    }

    // The rendered text mentions both stall causes.
    let text = report.render();
    assert!(
        text.contains("awaiting decision for path position"),
        "{text}"
    );
    assert!(text.contains("awaiting input"), "{text}");
}

/// The pre-`FaultPlan` setter still works: it now writes through to
/// `EngineConfig::faults.withhold_decisions`.
#[test]
#[allow(deprecated)]
fn deprecated_withhold_setter_folds_into_fault_plan() {
    let cfg = EngineConfig::new().with_fault_withhold_decisions(true);
    assert!(cfg.faults.withhold_decisions);
    assert!(cfg.faults.is_active(), "withholding is an active fault");
    assert!(
        !cfg.faults.net_faults_active(),
        "withholding alone must not arm the delivery protocol"
    );
    let off = EngineConfig::new().with_fault_withhold_decisions(false);
    assert!(!off.faults.withhold_decisions);
    assert_eq!(off.faults, FaultPlan::default());
}

/// The migrated path on the simulator: a withheld decision broadcast is
/// diagnosed as quiescence-without-exit, and the stall report names the
/// injected fault.
#[test]
fn withheld_decisions_on_sim_name_the_fault_in_the_stall_report() {
    let func = mitos_ir::compile_str(LOOP_SRC).unwrap();
    let fs = loop_fs();
    let cfg = EngineConfig::new().with_faults(FaultPlan::new().with_withhold_decisions(true));
    let err = mitos_core::run_sim(&func, &fs, cfg, SimConfig::with_machines(3))
        .expect_err("withheld decisions must stall the simulated run");
    assert!(err.message.contains("quiesced"), "{}", err.message);
    let report = *err.stall.expect("structured StallReport attached");
    let fault = report.fault.as_deref().expect("stall names the fault");
    assert!(
        fault.contains("decision broadcasts withheld"),
        "fault note: {fault}"
    );
    assert!(
        report.render().contains("injected faults:"),
        "{}",
        report.render()
    );
}

#[test]
fn thread_driver_snapshots_progress_monotonically() {
    let func = mitos_ir::compile_str(LOOP_SRC).unwrap();
    let fs = loop_fs();
    // interval = 1ns: the monitor samples on every 200µs wake-up, and it
    // always samples at least once before detecting quiescence.
    let cfg = EngineConfig::new().with_sample_interval_ns(1);
    let mut streamed = 0usize;
    let r = run_threads_live(&func, &fs, cfg, 3, &mut |_| streamed += 1).unwrap();
    assert!(!r.snapshots.is_empty(), "monitor samples before quiescing");
    assert_eq!(streamed, r.snapshots.len());
    for pair in r.snapshots.windows(2) {
        assert!(pair[1].t_ns > pair[0].t_ns, "wall-clock sample times grow");
        for (a, b) in pair[0].workers.iter().zip(&pair[1].workers) {
            // Single writer per counter + per-atomic coherence: the
            // sampler can never observe a worker's progress moving
            // backwards, even with relaxed ordering.
            assert!(b.last_progress_ns >= a.last_progress_ns);
            assert!(b.msgs_handled >= a.msgs_handled);
            assert!(b.elements_out >= a.elements_out);
        }
    }
    // 40 elements keyed by x % 4 -> 4 keys; count() = 4; 3 iterations.
    assert_eq!(r.outputs["t"], vec![Value::I64(12)]);
}

/// A manual bus (as in `adversarial.rs`) whose clock is the real monotonic
/// wall clock, mimicking the thread driver's `Net::now_ns`.
struct ClockNet<'a> {
    outbox: Vec<(u16, Msg)>,
    epoch: &'a Instant,
}

impl Net for ClockNet<'_> {
    fn send(&mut self, machine: u16, msg: Msg, _bytes: u64) {
        self.outbox.push((machine, msg));
    }
    fn charge(&mut self, _ns: u64) {}
    fn schedule(&mut self, _delay_ns: u64, machine: u16, msg: Msg) {
        self.outbox.push((machine, msg));
    }
    fn now_ns(&mut self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

#[test]
fn per_worker_event_timestamps_are_monotone_over_net_now_ns() {
    let func = mitos_ir::compile_str(LOOP_SRC).unwrap();
    let graph = LogicalGraph::build(&func).unwrap();
    let rules = PathRules::build(&graph);
    let machines: u16 = 3;
    let telemetry = TelemetryHub::new(machines, graph.nodes.len());
    let flow = mitos_core::FlowRegistry::new(machines, graph.edges.len());
    let mem = mitos_core::MemRegistry::new(machines, graph.nodes.len());
    let fs = loop_fs();
    let shared = Arc::new(EngineShared {
        graph,
        rules,
        config: EngineConfig::new().with_obs(ObsLevel::Trace),
        fs: fs.clone(),
        machines,
        telemetry,
        flight: mitos_core::FlightRecorder::new(machines),
        flow,
        mem,
    });
    let mut workers: Vec<Worker> = (0..machines)
        .map(|m| Worker::new(shared.clone(), m))
        .collect();
    let epoch = Instant::now();
    let mut inflight: Vec<(u16, Msg)> = (0..machines).map(|m| (m, Msg::Start)).collect();
    let mut steps = 0u64;
    while let Some((machine, msg)) = inflight.pop() {
        steps += 1;
        assert!(steps < 2_000_000, "runaway message loop");
        let mut net = ClockNet {
            outbox: Vec::new(),
            epoch: &epoch,
        };
        workers[machine as usize].handle(msg, &mut net);
        assert!(workers[machine as usize].error.is_none());
        inflight.extend(net.outbox);
    }
    assert!(workers.iter().all(|w| w.path().exited() && w.idle()));
    for (m, w) in workers.iter_mut().enumerate() {
        let buf = w.take_obs();
        let events = buf.events();
        assert!(!events.is_empty(), "worker {m} records events at Trace");
        assert!(events.iter().all(|e| e.machine == m as u16));
        // The per-worker stream (pre-merge, in recording order): the
        // `Net::now_ns` timestamps must never step backwards.
        for pair in events.windows(2) {
            assert!(
                pair[1].t_ns >= pair[0].t_ns,
                "worker {m}: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
        // The hub's last-progress timestamp was fed from the same clock.
        assert!(shared.telemetry.worker_progress_ns(m as u16) > 0);
    }
}
