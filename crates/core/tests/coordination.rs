//! Cross-iteration coordination tests: loop-carried state, phis, and
//! conditional edges, checked on multi-machine simulated clusters —
//! including under injected faults (`fault_*` tests): the Sec. 5.2.3
//! input-bag selection rules and the Sec. 5.2.4 conditional-output
//! discard must survive duplicated and reordered condition-decision
//! broadcasts bit-identically.

use mitos_core::rt::{EngineConfig, FaultPlan};
use mitos_core::{run_sim, run_threads, EngineResult};
use mitos_fs::InMemoryFs;
use mitos_lang::Value;
use mitos_sim::SimConfig;

fn run(src: &str, machines: u16) -> EngineResult {
    let fs = InMemoryFs::new();
    for d in 1..=3 {
        fs.put(format!("log{d}"), vec![Value::I64(1), Value::I64(2)]);
    }
    let func = mitos_ir::compile_str(src).unwrap();
    run_sim(
        &func,
        &fs,
        EngineConfig::default(),
        SimConfig::with_machines(machines),
    )
    .unwrap()
}

#[test]
fn loop_carried_alias_forwards_previous_iteration() {
    let src = r#"
        yesterday = empty;
        day = 1;
        do {
            counts = readFile("log" + day).map(x => (x, day * 10));
            output(yesterday, "y");
            yesterday = counts;
            day = day + 1;
        } while (day <= 3);
    "#;
    for machines in [1, 2, 4] {
        let r = run(src, machines);
        // Day 1 contributes nothing; days 2 and 3 output the previous
        // day's counts.
        let mut expected: Vec<Value> = vec![
            Value::tuple([Value::I64(1), Value::I64(10)]),
            Value::tuple([Value::I64(2), Value::I64(10)]),
            Value::tuple([Value::I64(1), Value::I64(20)]),
            Value::tuple([Value::I64(2), Value::I64(20)]),
        ];
        expected.sort_unstable();
        assert_eq!(r.outputs["y"], expected, "machines={machines}");
    }
}

#[test]
fn join_inside_branch_matches_previous_day() {
    let src = r#"
        yesterday = empty;
        day = 1;
        do {
            counts = readFile("log" + day).map(x => (x, day * 10));
            if (day != 1) {
                j = counts join yesterday;
                output(j, "joined");
            }
            yesterday = counts;
            day = day + 1;
        } while (day <= 3);
    "#;
    for machines in [1, 3] {
        let r = run(src, machines);
        let j = &r.outputs["joined"];
        assert_eq!(j.len(), 4, "machines={machines}: {j:?}");
        for v in j {
            let t = v.as_tuple().unwrap();
            assert_eq!(
                t[1].as_i64().unwrap() - t[2].as_i64().unwrap(),
                10,
                "today minus yesterday, machines={machines}: {v:?}"
            );
        }
    }
}

#[test]
fn distributed_path_matches_reference_interpreter() {
    let src = r#"
        s = 0;
        for i = 1 to 5 {
            if (i % 2 == 0) { s = s + i; } else { s = s - i; }
        }
        output(s, "s");
    "#;
    let func = mitos_ir::compile_str(src).unwrap();
    let ref_fs = InMemoryFs::new();
    let reference = mitos_ir::interpret(&func, &ref_fs, mitos_ir::InterpConfig::default()).unwrap();
    let fs = InMemoryFs::new();
    let r = run_sim(
        &func,
        &fs,
        EngineConfig::default(),
        SimConfig::with_machines(5),
    )
    .unwrap();
    assert_eq!(r.path, reference.path);
    assert_eq!(r.outputs, reference.canonical_outputs());
}

#[test]
fn untaken_branches_do_not_ship_bags() {
    // `big` is consumed only inside the if-branch. When the branch is never
    // taken, the conditional edges (Sec. 5.2.4) must drop the bag at the
    // producer instead of shipping it.
    let template = |threshold: i64| {
        format!(
            r#"
            hits = 0;
            for i = 1 to 6 {{
                big = readFile("blob").map(x => (x, i));
                if (i > {threshold}) {{
                    joined = big join big;
                    hits = hits + joined.count();
                }}
            }}
            output(hits, "hits");
            "#
        )
    };
    let run = |threshold: i64| {
        let fs = InMemoryFs::new();
        fs.put("blob", (0..2000).map(Value::I64).collect::<Vec<_>>());
        let func = mitos_ir::compile_str(&template(threshold)).unwrap();
        run_sim(
            &func,
            &fs,
            EngineConfig::default(),
            SimConfig::with_machines(4),
        )
        .unwrap()
    };
    let always = run(0); // branch taken every iteration
    let never = run(100); // branch never taken
    assert_eq!(never.outputs["hits"], vec![Value::I64(0)]);
    assert!(
        never.sim.remote_bytes * 4 < always.sim.remote_bytes,
        "dropping unneeded bags must save the shuffle traffic: \
         never={} always={}",
        never.sim.remote_bytes,
        always.sim.remote_bytes
    );
}

#[test]
fn pipelined_and_barrier_paths_are_identical() {
    let src = r#"
        s = 0;
        for i = 1 to 8 {
            if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
        }
        output(s, "s");
    "#;
    let func = mitos_ir::compile_str(src).unwrap();
    let run = |pipelined: bool| {
        let fs = InMemoryFs::new();
        run_sim(
            &func,
            &fs,
            EngineConfig::new().with_pipelining(pipelined),
            SimConfig::with_machines(3),
        )
        .unwrap()
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a.path, b.path);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.decisions, b.decisions, "same control-flow decisions");
}

/// A nested-loop program that leans on both coordination mechanisms under
/// test: the inner loop's join picks its build-side input bag via the
/// Sec. 5.2.3 prefix rules (the outer bag `x` is invariant across inner
/// iterations), and the conditional `output` inside the `if` exercises the
/// Sec. 5.2.4 conditional-output discard on every untaken iteration.
const NESTED_COND_SRC: &str = r#"
    total = 0;
    i = 0;
    while (i < 3) {
        x = bag((1, i), (2, i + 10));
        j = 0;
        while (j < 2) {
            y = bag((1, j), (2, j));
            z = x join y;
            if ((i + j) % 2 == 0) {
                output(z, "taken");
            }
            total = total + z.count();
            j = j + 1;
        }
        i = i + 1;
    }
    output(total, "t");
"#;

/// Runs [`NESTED_COND_SRC`] on the simulator with `plan` installed and
/// metrics collection on.
fn run_nested_with_plan(plan: FaultPlan, machines: u16) -> EngineResult {
    let func = mitos_ir::compile_str(NESTED_COND_SRC).unwrap();
    let fs = InMemoryFs::new();
    run_sim(
        &func,
        &fs,
        EngineConfig::new()
            .with_obs(mitos_core::ObsLevel::Metrics)
            .with_faults(plan),
        SimConfig::with_machines(machines),
    )
    .unwrap()
}

/// Sec. 5.2.3 + 5.2.4 under **duplicated** condition-decision broadcasts:
/// receiver-side dedup must make input-bag selection and conditional-output
/// discard land on exactly the fault-free result.
#[test]
fn fault_duplicated_decisions_preserve_selection_and_discard() {
    let clean = run_nested_with_plan(FaultPlan::default(), 3);
    let dup = run_nested_with_plan(FaultPlan::new().with_duplicate(0.5).with_seed(11), 3);
    assert!(
        dup.sim.faults_duplicated > 0,
        "the plan must actually duplicate: {:?}",
        dup.sim
    );
    assert_eq!(dup.outputs, clean.outputs, "outputs under duplication");
    assert_eq!(dup.path, clean.path, "execution path under duplication");
    let cond_dropped = |r: &EngineResult| r.obs.as_ref().unwrap().metrics.total_cond_dropped();
    assert!(
        cond_dropped(&clean) > 0,
        "the program must exercise conditional-output discard"
    );
    assert_eq!(
        cond_dropped(&dup),
        cond_dropped(&clean),
        "5.2.4 discards exactly the same bags under duplicated decisions"
    );
}

/// Sec. 5.2.3 + 5.2.4 under **reordered** condition-decision broadcasts:
/// the path-prefix coordination is order-tolerant by design, so late
/// decisions must not change which input bags are selected or which
/// conditional outputs are discarded.
#[test]
fn fault_reordered_decisions_preserve_selection_and_discard() {
    let clean = run_nested_with_plan(FaultPlan::default(), 3);
    let reord = run_nested_with_plan(
        FaultPlan::new()
            .with_reorder(0.6)
            .with_reorder_delay_ns(800_000)
            .with_seed(23),
        3,
    );
    assert!(
        reord.sim.faults_reordered > 0,
        "the plan must actually reorder: {:?}",
        reord.sim
    );
    assert_eq!(reord.outputs, clean.outputs, "outputs under reordering");
    assert_eq!(reord.path, clean.path, "execution path under reordering");
    let cond_dropped = |r: &EngineResult| r.obs.as_ref().unwrap().metrics.total_cond_dropped();
    assert_eq!(
        cond_dropped(&reord),
        cond_dropped(&clean),
        "5.2.4 discards exactly the same bags under reordered decisions"
    );
}

/// The execution-template cache under chaos: with templates explicitly
/// enabled, a dropped/duplicated/reordered run must produce outputs, an
/// execution path, and causal span-tree *shapes* bit-identical to the
/// fault-free run's — replayed control-plane decisions emit the same
/// observability spans as recomputed ones, and any template invalidation
/// triggered by fault-perturbed hoisting falls back to the slow path
/// without leaving a trace-visible seam.
#[test]
fn fault_chaos_with_templates_preserves_results_and_tree_shapes() {
    // Scale the nested loops up so the execution path outgrows the template
    // suffix window and cyclic suffixes actually repeat — the 3x2 original
    // is all warmup, every lookup a (full-path) miss.
    let src = NESTED_COND_SRC
        .replace("i < 3", "i < 7")
        .replace("j < 2", "j < 3");
    let func = mitos_ir::compile_str(&src).unwrap();
    let run_traced = |plan: FaultPlan, templates: bool| {
        let fs = InMemoryFs::new();
        run_sim(
            &func,
            &fs,
            EngineConfig::new()
                .with_templates(templates)
                .with_obs(mitos_core::ObsLevel::Trace)
                .with_faults(plan),
            SimConfig::with_machines(3),
        )
        .unwrap()
    };
    let clean = run_traced(FaultPlan::default(), true);
    assert!(
        clean.template_hits > 0,
        "the nested loop must exercise template replay: {:?}",
        (clean.template_hits, clean.template_misses)
    );
    let plan = FaultPlan::new()
        .with_drop(0.15)
        .with_duplicate(0.3)
        .with_reorder(0.4)
        .with_reorder_delay_ns(600_000)
        .with_seed(41);
    let faulted = run_traced(plan.clone(), true);
    assert!(
        faulted.sim.faults_dropped > 0 || faulted.sim.faults_duplicated > 0,
        "the plan must actually inject faults: {:?}",
        faulted.sim
    );
    assert_eq!(faulted.outputs, clean.outputs, "outputs under chaos");
    assert_eq!(faulted.path, clean.path, "execution path under chaos");

    let clean_trees = mitos_core::obs::build_step_trees(clean.obs.as_ref().unwrap());
    let faulted_trees = mitos_core::obs::build_step_trees(faulted.obs.as_ref().unwrap());
    assert_eq!(faulted_trees.len(), clean_trees.len(), "step-tree count");
    for (ct, ft) in clean_trees.iter().zip(&faulted_trees) {
        assert!(ct.orphans.is_empty(), "clean step {} orphans", ct.step);
        assert!(ft.orphans.is_empty(), "faulted step {} orphans", ft.step);
        assert_eq!(ft.shape(), ct.shape(), "tree shape at step {}", ft.step);
    }

    // And the faulted templates-on run must match a faulted templates-off
    // run exactly — the cache is invisible even mid-recovery.
    let off = run_traced(plan, false);
    assert_eq!(
        (
            off.template_hits,
            off.template_misses,
            off.template_invalidations
        ),
        (0, 0, 0),
        "templates-off run must not touch the cache"
    );
    assert_eq!(faulted.outputs, off.outputs, "on/off outputs under chaos");
    assert_eq!(faulted.path, off.path, "on/off path under chaos");
    let off_trees = mitos_core::obs::build_step_trees(off.obs.as_ref().unwrap());
    assert_eq!(off_trees.len(), faulted_trees.len());
    for (ot, ft) in off_trees.iter().zip(&faulted_trees) {
        assert_eq!(
            ft.shape(),
            ot.shape(),
            "on/off tree shape at step {}",
            ft.step
        );
    }
}

/// The same invariants on the thread driver, with drops added so the
/// at-least-once relay has to retransmit: results must still equal the
/// fault-free run's.
#[test]
fn fault_chaos_on_threads_matches_fault_free() {
    let func = mitos_ir::compile_str(NESTED_COND_SRC).unwrap();
    let clean_fs = InMemoryFs::new();
    let clean = run_threads(&func, &clean_fs, EngineConfig::default(), 3).unwrap();
    let plan = FaultPlan::new()
        .with_drop(0.15)
        .with_duplicate(0.2)
        .with_reorder(0.3)
        .with_seed(7);
    for round in 0..3 {
        let fs = InMemoryFs::new();
        let r = run_threads(&func, &fs, EngineConfig::new().with_faults(plan.clone()), 3)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(r.outputs, clean.outputs, "round {round}");
        assert_eq!(r.path, clean.path, "round {round}");
    }
}

#[test]
fn combiner_pass_is_equivalent_and_cuts_shuffle_traffic() {
    // A skewed workload: many elements, few keys — the regime where
    // map-side combining shines.
    let src = r#"
        total = 0;
        for d = 1 to 4 {
            counts = readFile("log").map(x => (x % 4, 1)).reduceByKey((a, b) => a + b);
            total = total + counts.map(c => c[1]).sum();
        }
        output(total, "t");
    "#;
    let setup = |fs: &InMemoryFs| {
        fs.put("log", (0..4000).map(Value::I64).collect::<Vec<_>>());
    };
    let plain = mitos_ir::compile_str(src).unwrap();
    let combined = mitos_ir::passes::insert_combiners(&plain);
    mitos_ir::validate(&combined).unwrap();

    let run = |func: &mitos_ir::FuncIr| {
        let fs = InMemoryFs::new();
        setup(&fs);
        run_sim(
            func,
            &fs,
            EngineConfig::default(),
            SimConfig::with_machines(4),
        )
        .unwrap()
    };
    let a = run(&plain);
    let b = run(&combined);
    assert_eq!(a.outputs, b.outputs, "combiners must not change results");
    assert!(
        b.sim.remote_bytes * 2 < a.sim.remote_bytes,
        "map-side combine must cut shuffle traffic: plain={} combined={}",
        a.sim.remote_bytes,
        b.sim.remote_bytes
    );
}
