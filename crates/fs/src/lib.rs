//! # mitos-fs
//!
//! An in-memory distributed file system, standing in for the HDFS cluster of
//! the paper's evaluation. Files are bags of [`Value`]s. Reads can be
//! partitioned (each physical instance of a `readFile` operator reads its
//! slice); writes from many instances are appended and treated as a multiset.
//!
//! The cost model parameters ([`IoCostModel`]) let the cluster simulator
//! charge realistic open-latency and bandwidth costs for every access without
//! this crate depending on the simulator.

#![warn(missing_docs)]

use mitos_lang::Value;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// IO cost parameters, interpreted by the cluster simulator.
#[derive(Clone, Copy, Debug)]
pub struct IoCostModel {
    /// Fixed virtual nanoseconds charged per file open (seek + NN lookup).
    pub open_latency_ns: u64,
    /// Read/write throughput in bytes per virtual microsecond.
    pub bytes_per_us: u64,
}

impl Default for IoCostModel {
    fn default() -> Self {
        // ~2 ms open latency, ~200 MB/s per machine: commodity-disk HDFS.
        IoCostModel {
            open_latency_ns: 2_000_000,
            bytes_per_us: 200,
        }
    }
}

impl IoCostModel {
    /// Virtual nanoseconds to transfer `bytes` after one open.
    pub fn access_cost_ns(&self, bytes: u64) -> u64 {
        self.open_latency_ns + (bytes * 1000) / self.bytes_per_us.max(1)
    }
}

/// An error accessing the file system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FsError {
    /// The file does not exist.
    NotFound(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(name) => write!(f, "file not found: {name}"),
        }
    }
}

impl std::error::Error for FsError {}

#[derive(Default)]
struct FileData {
    elements: Vec<Value>,
    bytes: u64,
}

/// A shared, thread-safe in-memory file system.
///
/// Cloning the handle shares the underlying store, mirroring how every worker
/// of a cluster sees the same DFS.
#[derive(Clone, Default)]
pub struct InMemoryFs {
    inner: Arc<RwLock<BTreeMap<String, FileData>>>,
}

impl InMemoryFs {
    /// Creates an empty file system.
    pub fn new() -> InMemoryFs {
        InMemoryFs::default()
    }

    /// Creates (or replaces) a file with the given elements.
    pub fn put(&self, name: impl Into<String>, elements: Vec<Value>) {
        let bytes = elements.iter().map(Value::estimated_bytes).sum();
        self.inner
            .write()
            .insert(name.into(), FileData { elements, bytes });
    }

    /// Appends elements to a file, creating it if needed. Used by parallel
    /// writer instances; the file is a multiset, so append order is
    /// irrelevant.
    pub fn append(&self, name: &str, elements: &[Value]) {
        let mut guard = self.inner.write();
        let file = guard.entry(name.to_string()).or_default();
        file.bytes += elements.iter().map(Value::estimated_bytes).sum::<u64>();
        file.elements.extend_from_slice(elements);
    }

    /// Removes a file; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.inner.write().remove(name).is_some()
    }

    /// Whether the file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.read().contains_key(name)
    }

    /// Total serialized size of the file in bytes.
    pub fn size_bytes(&self, name: &str) -> Result<u64, FsError> {
        self.inner
            .read()
            .get(name)
            .map(|f| f.bytes)
            .ok_or_else(|| FsError::NotFound(name.to_string()))
    }

    /// Reads the whole file.
    pub fn read(&self, name: &str) -> Result<Vec<Value>, FsError> {
        self.read_partition(name, 0, 1)
    }

    /// Reads partition `part` of `parts`: the contiguous slice assigned to
    /// one reader instance. Every element belongs to exactly one partition.
    pub fn read_partition(
        &self,
        name: &str,
        part: usize,
        parts: usize,
    ) -> Result<Vec<Value>, FsError> {
        assert!(
            parts > 0 && part < parts,
            "invalid partition {part}/{parts}"
        );
        let guard = self.inner.read();
        let file = guard
            .get(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let n = file.elements.len();
        let start = n * part / parts;
        let end = n * (part + 1) / parts;
        Ok(file.elements[start..end].to_vec())
    }

    /// The size in bytes of one read partition (proportional share).
    pub fn partition_bytes(&self, name: &str, part: usize, parts: usize) -> Result<u64, FsError> {
        assert!(
            parts > 0 && part < parts,
            "invalid partition {part}/{parts}"
        );
        let guard = self.inner.read();
        let file = guard
            .get(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let n = file.elements.len() as u64;
        if n == 0 {
            return Ok(0);
        }
        let start = n * part as u64 / parts as u64;
        let end = n * (part + 1) as u64 / parts as u64;
        Ok(file.bytes * (end - start) / n)
    }

    /// Lists all file names.
    pub fn list(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Snapshot of all files with canonically sorted contents, for result
    /// comparison across engines.
    pub fn snapshot(&self) -> BTreeMap<String, Vec<Value>> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| {
                let mut elems = v.elements.clone();
                elems.sort_unstable();
                (k.clone(), elems)
            })
            .collect()
    }

    /// Removes all files.
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

impl fmt::Debug for InMemoryFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let guard = self.inner.read();
        f.debug_map()
            .entries(guard.iter().map(|(k, v)| (k, v.elements.len())))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(range: std::ops::Range<i64>) -> Vec<Value> {
        range.map(Value::I64).collect()
    }

    #[test]
    fn put_read_round_trip() {
        let fs = InMemoryFs::new();
        fs.put("a", ints(0..5));
        assert_eq!(fs.read("a").unwrap(), ints(0..5));
        assert!(fs.exists("a"));
        assert!(!fs.exists("b"));
    }

    #[test]
    fn missing_file_is_an_error() {
        let fs = InMemoryFs::new();
        assert_eq!(fs.read("nope"), Err(FsError::NotFound("nope".into())));
    }

    #[test]
    fn partitions_cover_exactly_once() {
        let fs = InMemoryFs::new();
        fs.put("f", ints(0..10));
        for parts in 1..=7 {
            let mut all = Vec::new();
            for p in 0..parts {
                all.extend(fs.read_partition("f", p, parts).unwrap());
            }
            all.sort_unstable();
            assert_eq!(all, ints(0..10), "parts={parts}");
        }
    }

    #[test]
    fn partitions_of_small_files() {
        let fs = InMemoryFs::new();
        fs.put("one", ints(0..1));
        let mut seen = 0;
        for p in 0..4 {
            seen += fs.read_partition("one", p, 4).unwrap().len();
        }
        assert_eq!(seen, 1);
        fs.put("empty", vec![]);
        assert_eq!(fs.read_partition("empty", 2, 4).unwrap(), vec![]);
    }

    #[test]
    fn append_accumulates_and_tracks_bytes() {
        let fs = InMemoryFs::new();
        fs.append("log", &ints(0..2));
        fs.append("log", &ints(2..4));
        assert_eq!(fs.read("log").unwrap(), ints(0..4));
        assert_eq!(fs.size_bytes("log").unwrap(), 4 * 8);
    }

    #[test]
    fn partition_bytes_sums_to_total() {
        let fs = InMemoryFs::new();
        fs.put("f", ints(0..100));
        let total: u64 = (0..8).map(|p| fs.partition_bytes("f", p, 8).unwrap()).sum();
        assert_eq!(total, fs.size_bytes("f").unwrap());
    }

    #[test]
    fn snapshot_is_canonical() {
        let fs = InMemoryFs::new();
        fs.append("f", &[Value::I64(3), Value::I64(1)]);
        fs.append("f", &[Value::I64(2)]);
        let snap = fs.snapshot();
        assert_eq!(snap["f"], ints(1..4));
    }

    #[test]
    fn shared_handle_sees_writes() {
        let fs = InMemoryFs::new();
        let fs2 = fs.clone();
        fs.put("x", ints(0..1));
        assert!(fs2.exists("x"));
        fs2.clear();
        assert!(!fs.exists("x"));
    }

    #[test]
    fn io_cost_model_charges_latency_plus_bandwidth() {
        let m = IoCostModel {
            open_latency_ns: 1000,
            bytes_per_us: 100,
        };
        assert_eq!(m.access_cost_ns(0), 1000);
        assert_eq!(m.access_cost_ns(100), 1000 + 1000);
    }
}
