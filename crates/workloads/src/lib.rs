//! # mitos-workloads
//!
//! Workload generators for the paper's evaluation tasks and the example
//! applications: page-visit logs and page types (Visit Count, Secs. 2 & 6),
//! random graphs (PageRank, connected components), and clustered points
//! (k-means). All generators are seeded and deterministic.

#![warn(missing_docs)]

use mitos_fs::InMemoryFs;
use mitos_lang::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the Visit Count workload (Sec. 6.1: visits uniformly
/// distributed over pages, one log file per day).
#[derive(Clone, Copy, Debug)]
pub struct VisitCountSpec {
    /// Number of days (= log files).
    pub days: u32,
    /// Visits per day.
    pub visits_per_day: usize,
    /// Number of distinct pages.
    pub pages: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VisitCountSpec {
    fn default() -> Self {
        VisitCountSpec {
            days: 10,
            visits_per_day: 1000,
            pages: 100,
            seed: 42,
        }
    }
}

/// Encodes one raw visit-log entry: the page id in the upper bits, a
/// 2-bit status flag in the lower. Flag [`INVALID_FLAG`] marks entries the
/// Visit Count pipeline discards (bot traffic / malformed lines), so every
/// consumer must run the decode → validate → project chain of
/// [`visit_count_program`].
pub fn encode_log_entry(page: u64, flag: u64) -> i64 {
    (page * 4 + flag) as i64
}

/// The status flag marking a discarded raw log entry.
pub const INVALID_FLAG: u64 = 3;

/// Writes `pageVisitLog1..=days` files of raw-encoded visit entries over
/// uniformly random page ids (see [`encode_log_entry`]; roughly a quarter
/// carry [`INVALID_FLAG`] and are dropped by the pipeline's filter).
pub fn generate_visit_logs(fs: &InMemoryFs, spec: &VisitCountSpec) {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    for day in 1..=spec.days {
        let visits: Vec<Value> = (0..spec.visits_per_day)
            .map(|_| encode_log_entry(rng.gen_range(0..spec.pages), rng.gen_range(0..4)))
            .map(Value::I64)
            .collect();
        fs.put(format!("pageVisitLog{day}"), visits);
    }
}

/// Like [`generate_visit_logs`], but with Zipf-distributed page popularity
/// (exponent `s`): a few hot pages dominate, the regime where map-side
/// combining and skew-sensitive shuffles matter. Uses inverse-CDF sampling
/// over the precomputed harmonic weights.
pub fn generate_visit_logs_zipf(fs: &InMemoryFs, spec: &VisitCountSpec, s: f64) {
    assert!(s > 0.0, "zipf exponent must be positive");
    let n = spec.pages.max(1) as usize;
    // Cumulative weights of 1/k^s.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for k in 1..=n {
        acc += 1.0 / (k as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    for day in 1..=spec.days {
        let visits: Vec<Value> = (0..spec.visits_per_day)
            .map(|_| {
                let u = rng.gen_range(0.0..total);
                let idx = cdf.partition_point(|&c| c < u);
                let flag = rng.gen_range(0..4);
                Value::I64(encode_log_entry(idx.min(n - 1) as u64, flag))
            })
            .collect();
        fs.put(format!("pageVisitLog{day}"), visits);
    }
}

/// Writes a `pageTypes` file of `(pageId, type)` pairs; `distinct_types`
/// type labels are assigned randomly.
pub fn generate_page_types(fs: &InMemoryFs, pages: u64, distinct_types: u32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Value> = (0..pages)
        .map(|p| {
            let t = rng.gen_range(0..distinct_types);
            Value::tuple([Value::I64(p as i64), Value::str(format!("type{t}"))])
        })
        .collect();
    fs.put("pageTypes", rows);
}

/// The Visit Count program of Sec. 2, parameterized by day count; set
/// `with_page_types` to include the loop-invariant `pageTypes` join.
/// Each day starts with the log-decoding chain (decode the raw entry,
/// drop invalid rows, project the page id — see [`encode_log_entry`]),
/// the narrow per-element pipeline that operator chain fusion collapses
/// into a single host.
pub fn visit_count_program(days: u32, with_page_types: bool) -> String {
    let filter = if with_page_types {
        concat!(
            "\n    visits = (pageTypes join visits.map(v => (v, 1)))",
            ".filter(p => len(p[1]) > 0).map(p => p[0]);"
        )
    } else {
        ""
    };
    let prologue = if with_page_types {
        "pageTypes = readFile(\"pageTypes\");\n"
    } else {
        ""
    };
    format!(
        r#"{prologue}yesterday = empty;
day = 1;
do {{
    visits = readFile("pageVisitLog" + day).map(r => (r / 4, r % 4)).filter(e => e[1] != 3).map(e => e[0]);{filter}
    counts = visits.map(x => (x, 1)).reduceByKey((a, b) => a + b);
    if (day != 1) {{
        diffs = (counts join yesterday).map(t => abs(t[1] - t[2]));
        writeFile(diffs.sum(), "diff" + day);
    }}
    yesterday = counts;
    day = day + 1;
}} while (day <= {days});
"#
    )
}

/// Parameters of a random directed graph.
#[derive(Clone, Copy, Debug)]
pub struct GraphSpec {
    /// Number of vertices.
    pub vertices: u64,
    /// Number of extra random edges (beyond the one guaranteed out-edge per
    /// vertex).
    pub edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphSpec {
    fn default() -> Self {
        GraphSpec {
            vertices: 100,
            edges: 400,
            seed: 7,
        }
    }
}

/// Writes an `edges` file of `(src, dst)` pairs. Every vertex gets at least
/// one outgoing edge (so PageRank's out-degree join is total).
pub fn generate_graph(fs: &InMemoryFs, spec: &GraphSpec) {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut rows: Vec<Value> = Vec::with_capacity(spec.edges + spec.vertices as usize);
    for v in 0..spec.vertices {
        let dst = rng.gen_range(0..spec.vertices);
        rows.push(Value::tuple([Value::I64(v as i64), Value::I64(dst as i64)]));
    }
    for _ in 0..spec.edges {
        let src = rng.gen_range(0..spec.vertices);
        let dst = rng.gen_range(0..spec.vertices);
        rows.push(Value::tuple([
            Value::I64(src as i64),
            Value::I64(dst as i64),
        ]));
    }
    fs.put("edges", rows);
}

/// Writes a `points` file of `dim`-dimensional points drawn from `k`
/// clusters, plus a `centroids0` file of `k` starting centroids. Point rows
/// are `(id, [coords..])`; centroid rows are `(cid, [coords..])`.
pub fn generate_kmeans(fs: &InMemoryFs, points: usize, k: u32, dim: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect();
    let rows: Vec<Value> = (0..points)
        .map(|i| {
            let c = &centers[i % k as usize];
            let coords: Vec<Value> = c
                .iter()
                .map(|&x| Value::F64(x + rng.gen_range(-1.0..1.0)))
                .collect();
            Value::tuple([Value::I64(i as i64), Value::list(coords)])
        })
        .collect();
    fs.put("points", rows);
    let init: Vec<Value> = (0..k)
        .map(|c| {
            let coords: Vec<Value> = (0..dim)
                .map(|_| Value::F64(rng.gen_range(-10.0..10.0)))
                .collect();
            Value::tuple([Value::I64(c as i64), Value::list(coords)])
        })
        .collect();
    fs.put("centroids0", init);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_logs_have_requested_shape() {
        let fs = InMemoryFs::new();
        let spec = VisitCountSpec {
            days: 3,
            visits_per_day: 50,
            pages: 10,
            seed: 1,
        };
        generate_visit_logs(&fs, &spec);
        for d in 1..=3 {
            let log = fs.read(&format!("pageVisitLog{d}")).unwrap();
            assert_eq!(log.len(), 50);
            for v in log {
                // Raw-encoded entries: page id in the upper bits, status
                // flag in the low two (see `encode_log_entry`).
                let raw = v.as_i64().unwrap();
                assert!((0..10).contains(&(raw / 4)));
                assert!((0..4).contains(&(raw % 4)));
            }
        }
        assert!(!fs.exists("pageVisitLog4"));
    }

    #[test]
    fn generators_are_deterministic() {
        let fs1 = InMemoryFs::new();
        let fs2 = InMemoryFs::new();
        let spec = VisitCountSpec::default();
        generate_visit_logs(&fs1, &spec);
        generate_visit_logs(&fs2, &spec);
        assert_eq!(fs1.snapshot(), fs2.snapshot());
    }

    #[test]
    fn page_types_cover_all_pages() {
        let fs = InMemoryFs::new();
        generate_page_types(&fs, 20, 3, 9);
        let rows = fs.read("pageTypes").unwrap();
        assert_eq!(rows.len(), 20);
        let ids: std::collections::HashSet<i64> = rows
            .iter()
            .map(|r| r.field(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn graph_has_out_edges_for_every_vertex() {
        let fs = InMemoryFs::new();
        generate_graph(
            &fs,
            &GraphSpec {
                vertices: 10,
                edges: 20,
                seed: 3,
            },
        );
        let rows = fs.read("edges").unwrap();
        assert_eq!(rows.len(), 30);
        let srcs: std::collections::HashSet<i64> = rows
            .iter()
            .map(|r| r.field(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(srcs.len(), 10, "every vertex has an out-edge");
    }

    #[test]
    fn kmeans_points_and_centroids() {
        let fs = InMemoryFs::new();
        generate_kmeans(&fs, 40, 4, 2, 5);
        assert_eq!(fs.read("points").unwrap().len(), 40);
        assert_eq!(fs.read("centroids0").unwrap().len(), 4);
        let p = &fs.read("points").unwrap()[0];
        assert_eq!(p.field(1).unwrap().as_list().unwrap().len(), 2);
    }

    #[test]
    fn zipf_logs_are_skewed() {
        let fs = InMemoryFs::new();
        let spec = VisitCountSpec {
            days: 1,
            visits_per_day: 5_000,
            pages: 100,
            seed: 4,
        };
        generate_visit_logs_zipf(&fs, &spec, 1.2);
        let log = fs.read("pageVisitLog1").unwrap();
        let mut counts = std::collections::HashMap::new();
        for v in &log {
            // Skew is a property of the decoded page id, not the raw entry.
            *counts.entry(v.as_i64().unwrap() / 4).or_insert(0usize) += 1;
        }
        let hottest = *counts.values().max().unwrap();
        // Page 0 should dominate: far above the uniform share of 50.
        assert!(hottest > 500, "hottest page got {hottest} visits");
        // All ids stay in range.
        assert!(counts.keys().all(|&k| (0..100).contains(&k)));
    }

    #[test]
    fn zipf_is_deterministic() {
        let spec = VisitCountSpec {
            days: 2,
            visits_per_day: 100,
            pages: 20,
            seed: 9,
        };
        let fs1 = InMemoryFs::new();
        let fs2 = InMemoryFs::new();
        generate_visit_logs_zipf(&fs1, &spec, 1.0);
        generate_visit_logs_zipf(&fs2, &spec, 1.0);
        assert_eq!(fs1.snapshot(), fs2.snapshot());
    }

    #[test]
    fn visit_count_program_compiles() {
        for with_types in [false, true] {
            let src = visit_count_program(5, with_types);
            mitos_ir::compile_str(&src).unwrap_or_else(|e| panic!("with_types={with_types}: {e}"));
        }
    }
}
