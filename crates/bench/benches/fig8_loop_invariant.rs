//! **Figure 8**: the loop-invariant hoisting experiment — Visit Count with
//! the pageTypes join, sweeping the size of the loop-invariant pageTypes
//! dataset while the rest of the input stays fixed. The paper reports
//! Spark (no hoisting) growing linearly, up to 45x slower than Mitos;
//! Mitos-without-hoisting also linear, up to 11x slower than Mitos; Mitos
//! and Flink flat (they build the join hash table once).

use mitos_bench::{fmt_factor, fmt_ms, full_scale, invariant_cost, BenchReport, System, Table};
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;
use mitos_workloads::{
    generate_page_types, generate_visit_logs, visit_count_program, VisitCountSpec,
};

fn main() {
    let days = if full_scale() { 60 } else { 30 };
    let machines = 8;
    let visits = if full_scale() { 2_000 } else { 1_000 };
    let page_sizes: &[u64] = if full_scale() {
        &[5_000, 40_000, 160_000, 640_000]
    } else {
        &[2_000, 20_000, 120_000]
    };
    let systems = [
        System::Spark,
        System::MitosNoHoisting,
        System::FlinkNative,
        System::Mitos,
    ];

    println!("\n=== Figure 8: loop-invariant dataset size sweep ===");
    println!("{days} days x {visits} visits/day (fixed), {machines} machines\n");
    let mut table = Table::new(&[
        "pageTypes rows",
        "Spark",
        "Mitos (wo. hoisting)",
        "Flink",
        "Mitos",
        "Spark/Mitos",
        "NoHoist/Mitos",
    ]);
    let mut report = BenchReport::new("fig8", "loop-invariant dataset size sweep");
    let mut max_spark = 0.0f64;
    let mut max_nohoist = 0.0f64;
    for &pages in page_sizes {
        let spec = VisitCountSpec {
            days,
            visits_per_day: visits,
            pages,
            seed: 8,
        };
        let func = mitos_ir::compile_str(&visit_count_program(days, true)).unwrap();
        let mut cells = vec![pages.to_string()];
        let mut times = Vec::new();
        for system in systems {
            let fs = InMemoryFs::new();
            generate_visit_logs(&fs, &spec);
            generate_page_types(&fs, pages, 4, 3);
            let ms = system.run_with(
                &func,
                &fs,
                SimConfig::with_machines(machines),
                invariant_cost(),
            );
            times.push(ms);
            cells.push(fmt_ms(ms));
        }
        cells.push(fmt_factor(times[0] / times[3]));
        cells.push(fmt_factor(times[1] / times[3]));
        table.row(cells);
        report.row(vec![
            ("pages", pages.into()),
            ("spark_ms", times[0].into()),
            ("nohoist_ms", times[1].into()),
            ("flink_ms", times[2].into()),
            ("mitos_ms", times[3].into()),
        ]);
        max_spark = max_spark.max(times[0] / times[3]);
        max_nohoist = max_nohoist.max(times[1] / times[3]);
    }
    table.print();
    report.factor("spark_vs_mitos_max", max_spark);
    report.factor("nohoist_vs_mitos_max", max_nohoist);
    report.write();
    println!("\npaper: Spark and Mitos-without-hoisting grow linearly with the");
    println!("invariant dataset (hash table rebuilt per step; up to 45x and");
    println!("11x slower); Mitos and Flink stay flat (built once, probed).");
}
