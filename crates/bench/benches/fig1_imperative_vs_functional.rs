//! **Figure 1**: imperative vs. functional control flow handling — Spark
//! (imperative driver loop, easy to use) vs. Flink (functional native
//! iterations, fast) on the Visit Count task at a fixed cluster size.
//! The paper reports Spark ~11x slower than Flink on 24 machines.

use mitos_bench::{fmt_factor, fmt_ms, full_scale, visit_cost, BenchReport, System, Table};
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;
use mitos_workloads::{generate_visit_logs, visit_count_program, VisitCountSpec};

fn main() {
    let (days, visits) = if full_scale() {
        (120, 20_000)
    } else {
        (40, 5_000)
    };
    let machines = 24;
    let spec = VisitCountSpec {
        days,
        visits_per_day: visits,
        pages: 2_000,
        seed: 1,
    };
    let func = mitos_ir::compile_str(&visit_count_program(days, false)).unwrap();

    println!("\n=== Figure 1: imperative vs functional control flow ===");
    println!("Visit Count, {days} days x {visits} visits, {machines} machines\n");
    let mut table = Table::new(&["system", "time", "vs Flink"]);
    let mut report = BenchReport::new("fig1", "imperative vs functional control flow");
    let mut flink_ms = 0.0;
    let mut spark_ms = 0.0;
    // Flink here plays the paper's "functional control flow" role (native
    // iterations); Spark is the imperative driver loop.
    for system in [System::FlinkNative, System::Spark] {
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        let ms = system.run_with(&func, &fs, SimConfig::with_machines(machines), visit_cost());
        if system == System::FlinkNative {
            flink_ms = ms;
        } else {
            spark_ms = ms;
        }
        table.row(vec![
            system.label().to_string(),
            fmt_ms(ms),
            fmt_factor(ms / flink_ms),
        ]);
        report.row(vec![
            ("system", system.label().into()),
            ("machines", machines.into()),
            ("days", days.into()),
            ("ms", ms.into()),
        ]);
    }
    table.print();
    report.factor("spark_vs_flink", spark_ms / flink_ms);
    report.write();
    println!("\npaper: Spark ~11x slower than Flink (imperative control flow");
    println!("costs a job launch per iteration step; functional control flow");
    println!("runs as one job but is hard to use).");
}
