//! **Figure 6**: Visit Count *with* the loop-invariant pageTypes join,
//! sweeping the total input size. The paper reports Mitos 23x -> >100x
//! faster than Spark as data grows, and 3.1x-10.5x faster than Flink
//! (separate jobs), with the largest Flink factors at SMALL inputs where
//! Flink's per-step overhead dominates.
//!
//! The Mitos leg runs through the engine directly (not the [`System`]
//! wrapper) so the report can also record the data-plane flow telemetry:
//! total bytes on the wire per sweep point, plus a per-edge breakdown at
//! the largest input — the observed communication volume behind the
//! virtual-time speedups.

use mitos_bench::{fmt_factor, fmt_ms, full_scale, visit_cost, BenchReport, System, Table};
use mitos_core::rt::EngineConfig;
use mitos_core::{run_sim, FlowReport};
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;
use mitos_workloads::{
    generate_page_types, generate_visit_logs, visit_count_program, VisitCountSpec,
};

fn main() {
    let days = if full_scale() { 60 } else { 30 };
    let machines = 8;
    let sizes: &[usize] = if full_scale() {
        &[500, 2_000, 10_000, 40_000]
    } else {
        &[300, 1_500, 6_000]
    };
    let func = mitos_ir::compile_str(&visit_count_program(days, true)).unwrap();
    let baselines = [System::Spark, System::FlinkSeparateJobs];
    // Larger network batches than the 1024-element default: with the
    // columnar wire encoding the per-message framing is what batching
    // amortizes, so the data-heavy sweep ships 4096 elements per
    // `Msg::Data`. `BENCH_fig6.prebatch.json` preserves the pre-batching
    // baseline (estimated bytes, 1024-element messages) that `check.sh`
    // gates the improvement against.
    let mitos_cfg = EngineConfig::new()
        .with_cost(visit_cost())
        .with_batch_elems(4096);

    println!("\n=== Figure 6: input-size sweep (Visit Count + pageTypes) ===");
    println!("{days} days, {machines} machines\n");
    let mut table = Table::new(&[
        "visits/day",
        "Spark",
        "Flink (separate jobs)",
        "Mitos",
        "Spark/Mitos",
        "Flink/Mitos",
        "wire bytes",
    ]);
    let mut report = BenchReport::new("fig6", "input-size sweep (Visit Count + pageTypes)");
    report.provenance(6, mitos_cfg.digest());
    let mut max_spark = 0.0f64;
    let mut max_flink = 0.0f64;
    let mut largest_flow: Option<FlowReport> = None;
    for &visits in sizes {
        // The paper scales the WHOLE input, pageTypes included; the
        // loop-invariant dataset grows with the visits, which is what
        // makes Spark's per-step hash-table rebuild dominate at scale.
        let pages = (visits * 10) as u64;
        let spec = VisitCountSpec {
            days,
            visits_per_day: visits,
            pages,
            seed: 6,
        };
        let mut cells = vec![visits.to_string()];
        let mut times = Vec::new();
        for system in baselines {
            let fs = InMemoryFs::new();
            generate_visit_logs(&fs, &spec);
            generate_page_types(&fs, pages, 4, 2);
            let ms = system.run_with(&func, &fs, SimConfig::with_machines(machines), visit_cost());
            times.push(ms);
            cells.push(fmt_ms(ms));
        }
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        generate_page_types(&fs, pages, 4, 2);
        let r = run_sim(
            &func,
            &fs,
            mitos_cfg.clone(),
            SimConfig::with_machines(machines),
        )
        .expect("mitos run");
        let mitos_ms = r.sim.end_time as f64 / 1e6;
        times.push(mitos_ms);
        cells.push(fmt_ms(mitos_ms));
        cells.push(fmt_factor(times[0] / times[2]));
        cells.push(fmt_factor(times[1] / times[2]));
        cells.push(mitos_core::obs::flow::fmt_bytes(r.flow.bytes_on_wire()));
        table.row(cells);
        report.row(vec![
            ("visits_per_day", visits.into()),
            ("spark_ms", times[0].into()),
            ("flink_sep_ms", times[1].into()),
            ("mitos_ms", times[2].into()),
            ("bytes_on_wire", r.flow.bytes_on_wire().into()),
            ("bytes_total", r.flow.bytes_total().into()),
            ("elements", r.flow.elements_in_total().into()),
            ("data_messages", r.flow.messages_in_total().into()),
        ]);
        max_spark = max_spark.max(times[0] / times[2]);
        max_flink = max_flink.max(times[1] / times[2]);
        largest_flow = Some(r.flow);
    }
    table.print();
    report.factor("spark_vs_mitos_max", max_spark);
    report.factor("flink_sep_vs_mitos_max", max_flink);
    // Per-edge breakdown at the largest sweep point: which edges carry
    // the communication volume (hottest first).
    if let Some(flow) = &largest_flow {
        for ef in flow.edges_by_bytes() {
            report.row(vec![
                ("edge", ef.edge.into()),
                ("edge_msgs", ef.msgs_out().into()),
                ("edge_elements", ef.elems_out().into()),
                ("edge_bytes", ef.bytes().into()),
                ("edge_remote_bytes", ef.remote_bytes().into()),
            ]);
        }
    }
    report.write();
    println!("\npaper: Mitos 23x -> >100x vs Spark (growing with size, due to");
    println!("hoisting); 3.1x-10.5x vs Flink separate jobs (largest at small");
    println!("inputs, where the per-step overhead dominates).");
}
