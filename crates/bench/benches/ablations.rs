//! Ablations beyond the paper's figures (DESIGN.md):
//!
//! * control-flow-decision broadcast traffic vs. cluster size — the cost
//!   of Sec. 5.2.1's coordination mechanism itself;
//! * hoisting hit counters — how often the runtime actually reuses build
//!   state (validates that Fig. 8's effect comes from the mechanism);
//! * garbage collection — peak inbox depth stays bounded as loops get
//!   longer, demonstrating the input-bag GC of Sec. 5.2.4.
//! * operator chain fusion — data-plane message counts and simulated time
//!   with the physical planner's chain fusion on vs. off, across the
//!   Fig. 5/6/7 workloads.

use mitos_bench::{trivial_loop_program, visit_cost, BenchReport, Table};
use mitos_core::rt::EngineConfig;
use mitos_core::run_sim;
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;
use mitos_workloads::{
    generate_page_types, generate_visit_logs, visit_count_program, VisitCountSpec,
};

fn main() {
    let mut report = BenchReport::new("ablations", "runtime-mechanism ablations");
    decision_broadcast(&mut report);
    hoisting_hits(&mut report);
    gc_bounded_state(&mut report);
    combiners(&mut report);
    fusion(&mut report);
    report.write();
}

fn fusion(report: &mut BenchReport) {
    println!("\n=== Ablation: operator chain fusion ===");
    let days = 20;
    let spec = VisitCountSpec {
        days,
        visits_per_day: 300,
        pages: 2_000,
        seed: 5,
    };
    // fig5: the plain Visit Count chain (readFile→map fuses per day);
    // fig6: Visit Count with the pageTypes join (readFile→map plus the
    // post-join filter→map fuse); fig7: the per-step-overhead loop, whose
    // bodies are scalar/literal — a deliberate no-fusion control.
    let fig5 = mitos_ir::compile_str(&visit_count_program(days, false)).unwrap();
    let fig6 = mitos_ir::compile_str(&visit_count_program(days, true)).unwrap();
    let fig7 = mitos_ir::compile_str(&trivial_loop_program(40)).unwrap();
    let mut table = Table::new(&["workload", "fusion", "data msgs", "time (vms)"]);
    for (key, func, visits, pages) in [
        ("fig5", &fig5, true, false),
        ("fig6", &fig6, true, true),
        ("fig7", &fig7, false, false),
    ] {
        let mut messages = Vec::new();
        let mut times = Vec::new();
        for fusion in [true, false] {
            let fs = InMemoryFs::new();
            if visits {
                generate_visit_logs(&fs, &spec);
            }
            if pages {
                generate_page_types(&fs, 2_000, 4, 3);
            }
            let r = run_sim(
                func,
                &fs,
                EngineConfig::new()
                    .with_fusion(fusion)
                    .with_cost(visit_cost()),
                SimConfig::with_machines(4),
            )
            .unwrap();
            table.row(vec![
                key.to_string(),
                fusion.to_string(),
                r.data_messages.to_string(),
                format!("{:.1}", r.sim.end_time as f64 / 1e6),
            ]);
            report.row(vec![
                ("section", "fusion".into()),
                ("workload", key.into()),
                ("fusion", if fusion { "on" } else { "off" }.into()),
                ("data_messages", r.data_messages.into()),
                ("ms", (r.sim.end_time as f64 / 1e6).into()),
            ]);
            messages.push(r.data_messages as f64);
            times.push(r.sim.end_time as f64);
        }
        // off/on: >1 means fusion removed messages / time.
        report.factor(
            &format!("fusion_message_reduction_{key}"),
            messages[1] / messages[0],
        );
        report.factor(&format!("fusion_speedup_{key}"), times[1] / times[0]);
    }
    table.print();
    println!("(fused chains exchange one bag where the unfused plan exchanged one per stage)");
}

fn decision_broadcast(report: &mut BenchReport) {
    println!("\n=== Ablation: control-flow decision broadcast ===");
    let days = 30;
    let spec = VisitCountSpec {
        days,
        visits_per_day: 500,
        pages: 100,
        seed: 4,
    };
    let func = mitos_ir::compile_str(&visit_count_program(days, false)).unwrap();
    let mut table = Table::new(&["machines", "decisions", "messages", "remote KB"]);
    for machines in [2u16, 8, 25] {
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        let r = run_sim(
            &func,
            &fs,
            EngineConfig::default(),
            SimConfig::with_machines(machines),
        )
        .unwrap();
        table.row(vec![
            machines.to_string(),
            r.decisions.to_string(),
            r.sim.messages.to_string(),
            (r.sim.remote_bytes / 1024).to_string(),
        ]);
        report.row(vec![
            ("section", "decision_broadcast".into()),
            ("machines", machines.into()),
            ("decisions", r.decisions.into()),
            ("messages", r.sim.messages.into()),
            ("remote_kb", (r.sim.remote_bytes / 1024).into()),
        ]);
    }
    table.print();
    println!("(decisions are independent of cluster size; messages grow with it)");
}

fn hoisting_hits(report: &mut BenchReport) {
    println!("\n=== Ablation: hoisting reuse hits ===");
    let days = 20;
    let spec = VisitCountSpec {
        days,
        visits_per_day: 300,
        pages: 2_000,
        seed: 2,
    };
    let func = mitos_ir::compile_str(&visit_count_program(days, true)).unwrap();
    let mut table = Table::new(&["hoisting", "hits", "time (vms)"]);
    let mut times = Vec::new();
    for hoisting in [true, false] {
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        generate_page_types(&fs, 2_000, 4, 3);
        let r = run_sim(
            &func,
            &fs,
            EngineConfig::new().with_hoisting(hoisting),
            SimConfig::with_machines(4),
        )
        .unwrap();
        table.row(vec![
            hoisting.to_string(),
            r.hoist_hits.to_string(),
            format!("{:.1}", r.sim.end_time as f64 / 1e6),
        ]);
        report.row(vec![
            ("section", "hoisting_hits".into()),
            ("hoisting", if hoisting { "on" } else { "off" }.into()),
            ("hits", r.hoist_hits.into()),
            ("ms", (r.sim.end_time as f64 / 1e6).into()),
        ]);
        times.push(r.sim.end_time as f64 / 1e6);
    }
    table.print();
    report.factor("nohoist_vs_hoist", times[1] / times[0]);
    println!("(the pageTypes join reuses its hash table on every step after the first)");
}

fn combiners(report: &mut BenchReport) {
    println!("\n=== Ablation: map-side combiners (reduceByKey) ===");
    let src = r#"
        total = 0;
        for d = 1 to 10 {
            counts = readFile("log").map(x => (x % 8, 1)).reduceByKey((a, b) => a + b);
            total = total + counts.map(c => c[1]).sum();
        }
        output(total, "t");
    "#;
    let plain = mitos_ir::compile_str(src).unwrap();
    let combined = mitos_ir::passes::insert_combiners(&plain);
    let mut table = Table::new(&["combiners", "time (vms)", "shuffle KB"]);
    let mut shuffle = Vec::new();
    for (label, func) in [("off", &plain), ("on", &combined)] {
        let fs = InMemoryFs::new();
        fs.put(
            "log",
            (0..20_000).map(mitos_lang::Value::I64).collect::<Vec<_>>(),
        );
        let r = run_sim(
            func,
            &fs,
            EngineConfig::default(),
            SimConfig::with_machines(8),
        )
        .unwrap();
        table.row(vec![
            label.to_string(),
            format!("{:.1}", r.sim.end_time as f64 / 1e6),
            (r.sim.remote_bytes / 1024).to_string(),
        ]);
        report.row(vec![
            ("section", "combiners".into()),
            ("combiners", label.into()),
            ("ms", (r.sim.end_time as f64 / 1e6).into()),
            ("shuffle_kb", (r.sim.remote_bytes / 1024).into()),
        ]);
        shuffle.push(r.sim.remote_bytes as f64);
    }
    table.print();
    report.factor("combiner_shuffle_reduction", shuffle[0] / shuffle[1]);
    println!("(pre-aggregating within partitions before the hash shuffle)");
}

fn gc_bounded_state(report: &mut BenchReport) {
    println!("\n=== Ablation: input-bag GC keeps buffering bounded ===");
    let mut table = Table::new(&["loop steps", "peak inbox depth"]);
    for days in [10u32, 40, 160] {
        let spec = VisitCountSpec {
            days,
            visits_per_day: 200,
            pages: 50,
            seed: 3,
        };
        let func = mitos_ir::compile_str(&visit_count_program(days, false)).unwrap();
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        let r = run_sim(
            &func,
            &fs,
            EngineConfig::default(),
            SimConfig::with_machines(4),
        )
        .unwrap();
        table.row(vec![days.to_string(), r.sim.max_inbox.to_string()]);
        report.row(vec![
            ("section", "gc_bounded_state".into()),
            ("loop_steps", days.into()),
            ("peak_inbox", r.sim.max_inbox.into()),
        ]);
    }
    table.print();
    println!("(peak queueing is independent of loop length: superseded bags are");
    println!("garbage-collected, loop state does not accumulate)");
}
