//! **Figure 9**: the loop-pipelining ablation — Visit Count (without the
//! pageTypes join) on Mitos with and without pipelining, sweeping machine
//! count. The paper reports pipelining winning by 1.1x up to ~4.2x.

use mitos_bench::{fmt_factor, fmt_ms, full_scale, visit_cost, BenchReport, System, Table};
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;
use mitos_workloads::{generate_visit_logs, visit_count_program, VisitCountSpec};

fn main() {
    let (days, visits) = if full_scale() {
        (120, 20_000)
    } else {
        (40, 8_000)
    };
    let spec = VisitCountSpec {
        days,
        visits_per_day: visits,
        pages: 2_000,
        seed: 9,
    };
    let func = mitos_ir::compile_str(&visit_count_program(days, false)).unwrap();

    println!("\n=== Figure 9: loop pipelining ablation ===");
    println!("{days} days x {visits} visits/day\n");
    let mut table = Table::new(&["machines", "Mitos (not pipelined)", "Mitos", "speedup"]);
    let mut report = BenchReport::new("fig9", "loop pipelining ablation");
    let mut max_speedup = 0.0f64;
    for machines in [2u16, 4, 8, 16, 25] {
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        let no_pipe = System::MitosNoPipelining.run_with(
            &func,
            &fs,
            SimConfig::with_machines(machines),
            visit_cost(),
        );
        let fs = InMemoryFs::new();
        generate_visit_logs(&fs, &spec);
        let pipe =
            System::Mitos.run_with(&func, &fs, SimConfig::with_machines(machines), visit_cost());
        table.row(vec![
            machines.to_string(),
            fmt_ms(no_pipe),
            fmt_ms(pipe),
            fmt_factor(no_pipe / pipe),
        ]);
        report.row(vec![
            ("machines", machines.into()),
            ("nopipe_ms", no_pipe.into()),
            ("mitos_ms", pipe.into()),
        ]);
        max_speedup = max_speedup.max(no_pipe / pipe);
    }
    table.print();
    report.factor("pipelining_speedup_max", max_speedup);
    report.write();
    println!("\npaper: pipelining 1.1x-4.2x faster (overlapping iteration");
    println!("steps hides per-step latency and file-read time).");
}
