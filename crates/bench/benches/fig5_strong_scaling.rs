//! **Figure 5**: strong scaling of Visit Count. The paper reports Mitos
//! scaling gracefully while Spark and Flink *increase* with machine count
//! (their per-step overhead grows with the cluster); at 25 machines Mitos
//! is ~10x faster than Spark and ~3x faster than Flink.

use mitos_bench::{fmt_ms, full_scale, visit_cost, BenchReport, System, Table};
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;
use mitos_workloads::{generate_visit_logs, visit_count_program, VisitCountSpec};

fn main() {
    let (days, visits) = if full_scale() {
        (120, 20_000)
    } else {
        (40, 5_000)
    };
    let spec = VisitCountSpec {
        days,
        visits_per_day: visits,
        pages: 2_000,
        seed: 5,
    };
    let func = mitos_ir::compile_str(&visit_count_program(days, false)).unwrap();
    let systems = [System::Spark, System::FlinkNative, System::Mitos];

    println!("\n=== Figure 5: strong scaling (Visit Count) ===");
    println!("{days} days x {visits} visits/day\n");
    let mut table = Table::new(&[
        "machines",
        "Spark",
        "Flink",
        "Mitos",
        "Mitos speedup vs Spark",
    ]);
    let mut report = BenchReport::new("fig5", "strong scaling (Visit Count)");
    let mut max_spark = 0.0f64;
    let mut max_flink = 0.0f64;
    for machines in [2u16, 4, 8, 16, 25] {
        let mut cells = vec![machines.to_string()];
        let mut times = Vec::new();
        for system in systems {
            let fs = InMemoryFs::new();
            generate_visit_logs(&fs, &spec);
            let ms = system.run_with(&func, &fs, SimConfig::with_machines(machines), visit_cost());
            times.push(ms);
            cells.push(fmt_ms(ms));
        }
        cells.push(format!("{:.1}x", times[0] / times[2]));
        table.row(cells);
        report.row(vec![
            ("machines", machines.into()),
            ("spark_ms", times[0].into()),
            ("flink_ms", times[1].into()),
            ("mitos_ms", times[2].into()),
        ]);
        max_spark = max_spark.max(times[0] / times[2]);
        max_flink = max_flink.max(times[1] / times[2]);
    }
    table.print();
    report.factor("spark_vs_mitos_max", max_spark);
    report.factor("flink_vs_mitos_max", max_flink);
    report.write();
    println!("\npaper: Spark and Flink grow with machines (per-step overhead),");
    println!("Mitos scales down; Mitos ~10x vs Spark, ~3x vs Flink at 25.");
}
