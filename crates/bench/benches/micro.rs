//! Criterion microbenchmarks of the runtime's hot paths: execution-path
//! queries, conditional-send decisions, routing, the compilation pipeline,
//! and the bag kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mitos_core::graph::stable_hash;
use mitos_core::{ExecutionPath, LogicalGraph, PathRules};
use mitos_ir::kernel;
use mitos_lang::expr::{BinOp, Expr};
use mitos_lang::{Batch, Value};
use std::hint::black_box;

fn bench_path_queries(c: &mut Criterion) {
    // A long loop path: 0 (1 2 3)* — like a 1000-step Visit Count.
    let mut path = ExecutionPath::new();
    path.append(0);
    for _ in 0..1000 {
        for b in [1u32, 2, 3] {
            path.append(b);
        }
    }
    c.bench_function("path/last_occurrence_hit", |b| {
        b.iter(|| black_box(path.last_occurrence_before(black_box(2), black_box(2800))))
    });
    c.bench_function("path/last_occurrence_miss", |b| {
        b.iter(|| black_box(path.last_occurrence_before(black_box(9), black_box(3001))))
    });
}

fn bench_selection_rules(c: &mut Criterion) {
    let func = mitos_ir::compile_str(
        "yesterday = empty; day = 1; do { counts = bag((day, 1)); j = counts join yesterday; \
         s = j.count(); yesterday = counts; day = day + 1; } while (day <= 3); output(day, \"d\");",
    )
    .unwrap();
    let graph = LogicalGraph::build(&func).unwrap();
    let rules = PathRules::build(&graph);
    let body = graph.nodes.iter().find(|n| n.block != 0).unwrap().block;
    let mut path = ExecutionPath::new();
    path.append(0);
    for _ in 0..500 {
        path.append(body);
    }
    let edge = (graph.edges.len() - 1) as u32;
    c.bench_function("rules/select_input_len", |b| {
        b.iter(|| black_box(rules.select_input_len(black_box(edge), &path, black_box(400))))
    });
    c.bench_function("rules/decide_send", |b| {
        b.iter(|| black_box(rules.decide_send(black_box(edge), &path, black_box(200), 200)))
    });
}

fn bench_routing(c: &mut Criterion) {
    let values: Vec<Value> = (0..1024)
        .map(|i| Value::tuple([Value::I64(i), Value::I64(i * 7)]))
        .collect();
    c.bench_function("routing/stable_hash_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in &values {
                acc ^= stable_hash(v.key());
            }
            black_box(acc)
        })
    });
}

fn bench_kernels(c: &mut Criterion) {
    let pairs: Vec<Value> = (0..2048)
        .map(|i| Value::tuple([Value::I64(i % 64), Value::I64(i)]))
        .collect();
    let add = Expr::bin(BinOp::Add, Expr::Param(0), Expr::Param(1));
    c.bench_function("kernel/reduce_by_key_2048", |b| {
        b.iter(|| black_box(kernel::reduce_by_key(&add, &[], &pairs).unwrap()))
    });
    c.bench_function("kernel/join_2048x2048", |b| {
        b.iter(|| black_box(kernel::join(&pairs, &pairs).len()))
    });
    let double = Expr::bin(BinOp::Mul, Expr::Param(0), Expr::lit(2i64));
    let ints: Batch = (0..2048).map(Value::I64).collect();
    c.bench_function("kernel/map_2048", |b| {
        b.iter(|| black_box(kernel::map(&double, &[], &ints).unwrap()))
    });
}

fn bench_compile(c: &mut Criterion) {
    let src = mitos_workloads::visit_count_program(365, true);
    c.bench_function("compile/visit_count_365", |b| {
        b.iter_batched(
            || src.clone(),
            |s| black_box(mitos_ir::compile_str(&s).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end_small(c: &mut Criterion) {
    use mitos_core::rt::EngineConfig;
    use mitos_fs::InMemoryFs;
    use mitos_sim::SimConfig;
    let func = mitos_ir::compile_str(&mitos_bench::trivial_loop_program(10)).unwrap();
    c.bench_function("engine/trivial_loop_10_steps_4_machines", |b| {
        b.iter(|| {
            let fs = InMemoryFs::new();
            black_box(
                mitos_core::run_sim(
                    &func,
                    &fs,
                    EngineConfig::default(),
                    SimConfig::with_machines(4),
                )
                .unwrap()
                .sim
                .end_time,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_path_queries, bench_selection_rules, bench_routing, bench_kernels, bench_compile, bench_end_to_end_small
}
criterion_main!(benches);
