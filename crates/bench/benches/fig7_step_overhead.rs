//! **Figure 7**: per-iteration-step overhead (log-log vs machine count),
//! isolated by a loop with minimal data processing. The paper reports the
//! job-per-step systems (Spark, Flink separate jobs) ~two orders of
//! magnitude above the native-iteration systems (Mitos, Flink, TensorFlow,
//! Naiad), with the job-launch overhead growing linearly in machines.

use mitos_bench::{full_scale, trivial_loop_program, System, Table};
use mitos_baselines::{run_naiad_loop, run_tf_loop, NaiadConfig, TfConfig};
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;

fn main() {
    let steps: u32 = if full_scale() { 200 } else { 50 };
    let func = mitos_ir::compile_str(&trivial_loop_program(steps)).unwrap();

    println!("\n=== Figure 7: per-step overhead microbenchmark ===");
    println!("{steps}-step loop, minimal data processing; time PER STEP (ms)\n");
    let mut table = Table::new(&[
        "machines",
        "Spark",
        "Flink (sep. jobs)",
        "Flink (native)",
        "Mitos",
        "Naiad",
        "TensorFlow",
    ]);
    for machines in [1u16, 3, 5, 9, 13, 19, 25] {
        let cluster = SimConfig::with_machines(machines);
        let per_step = |total_ms: f64| format!("{:.2}", total_ms / steps as f64);
        let run = |s: System| {
            let fs = InMemoryFs::new();
            s.run(&func, &fs, cluster)
        };
        let naiad = run_naiad_loop(
            NaiadConfig {
                steps,
                ..NaiadConfig::default()
            },
            cluster,
        )
        .end_time as f64
            / 1e6;
        let (tf_report, _) = run_tf_loop(
            TfConfig {
                steps,
                ..TfConfig::default()
            },
            cluster,
        );
        let tf = tf_report.end_time as f64 / 1e6;
        table.row(vec![
            machines.to_string(),
            per_step(run(System::Spark)),
            per_step(run(System::FlinkSeparateJobs)),
            per_step(run(System::FlinkNative)),
            per_step(run(System::Mitos)),
            per_step(naiad),
            per_step(tf),
        ]);
    }
    table.print();
    println!("\npaper: job-per-step systems grow linearly with machines and sit");
    println!("~100x above the native-iteration systems, which stay flat.");
}
