//! **Figure 7**: per-iteration-step overhead (log-log vs machine count),
//! isolated by a loop with minimal data processing. The paper reports the
//! job-per-step systems (Spark, Flink separate jobs) ~two orders of
//! magnitude above the native-iteration systems (Mitos, Flink, TensorFlow,
//! Naiad), with the job-launch overhead growing linearly in machines.

use mitos_baselines::{run_naiad_loop, run_tf_loop, NaiadConfig, TfConfig};
use mitos_bench::{full_scale, trivial_loop_program, BenchReport, System, Table};
use mitos_core::{build_step_trees, EngineConfig, ObsLevel, PhaseHistograms};
use mitos_fs::InMemoryFs;
use mitos_sim::SimConfig;

fn main() {
    let steps: u32 = if full_scale() { 200 } else { 50 };
    let func = mitos_ir::compile_str(&trivial_loop_program(steps)).unwrap();

    println!("\n=== Figure 7: per-step overhead microbenchmark ===");
    println!("{steps}-step loop, minimal data processing; time PER STEP (ms)\n");
    let mut table = Table::new(&[
        "machines",
        "Spark",
        "Flink (sep. jobs)",
        "Flink (native)",
        "Mitos",
        "Naiad",
        "TensorFlow",
        "Mitos peak res (B)",
    ]);
    let mut report = BenchReport::new("fig7", "per-step overhead microbenchmark");
    let mut max_spark = 0.0f64;
    let mut max_peak_resident = 0u64;
    for machines in [1u16, 3, 5, 9, 13, 19, 25] {
        let cluster = SimConfig::with_machines(machines);
        let per_step = |total_ms: f64| total_ms / steps as f64;
        let run = |s: System| {
            let fs = InMemoryFs::new();
            per_step(s.run(&func, &fs, cluster))
        };
        let naiad = per_step(
            run_naiad_loop(
                NaiadConfig {
                    steps,
                    ..NaiadConfig::default()
                },
                cluster,
            )
            .end_time as f64
                / 1e6,
        );
        let (tf_report, _) = run_tf_loop(
            TfConfig {
                steps,
                ..TfConfig::default()
            },
            cluster,
        );
        let tf = per_step(tf_report.end_time as f64 / 1e6);
        let spark = run(System::Spark);
        let flink_sep = run(System::FlinkSeparateJobs);
        let flink = run(System::FlinkNative);
        // Run Mitos directly so the sweep can also record the state
        // registry's peak residency at each cluster size — the control
        // plane should hold O(1) bags per machine regardless of scale.
        let fs = InMemoryFs::new();
        let mitos_result =
            mitos_core::run_sim(&func, &fs, EngineConfig::new(), cluster).expect("mitos run");
        let mitos = per_step(mitos_result.sim.end_time as f64 / 1e6);
        let peak_resident = mitos_result.mem.peak_resident();
        max_peak_resident = max_peak_resident.max(peak_resident);
        let cell = |ms: f64| format!("{ms:.2}");
        table.row(vec![
            machines.to_string(),
            cell(spark),
            cell(flink_sep),
            cell(flink),
            cell(mitos),
            cell(naiad),
            cell(tf),
            peak_resident.to_string(),
        ]);
        report.row(vec![
            ("machines", machines.into()),
            ("spark_step_ms", spark.into()),
            ("flink_sep_step_ms", flink_sep.into()),
            ("flink_step_ms", flink.into()),
            ("mitos_step_ms", mitos.into()),
            ("naiad_step_ms", naiad.into()),
            ("tf_step_ms", tf.into()),
            ("mitos_peak_resident_bytes", peak_resident.into()),
            // Wire volume of the whole loop: the control plane's batches
            // are tiny, so this tracks per-message framing, not payload —
            // the overhead the columnar encoding shrinks.
            ("mitos_wire_bytes", mitos_result.flow.bytes_on_wire().into()),
        ]);
        max_spark = max_spark.max(spark / mitos);
    }
    table.print();
    report.factor("spark_vs_mitos_step_max", max_spark);
    if max_peak_resident > 0 {
        // Deterministic under the simulator; omitted entirely when
        // MITOS_MEM_OFF disabled the registry for an A/B run.
        report.factor("mitos_peak_resident_bytes_max", max_peak_resident as f64);
    }

    // Where does the per-step overhead go? One traced Mitos run at a
    // mid-sweep cluster size, decomposed into the control-plane phases
    // (see `mitos_core::obs::histo`) and recorded as extra rows.
    let cluster = SimConfig::with_machines(5);
    let traced_cfg = EngineConfig::new().with_obs(ObsLevel::Trace);
    let fs = InMemoryFs::new();
    let traced = mitos_core::run_sim(&func, &fs, traced_cfg.clone(), cluster).expect("traced run");
    let histos = PhaseHistograms::from_trees(&build_step_trees(traced.obs.as_ref().unwrap()));
    println!("\nMitos control-plane phase latencies (5 machines, ns):");
    for (phase, h) in histos.phases() {
        println!(
            "  {phase:<13} p50={:>8} p99={:>8} max={:>8} (n={})",
            h.quantile(0.5),
            h.quantile(0.99),
            h.max_ns,
            h.count
        );
        report.row(vec![
            ("phase", phase.into()),
            ("p50_ns", h.quantile(0.5).into()),
            ("p99_ns", h.quantile(0.99).into()),
            ("max_ns", h.max_ns.into()),
            ("count", h.count.into()),
        ]);
    }
    // Ablation: the execution-template cache (control-plane memoization).
    // The slow path re-derives every input-bag selection by backward
    // scans over the ever-growing execution path (charged per block
    // examined); a template hit replays the recorded decisions for one
    // flat validation cost. Always run at steady state (200 steps)
    // regardless of MITOS_BENCH_FULL: the 50-step quick loop is
    // warmup-dominated and would understate both the hit rate and the
    // win. Fully deterministic under the simulator.
    let abl_steps: u32 = 200;
    let abl_func = mitos_ir::compile_str(&trivial_loop_program(abl_steps)).unwrap();
    let abl_cluster = SimConfig::with_machines(25);
    let virt_step_ms = |templates: bool| -> (f64, f64) {
        let cfg = EngineConfig::new().with_templates(templates);
        let fs = InMemoryFs::new();
        let r =
            mitos_core::run_sim(&abl_func, &fs, cfg, abl_cluster).expect("template ablation run");
        (
            r.sim.end_time as f64 / 1e6 / f64::from(abl_steps),
            r.template_hit_rate(),
        )
    };
    let (on_ms, on_rate) = virt_step_ms(true);
    let (off_ms, off_rate) = virt_step_ms(false);
    println!("\nAblation: execution templates ({abl_steps}-step loop, 25 machines):");
    println!("  templates on : {on_ms:.4} ms/step (hit rate {on_rate:.2})");
    println!("  templates off: {off_ms:.4} ms/step");
    assert_eq!(
        off_rate, 0.0,
        "templates-off run must not consult the cache"
    );
    assert!(
        on_ms < off_ms,
        "templates must cut steady-state per-step overhead: on={on_ms} off={off_ms}"
    );
    report.row(vec![
        ("ablation", "templates".into()),
        ("machines", 25u16.into()),
        ("steps", abl_steps.into()),
        ("templates_on_step_ms", on_ms.into()),
        ("templates_off_step_ms", off_ms.into()),
        ("template_hit_rate", on_rate.into()),
    ]);
    report.factor("templates_off_on_step_factor", off_ms / on_ms);
    report.factor("template_hit_rate_steady", on_rate);
    report.provenance(cluster.seed, traced_cfg.digest());
    report.write();
    println!("\npaper: job-per-step systems grow linearly with machines and sit");
    println!("~100x above the native-iteration systems, which stay flat.");
}
