//! # mitos-bench
//!
//! Shared harness for the figure-reproduction benchmarks. Each `benches/`
//! target regenerates one figure of the paper's evaluation (Sec. 6),
//! printing the same series the paper plots, measured in **virtual
//! milliseconds** on the simulated cluster.
//!
//! Scaled-down workloads run by default so `cargo bench` finishes in
//! minutes; set `MITOS_BENCH_FULL=1` for paper-scale sweeps. Results for
//! both scales are recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]

use mitos_baselines::{flink_driver_config, run_driver_loop, run_flink_native_with, DriverConfig};
use mitos_core::rt::EngineConfig;
use mitos_core::{run_sim, CostModel};
use mitos_fs::InMemoryFs;
use mitos_ir::FuncIr;
use mitos_sim::SimConfig;

/// Whether paper-scale workloads were requested.
pub fn full_scale() -> bool {
    std::env::var_os("MITOS_BENCH_FULL").is_some()
}

/// The commit the bench binary measures: `MITOS_GIT_SHA` when set (CI
/// exports it so builds from detached checkouts still stamp correctly),
/// else `git rev-parse --short HEAD`, else `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("MITOS_GIT_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The systems compared across the figures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum System {
    /// Mitos with pipelining and hoisting.
    Mitos,
    /// Mitos with pipelining disabled.
    MitosNoPipelining,
    /// Mitos with hoisting disabled.
    MitosNoHoisting,
    /// Flink-style native iterations.
    FlinkNative,
    /// Flink submitting one job per step.
    FlinkSeparateJobs,
    /// Spark-style driver loop.
    Spark,
}

impl System {
    /// The label used in the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            System::Mitos => "Mitos",
            System::MitosNoPipelining => "Mitos (not pipelined)",
            System::MitosNoHoisting => "Mitos (wo. hoisting)",
            System::FlinkNative => "Flink",
            System::FlinkSeparateJobs => "Flink (separate jobs)",
            System::Spark => "Spark",
        }
    }

    /// Runs a compiled program with the default (weight-1) cost model,
    /// returning the virtual makespan in milliseconds.
    pub fn run(self, func: &FuncIr, fs: &InMemoryFs, cluster: SimConfig) -> f64 {
        self.run_with(func, fs, cluster, CostModel::default())
    }

    /// Runs a compiled program under an explicit cost model.
    pub fn run_with(
        self,
        func: &FuncIr,
        fs: &InMemoryFs,
        cluster: SimConfig,
        cost: CostModel,
    ) -> f64 {
        let ns = match self {
            System::Mitos => {
                run_sim(func, fs, EngineConfig::new().with_cost(cost), cluster)
                    .expect("mitos run")
                    .sim
                    .end_time
            }
            System::MitosNoPipelining => {
                run_sim(
                    func,
                    fs,
                    EngineConfig::new().with_pipelining(false).with_cost(cost),
                    cluster,
                )
                .expect("mitos nopipe run")
                .sim
                .end_time
            }
            System::MitosNoHoisting => {
                run_sim(
                    func,
                    fs,
                    EngineConfig::new().with_hoisting(false).with_cost(cost),
                    cluster,
                )
                .expect("mitos nohoist run")
                .sim
                .end_time
            }
            System::FlinkNative => {
                run_flink_native_with(func, fs, cluster, cost)
                    .expect("flink native run")
                    .sim
                    .end_time
            }
            System::FlinkSeparateJobs => {
                let mut config = flink_driver_config();
                config.cost = cost;
                run_driver_loop(func, fs, config, cluster)
                    .expect("flink separate jobs run")
                    .sim
                    .end_time
            }
            System::Spark => {
                let config = DriverConfig {
                    cost,
                    ..DriverConfig::default()
                };
                run_driver_loop(func, fs, config, cluster)
                    .expect("spark run")
                    .sim
                    .end_time
            }
        };
        ns as f64 / 1e6
    }
}

/// The cost model used by the Visit Count figures: each simulated element
/// stands for ~500 log records, so 5 000 elements/day models the paper's
/// ~21 MB of visits per day.
pub fn visit_cost() -> CostModel {
    CostModel {
        record_weight: 500,
        // Hash-table builds over string-keyed rows (the pageTypes join)
        // cost more than integer inserts.
        per_insert_ns: 300,
        per_probe_ns: 120,
        // A log record is ~64 B (URL, timestamp), not the bare 8-byte page
        // id the simulation materializes.
        bytes_per_record_scale: 8,
        // Effective HDFS read throughput per machine (incl. seeks and the
        // NameNode round trip) is far below raw disk bandwidth; the
        // paper's pipelining gains come from hiding exactly this.
        io: mitos_fs::IoCostModel {
            open_latency_ns: 4_000_000,
            bytes_per_us: 50,
        },
        ..CostModel::default()
    }
}

/// The cost model for the loop-invariant sweep (Fig. 8): pageTypes rows
/// are compact `(id, type)` pairs, so the byte inflation of log records
/// does not apply; this keeps the one-time dataset read from masking the
/// per-step hash-table rebuild that the figure isolates.
pub fn invariant_cost() -> CostModel {
    CostModel {
        bytes_per_record_scale: 2,
        ..visit_cost()
    }
}

/// A simple aligned table printer for the figure series.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    out.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            println!("{out}");
        };
        line(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// One cell value in a [`BenchReport`] row.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// A floating-point measurement (virtual ms, a speedup factor, ...).
    /// Non-finite values serialize as JSON `null`.
    Num(f64),
    /// An integer parameter (machine count, input size, ...).
    Int(u64),
    /// A label (system name, ablation section, ...).
    Str(String),
}

impl From<f64> for Cell {
    fn from(v: f64) -> Cell {
        Cell::Num(v)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Cell {
        Cell::Int(v)
    }
}

impl From<u32> for Cell {
    fn from(v: u32) -> Cell {
        Cell::Int(v as u64)
    }
}

impl From<u16> for Cell {
    fn from(v: u16) -> Cell {
        Cell::Int(v as u64)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Cell {
        Cell::Int(v as u64)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Cell {
        Cell::Str(v.to_string())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Cell {
        Cell::Str(v)
    }
}

impl Cell {
    fn to_json(&self) -> String {
        match self {
            Cell::Num(v) if v.is_finite() => format!("{v}"),
            Cell::Num(_) => "null".to_string(),
            Cell::Int(v) => format!("{v}"),
            Cell::Str(s) => json_str(s),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A machine-readable summary of one figure's bench run — the measured
/// series plus the headline factors the paper reports, written as
/// `BENCH_<fig>.json` so the bench trajectory can be tracked across
/// commits without scraping stdout. The output directory is
/// `MITOS_BENCH_DIR` (default: the current directory); see
/// `scripts/bench.sh`.
pub struct BenchReport {
    fig: String,
    title: String,
    rows: Vec<Vec<(String, Cell)>>,
    factors: Vec<(String, f64)>,
    provenance: Option<(String, u64, u64)>,
}

impl BenchReport {
    /// Starts a report for figure `fig` (e.g. `"fig7"`; names the output
    /// file `BENCH_<fig>.json`).
    pub fn new(fig: &str, title: &str) -> BenchReport {
        BenchReport {
            fig: fig.to_string(),
            title: title.to_string(),
            rows: Vec::new(),
            factors: Vec::new(),
            provenance: None,
        }
    }

    /// Stamps the report with its provenance: the git commit it measured
    /// (from `MITOS_GIT_SHA`, falling back to `git rev-parse`), the bench
    /// seed, and the engine-config digest
    /// ([`EngineConfig::digest`]) — so `scripts/bench_compare.sh` can warn
    /// when two reports measured different configurations.
    pub fn provenance(&mut self, seed: u64, config_digest: u64) {
        self.provenance = Some((git_sha(), seed, config_digest));
    }

    /// Records one row of the measured series as named cells; keys are
    /// preserved in order. Rows need not share a schema (the ablation
    /// report mixes sections).
    pub fn row(&mut self, cells: Vec<(&str, Cell)>) {
        self.rows
            .push(cells.into_iter().map(|(k, v)| (k.to_string(), v)).collect());
    }

    /// Records a derived headline factor (e.g. the max Spark/Mitos
    /// slowdown across the sweep).
    pub fn factor(&mut self, name: &str, value: f64) {
        self.factors.push((name.to_string(), value));
    }

    /// Serializes the report as deterministic JSON (insertion order kept).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"figure\":{},\"title\":{},\"full_scale\":{},\"rows\":[",
            json_str(&self.fig),
            json_str(&self.title),
            full_scale()
        ));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            for (j, (k, v)) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_str(k), v.to_json()));
            }
            out.push('}');
        }
        out.push_str("],\"factors\":{");
        for (i, (k, v)) in self.factors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let val = if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            };
            out.push_str(&format!("{}:{}", json_str(k), val));
        }
        out.push('}');
        if let Some((sha, seed, digest)) = &self.provenance {
            out.push_str(&format!(
                ",\"git_sha\":{},\"seed\":{seed},\"config_digest\":{digest}",
                json_str(sha)
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Writes `BENCH_<fig>.json` into `MITOS_BENCH_DIR` (default `.`) and
    /// prints the path. Panics on I/O errors — a bench run that cannot
    /// record its trajectory should fail loudly.
    pub fn write(&self) {
        let dir = std::env::var("MITOS_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.fig));
        std::fs::write(&path, self.to_json()).expect("write bench report");
        println!("wrote {}", path.display());
    }
}

/// Formats a virtual-millisecond value compactly.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 10_000.0 {
        format!("{:.1}s", ms / 1000.0)
    } else {
        format!("{ms:.1}ms")
    }
}

/// Formats a ratio as `N.Nx`.
pub fn fmt_factor(x: f64) -> String {
    format!("{x:.1}x")
}

/// The per-step-overhead microbenchmark program of Fig. 7: a loop with
/// minimal actual data processing per step.
pub fn trivial_loop_program(steps: u32) -> String {
    format!(
        r#"s = 0;
for i = 1 to {steps} {{
    b = bag((1, i));
    s = s + b.count();
}}
output(s, "s");
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitos_workloads::{generate_visit_logs, visit_count_program, VisitCountSpec};

    #[test]
    fn all_systems_run_visit_count() {
        let spec = VisitCountSpec {
            days: 3,
            visits_per_day: 30,
            pages: 10,
            seed: 1,
        };
        let func = mitos_ir::compile_str(&visit_count_program(3, false)).unwrap();
        for system in [
            System::Mitos,
            System::MitosNoPipelining,
            System::MitosNoHoisting,
            System::FlinkNative,
            System::FlinkSeparateJobs,
            System::Spark,
        ] {
            let fs = InMemoryFs::new();
            generate_visit_logs(&fs, &spec);
            let ms = system.run(&func, &fs, SimConfig::with_machines(2));
            assert!(ms > 0.0, "{system:?}");
        }
    }

    #[test]
    fn trivial_loop_compiles_and_runs() {
        let func = mitos_ir::compile_str(&trivial_loop_program(5)).unwrap();
        let fs = InMemoryFs::new();
        let ms = System::Mitos.run(&func, &fs, SimConfig::with_machines(2));
        assert!(ms > 0.0);
    }

    #[test]
    fn table_prints_aligned() {
        let mut t = Table::new(&["x", "a", "b"]);
        t.row(vec!["1".into(), "10.0ms".into(), "2.0x".into()]);
        t.print();
    }

    #[test]
    fn bench_report_serializes_rows_and_factors() {
        let mut r = BenchReport::new("figX", "example sweep");
        r.row(vec![
            ("machines", 4u16.into()),
            ("mitos_ms", 12.5f64.into()),
            ("system", "Mitos".into()),
        ]);
        r.factor("spark_vs_mitos_max", 10.0);
        let json = r.to_json();
        assert!(json.starts_with("{\"figure\":\"figX\""), "{json}");
        assert!(json.contains("\"title\":\"example sweep\""), "{json}");
        assert!(
            json.contains("{\"machines\":4,\"mitos_ms\":12.5,\"system\":\"Mitos\"}"),
            "{json}"
        );
        assert!(
            json.contains("\"factors\":{\"spark_vs_mitos_max\":10}"),
            "{json}"
        );
    }

    #[test]
    fn bench_report_stamps_provenance_after_factors() {
        let mut r = BenchReport::new("figP", "provenance");
        r.factor("f", 1.0);
        r.provenance(42, 0xdead_beef);
        let json = r.to_json();
        let digest = 0xdead_beefu64;
        assert!(
            json.contains(&format!("\"seed\":42,\"config_digest\":{digest}")),
            "{json}"
        );
        let sha_at = json.find("\"git_sha\":").expect("git_sha stamped");
        let factors_at = json.find("\"factors\":").unwrap();
        assert!(
            factors_at < sha_at,
            "provenance must follow the factors object: {json}"
        );
        // Without the stamp the report keeps its original schema.
        assert!(!BenchReport::new("figQ", "bare")
            .to_json()
            .contains("git_sha"));
    }

    #[test]
    fn bench_report_nulls_non_finite() {
        let mut r = BenchReport::new("figY", "nan handling");
        r.row(vec![("bad", Cell::Num(f64::NAN))]);
        r.factor("inf", f64::INFINITY);
        let json = r.to_json();
        assert!(json.contains("{\"bad\":null}"), "{json}");
        assert!(json.contains("\"inf\":null"), "{json}");
    }

    #[test]
    fn bench_report_escapes_strings() {
        let mut r = BenchReport::new("figZ", "a \"quoted\"\ntitle");
        r.row(vec![("label", "back\\slash".into())]);
        let json = r.to_json();
        assert!(json.contains("\"a \\\"quoted\\\"\\ntitle\""), "{json}");
        assert!(json.contains("\"back\\\\slash\""), "{json}");
    }

    #[test]
    fn bench_report_writes_to_dir() {
        let dir = std::env::temp_dir().join("mitos_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Env vars are process-global; this is the only test touching
        // MITOS_BENCH_DIR, and it restores the prior state.
        let prev = std::env::var_os("MITOS_BENCH_DIR");
        std::env::set_var("MITOS_BENCH_DIR", &dir);
        let mut r = BenchReport::new("figtest", "write test");
        r.row(vec![("x", 1u64.into())]);
        r.write();
        match prev {
            Some(v) => std::env::set_var("MITOS_BENCH_DIR", v),
            None => std::env::remove_var("MITOS_BENCH_DIR"),
        }
        let path = dir.join("BENCH_figtest.json");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"figure\":\"figtest\""), "{written}");
        std::fs::remove_file(&path).unwrap();
    }
}
