//! Workspace-local, std-only stand-in for `proptest`.
//!
//! The build environment has no crates.io network access; this crate keeps
//! the authoring surface the workspace's property tests use — the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `prop_recursive`/`boxed`, [`strategy::Just`], `any::<T>()`, range and
//! regex-string strategies, `prop::collection::vec`, `prop_oneof!`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros — and drops the parts
//! it does not: there is **no shrinking** and no persisted regression seeds
//! (`.proptest-regressions` files are ignored). Each test runs
//! `ProptestConfig::cases` cases from a per-test deterministic RNG stream;
//! the `PROPTEST_CASES` environment variable overrides the case count.

#![warn(missing_docs)]

/// Strategy trait, combinators, and primitive strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike upstream proptest there is no value tree and no shrinking:
    /// `generate` directly produces one random value.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps the strategy-so-far into a deeper one, applied
        /// up to `depth` times. `_desired_size` and `_expected_branch_size`
        /// are accepted for upstream signature compatibility and ignored;
        /// recursion instead picks leaves twice as often as deeper arms,
        /// which keeps generated sizes small.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                current = Union {
                    arms: vec![(2, leaf.clone()), (1, deeper)],
                }
                .boxed();
            }
            current
        }

        /// Type-erases this strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// Object-safe subset of [`Strategy`] backing [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, reference-counted strategy (upstream:
    /// `BoxedStrategy`). Cloning shares the underlying generator.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, R, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        R: Strategy,
        F: Fn(S::Value) -> R,
    {
        type Value = R::Value;
        fn generate(&self, rng: &mut StdRng) -> R::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between strategies of a common value type; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms. Panics if `arms`
        /// is empty or all weights are zero.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(
                arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
                "prop_oneof! needs at least one arm with nonzero weight"
            );
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.gen_range(0..total);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return arm.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights changed during generation")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Generates an unconstrained value of `Self`.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (full value range).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),* $(,)?) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> $ty {
                    rng.gen::<u64>() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Wide but finite: uniform in [-1e9, 1e9).
            (rng.gen::<f64>() - 0.5) * 2e9
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size interval for generated collections; built from a
    /// `usize` (exact size), a `Range<usize>`, or a `RangeInclusive<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(!r.is_empty(), "empty collection size range {r:?}");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(!r.is_empty(), "empty collection size range {r:?}");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// String generation from the small regex subset used as strategies.
pub mod string {
    use rand::rngs::StdRng;
    use rand::Rng;

    enum Atom {
        /// `.` — any printable char (mostly ASCII, occasionally wider
        /// Unicode so "arbitrary string" fuzz tests see multibyte input).
        Dot,
        /// `[...]` — one of an explicit set of chars.
        Class(Vec<char>),
        /// A literal char.
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Parses the supported regex subset — literals, `.`, `[...]` classes
    /// with ranges and `\`-escapes, and an optional trailing `{m,n}` /
    /// `{m}` repetition per atom — and generates one matching string.
    /// Panics on constructs outside that subset.
    pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let count = rng.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                out.push(match &piece.atom {
                    Atom::Dot => random_printable(rng),
                    Atom::Class(set) => set[rng.gen_range(0..set.len())],
                    Atom::Literal(c) => *c,
                });
            }
        }
        out
    }

    fn random_printable(rng: &mut StdRng) -> char {
        // 1-in-16 chars comes from a wider Unicode block to exercise
        // multibyte handling; the rest are printable ASCII.
        if rng.gen_range(0u32..16) == 0 {
            char::from_u32(rng.gen_range(0xA0u32..0x2FF)).unwrap_or('¿')
        } else {
            char::from(rng.gen_range(0x20u8..0x7F))
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Dot,
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        let item = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        match item {
                            ']' => break,
                            '\\' => set.push(
                                chars
                                    .next()
                                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                            ),
                            lo => {
                                // `a-z` range, unless `-` is the class's
                                // final char (then it is literal).
                                if chars.peek() == Some(&'-') {
                                    let mut rest = chars.clone();
                                    rest.next();
                                    match rest.peek() {
                                        Some(&hi) if hi != ']' => {
                                            chars.next();
                                            chars.next();
                                            set.extend(lo..=hi);
                                        }
                                        _ => set.push(lo),
                                    }
                                } else {
                                    set.push(lo);
                                }
                            }
                        }
                    }
                    assert!(!set.is_empty(), "empty char class in {pattern:?}");
                    Atom::Class(set)
                }
                '\\' => Atom::Literal(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                ),
                literal => Atom::Literal(literal),
            };
            // NB: the bounds are parsed through a fully annotated helper;
            // leaving the `parse()` targets and the panic closure's return
            // type to inference sends rustc's trait solver into a
            // pathological (multi-minute, tens-of-GB) search here.
            let (min, max): (usize, usize) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let parts: Vec<&str> = spec.split(',').collect();
                let parse_bound = |s: &str| -> usize {
                    s.trim().parse().unwrap_or_else(|_| {
                        panic!("unsupported repetition {{{spec}}} in {pattern:?}")
                    })
                };
                match parts.as_slice() {
                    [exact] => {
                        let n = parse_bound(exact);
                        (n, n)
                    }
                    [lo, hi] => (parse_bound(lo), parse_bound(hi)),
                    _ => panic!("unsupported repetition {{{spec}}} in {pattern:?}"),
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted repetition in {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }
}

/// Test-runner configuration and failure reporting.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Per-test configuration (upstream: `proptest::test_runner::Config`,
    /// aliased to `ProptestConfig` in the prelude). Only `cases` changes
    /// behavior here; the other fields are accepted for compatibility.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for upstream compatibility; there is no shrinking.
        pub max_shrink_iters: u32,
        /// Accepted for upstream compatibility; tests never fork.
        pub fork: bool,
        /// Accepted for upstream compatibility; cases are not timed out.
        pub timeout: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config {
                cases,
                max_shrink_iters: 1024,
                fork: false,
                timeout: 0,
            }
        }
    }

    /// A failed case, carrying the `prop_assert!` message.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test RNG: seeded from the test's module path and
    /// name (FNV-1a), so every test has its own stable stream.
    pub fn rng_for_test(module: &str, name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in module.bytes().chain([b':']).chain(name.bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// The glob-import surface test files use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current proptest case (early-returns a
/// [`test_runner::TestCaseError`]) if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current proptest case if the two expressions are unequal,
/// showing both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Weighted (`3 => strat`) or uniform (`strat`) choice between strategies
/// sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn, recurses.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::rng_for_test(module_path!(), stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__error) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.cases,
                        __error
                    );
                }
            }
        }
        $crate::__proptest_each! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_oneof_generate_in_bounds() {
        let mut rng = crate::test_runner::rng_for_test("self", "smoke");
        let strat = prop_oneof![
            2 => (0i64..10, 5u32..6).prop_map(|(a, b)| a + i64::from(b)),
            1 => Just(-1i64),
        ];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == -1 || (5..15).contains(&v));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::test_runner::rng_for_test("self", "regex");
        for _ in 0..100 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = "[;{}()=]{0,5}".generate(&mut rng);
            assert!(t.chars().all(|c| ";{}()=".contains(c)));
            let u = "x\\.y".generate(&mut rng);
            assert_eq!(u, "x.y");
        }
    }

    #[test]
    fn collection_vec_honors_size_forms() {
        let mut rng = crate::test_runner::rng_for_test("self", "vec");
        for _ in 0..50 {
            assert_eq!(
                prop::collection::vec(0i64..5, 3usize)
                    .generate(&mut rng)
                    .len(),
                3
            );
            let bounded = prop::collection::vec(0i64..5, 1..4).generate(&mut rng);
            assert!((1..=3).contains(&bounded.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// The macro pipeline itself: args bind, asserts return errors.
        #[test]
        fn macro_binds_args(a in 0i64..100, b in prop::collection::vec(0i64..10, 0..4)) {
            prop_assert!((0..100).contains(&a));
            prop_assert_eq!(b.len(), b.len());
        }
    }
}
