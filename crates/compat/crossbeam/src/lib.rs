//! Workspace-local, std-only stand-in for `crossbeam`.
//!
//! The build environment has no crates.io network access; this crate
//! provides the one piece of `crossbeam` this workspace uses — the
//! unbounded MPMC [`channel`] with cloneable senders *and* receivers and a
//! blocking receiver iterator — implemented with `Mutex` + `Condvar`.
//! Throughput is far below real crossbeam's lock-free queues, which is fine
//! for the threaded correctness driver it backs.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels (upstream: `crossbeam-channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC: each item is delivered to
    /// exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            // Clone the Arc before bumping the sender count so that
            // `strong_count >= senders` holds at every instant (the
            // disconnect check in `send` relies on it).
            let shared = self.shared.clone();
            shared.queue.lock().unwrap().senders += 1;
            Sender { shared }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers blocked on an empty, now-closed channel.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when no receiver can ever take it.
        ///
        /// Receiver liveness is approximated by `Arc` accounting: with all
        /// receivers dropped, only senders hold references.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if Arc::strong_count(&self.shared) <= state.senders {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive (`None` when currently empty).
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }

        /// Items currently queued (a racy instantaneous reading, like the
        /// real crate's: the queue may change the moment the lock drops).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// Whether the channel currently holds no items.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when the channel closes.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator over received items (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn iter_ends_when_senders_drop() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn mpmc_delivers_each_item_once() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..300 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 300);
    }
}
