//! Workspace-local, std-only stand-in for `parking_lot`.
//!
//! The build environment has no crates.io network access; this crate wraps
//! `std::sync` primitives behind `parking_lot`'s poison-free interface
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned std
//! lock — a panic while holding the guard — is propagated as a panic here
//! too, which matches how this workspace uses the locks (a panicked worker
//! thread aborts the whole test anyway).

#![warn(missing_docs)]

use std::sync::{self, LockResult};

/// Unwraps a std lock result, ignoring poisoning (parking_lot semantics:
/// the data stays accessible after a panic elsewhere).
fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A mutual-exclusion lock without poisoning (upstream: `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

/// A reader-writer lock without poisoning (upstream: `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
