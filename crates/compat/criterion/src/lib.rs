//! Workspace-local, std-only stand-in for `criterion`.
//!
//! The build environment has no crates.io network access; this crate keeps
//! the authoring API the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`]) and replaces the statistical machinery with a
//! plain warm-up + timed-run loop reporting mean and minimum per-iteration
//! time. Good enough to eyeball regressions; not a statistics engine.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark harness configuration and runner.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: warm-up, then `sample_size` timed samples, then
    /// a one-line mean/min report.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up & calibration: grow the per-sample iteration count until
        // one sample takes a meaningful slice of the warm-up budget.
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if Instant::now() >= warm_deadline {
                break;
            }
            if b.elapsed < self.warm_up_time / 20 {
                b.iters = (b.iters * 2).min(1 << 30);
            }
        }
        let per_sample_budget = self.measurement_time / self.sample_size as u32;
        if b.elapsed > Duration::ZERO && b.elapsed < per_sample_budget {
            let scale = per_sample_budget.as_nanos() / b.elapsed.as_nanos().max(1);
            b.iters = (b.iters as u128 * scale.clamp(1, 1 << 20)) as u64;
        }
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        let mut iters_done: u64 = 0;
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            total += b.elapsed;
            iters_done += b.iters;
            let per_iter = b.elapsed / b.iters.max(1) as u32;
            best = best.min(per_iter);
            if Instant::now() >= deadline {
                break;
            }
        }
        let mean = if iters_done > 0 {
            Duration::from_nanos((total.as_nanos() / iters_done.max(1) as u128) as u64)
        } else {
            Duration::ZERO
        };
        println!(
            "{name:<48} mean {:>12} min {:>12} ({} iters)",
            format_ns(mean),
            format_ns(best),
            iters_done
        );
        self
    }
}

fn format_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, run `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Declares a named group of benchmark functions (upstream-compatible
/// `name`/`config`/`targets` form and the positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
