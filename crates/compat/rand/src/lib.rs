//! Workspace-local, std-only stand-in for the `rand` crate.
//!
//! The build environment has no crates.io network access, so the workspace
//! vendors the *small* part of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and [`Rng::gen_range`] over
//! integer and float ranges. The generator is SplitMix64-seeded
//! xoshiro256++ — high quality for simulation jitter and workload
//! generation, *not* cryptographic.
//!
//! Determinism contract: for a given seed the generated sequence is stable
//! across runs and platforms (the simulator's reproducibility tests rely on
//! this), though it intentionally does not match upstream `rand`'s streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Trait for seedable generators (upstream: `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (upstream:
/// `rand::distributions::uniform::SampleRange`, reduced to what this
/// workspace needs).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (upstream: `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniformly random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types producible by [`Rng::gen`] (upstream: the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
fn uniform_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the sample unbiased for all bounds.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64 (upstream's `StdRng` is a different
    /// algorithm; only the *interface* is preserved).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..1000u64)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
            let f = rng.gen_range(-10.0..10.0f64);
            assert!((-10.0..10.0).contains(&f));
            let i = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&i));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
